//! Offline stand-in for the crates.io
//! [`criterion`](https://crates.io/crates/criterion) crate, API-compatible
//! with the subset this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical pipeline it runs each benchmark for
//! a fixed small number of timed iterations (capped by wall-clock budget)
//! and prints `name ... median time` lines, so `cargo bench` gives a
//! usable smoke signal and `cargo bench --no-run` compile-checks the perf
//! surface. Swap the path dependency for the real crate when network
//! access is available; no bench source needs to change.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget; keeps the whole stub suite fast even
/// for expensive exact-solver benches.
const TIME_BUDGET: Duration = Duration::from_millis(500);

/// Identifies one benchmark within a group, e.g. `new("astar", 12)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing driver handed to the closure of `bench_function`.
pub struct Bencher {
    samples: usize,
    fastest: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over up to `samples` iterations (stopping early at
    /// the wall-clock budget) and records the fastest observation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        let mut best = Duration::MAX;
        for done in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            best = best.min(t0.elapsed());
            if done >= 1 && started.elapsed() > TIME_BUDGET {
                break;
            }
        }
        self.fastest = Some(self.fastest.map_or(best, |f| f.min(best)));
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        fastest: None,
    };
    f(&mut b);
    match b.fastest {
        Some(best) => {
            println!("bench: {label:<48} fastest {best:>12.3?} ({samples} max samples)")
        }
        None => println!("bench: {label:<48} (closure never called iter)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Mirrors the real crate's CLI hook; the stub has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, &mut |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group, like
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target, like
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_a_finite_time() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
        });
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.bench_function("plain", |b| {
            b.iter(|| black_box(0));
        });
        g.finish();
    }
}

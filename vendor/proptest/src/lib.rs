//! Offline stand-in for the crates.io
//! [`proptest`](https://crates.io/crates/proptest) crate, API-compatible
//! with the subset this workspace's property suites use:
//!
//! - the [`Strategy`](strategy::Strategy) trait with
//!   [`prop_map`](strategy::Strategy::prop_map) /
//!   [`prop_flat_map`](strategy::Strategy::prop_flat_map), plus
//!   strategies for integer ranges, tuples,
//!   [`Just`](strategy::Just), [`collection::vec`],
//!   [`bool::weighted`] and
//!   [`arbitrary::any`];
//! - the [`proptest!`] test macro with `#![proptest_config(..)]` support;
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//!   [`prop_oneof!`] and [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate: random inputs are generated but
//! failing cases are **not shrunk** (the failing case's number and seed
//! are printed instead), and generation is deterministic per test
//! function so CI never flakes. Set `PROPTEST_SEED=<u64>` to explore a
//! different stream locally. Swap the path dependency for the real crate
//! when network access is available; no test source needs to change.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `proptest::bool` — boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `true` with the given probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted {
        probability: f64,
    }

    /// Strategy for a biased coin flip: `true` with probability
    /// `probability`.
    pub fn weighted(probability: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&probability),
            "bool::weighted: probability {probability} out of [0,1]"
        );
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.probability
        }
    }
}

/// The glob import every proptest test starts with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a `#[test]` that runs `body` over `config.cases` sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )* ) => { $(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut case: u32 = 0;
            let mut rejects: u32 = 0;
            while case < config.cases {
                let case_seed = rng.fork_seed();
                let mut case_rng = $crate::test_runner::TestRng::from_seed(case_seed);
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut case_rng); )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejects += 1;
                        assert!(
                            rejects < config.max_global_rejects,
                            "proptest: too many prop_assume! rejections ({rejects})"
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        message,
                    )) => {
                        panic!(
                            "proptest case #{case} (seed {case_seed:#x}) failed: {message}"
                        );
                    }
                }
            }
        }
    )* };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strategy:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Like `assert!`, but reports the failing random case instead of
/// unwinding from deep inside the generated loop.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Like `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current random case when its inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

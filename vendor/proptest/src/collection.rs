//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Admissible size arguments for [`vec()`]: an exact length or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "vec size range is empty");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "vec size range is empty");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

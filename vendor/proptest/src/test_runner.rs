//! Test configuration, the case RNG, and the error type threaded through
//! `prop_assert!`/`prop_assume!`.

/// Subset of the real `ProptestConfig` that the suites configure.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Abort after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single random case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
    /// A `prop_assert!` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Deterministic SplitMix64 stream used to sample strategies.
///
/// Each test function gets a stream derived from its fully qualified name
/// (stable across runs and machines, so CI never flakes), overridable
/// with the `PROPTEST_SEED` environment variable for local exploration.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for one named `proptest!` test.
    pub fn for_test(qualified_name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(raw) => raw
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {raw:?}")),
            Err(_) => 0x9e37_79b9_7f4a_7c15,
        };
        // FNV-1a over the test name, mixed with the base seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in qualified_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(hash ^ seed)
    }

    /// Stream reproducing one failing case (the seed printed on failure).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed for the next case's dedicated RNG, so a failure can be
    /// replayed without regenerating every preceding case.
    pub fn fork_seed(&mut self) -> u64 {
        self.next_u64()
    }

    /// Next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

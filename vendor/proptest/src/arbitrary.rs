//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary_value(rng: &mut TestRng) -> i128 {
        u128::arbitrary_value(rng) as i128
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20 + (rng.next_u64() % 0x5f)) as u8 as char
    }
}

//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike the real proptest there is no value *tree* (no shrinking): a
/// strategy simply produces a value from the test RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Feeds generated values into a function producing a second
    /// strategy, then samples that.
    fn prop_flat_map<S, F>(self, flat: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, flat }
    }

    /// Keeps only values satisfying a predicate (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, filter: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            filter,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    flat: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.flat)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    filter: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.generate(rng);
            if (self.filter)(&value) {
                return value;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Uniform choice between same-typed strategies; built by
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

//! Offline stand-in for the crates.io [`rand`](https://crates.io/crates/rand)
//! crate, API-compatible with the subset this workspace uses:
//!
//! - [`thread_rng`] / [`rngs::ThreadRng`]
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen_range`], [`Rng::gen_bool`]
//! - [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`]
//!
//! The generator is SplitMix64: statistically fine for test-data and
//! workload generation, deterministic for a given seed, and *not*
//! cryptographically secure (neither is the real `StdRng` contractually).
//! Swap this path dependency for the real crate when network access is
//! available; no call sites need to change.

use std::cell::Cell;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] exactly like the real crate.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard seedable generator (SplitMix64 here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-whiten so seeds 0, 1, 2, ... land in distant streams.
            let mut s = state ^ 0x5851_f42d_4c95_7f2d;
            let _ = splitmix64(&mut s);
            StdRng { state: s }
        }
    }

    /// Handle to a thread-local generator; see [`super::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng(());

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            super::THREAD_RNG_STATE.with(|s| {
                let mut state = s.get();
                let word = splitmix64(&mut state);
                s.set(state);
                word
            })
        }
    }

    impl ThreadRng {
        pub(super) fn new() -> Self {
            ThreadRng(())
        }
    }
}

thread_local! {
    static THREAD_RNG_STATE: Cell<u64> = Cell::new({
        // Seed from wall clock + address entropy; uniqueness per thread
        // matters more than quality, SplitMix64 whitens the rest.
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x4d59_5df4_d0f3_3173);
        let marker = &t as *const _ as u64;
        t ^ marker.rotate_left(32)
    });
}

/// A lazily-seeded thread-local generator, like `rand::thread_rng`.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

pub mod distributions {
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Ranges that [`crate::Rng::gen_range`] can sample from.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let offset = (rng.next_u64() as u128) % span;
                        (self.start as i128 + offset as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = self.into_inner();
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let offset = (rng.next_u64() as u128) % span;
                        (lo as i128 + offset as i128) as $t
                    }
                }
            )*};
        }

        impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }
}

pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice shuffling and sampling, like `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{thread_rng, Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = thread_rng();
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = thread_rng();
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([9u8].choose(&mut rng), Some(&9));
    }
}

//! Exact optimal pebbling via Dijkstra / A* over configurations.
//!
//! A configuration is `(red, blue[, computed])` packed into `u64` words;
//! moves are edges weighted by their scaled cost (`transfers·den +
//! computes·num`, exact integers). Dijkstra over this graph yields the
//! optimal pebbling cost and, via parent pointers, an optimal trace.
//!
//! ## State keys per model
//! - **base / compcost / nodel**: `(red, blue)`. The computed set does not
//!   constrain future legality (recomputation is allowed), so it is
//!   omitted — this also merges states that differ only in history.
//! - **oneshot**: `(red, blue, computed)`, because each node admits one
//!   compute.
//!
//! ## Optimality-preserving pruning (`prune = true`)
//! All prunes below keep at least one optimal pebbling intact; the
//! unpruned mode (`prune = false`) is the brute-force reference that the
//! test-suite compares against on small instances.
//!
//! 1. *Never delete a blue pebble* (all models with deletion): a state
//!    with a superset of blue pebbles and identical red/computed sets can
//!    replay any continuation of the smaller state at equal cost, so the
//!    delete only moves to a dominated state.
//! 2. *(oneshot)* Skip `Load(v)`/`Store(v)` when `v` has no uncomputed
//!    successor and is not a sink: the pebble can never enable anything
//!    again, so the optimal continuation never pays to move it.
//! 3. *(oneshot)* Skip `Delete(v)` when `v` still has an uncomputed
//!    successor, or when `v` is a sink: recomputation is forbidden, so
//!    both cases make the goal unreachable (dead state).
//! 4. *(oneshot)* Dead-state check at expansion: if some sink is already
//!    unreachable (computed but unpebbled, or uncomputed with an
//!    unreachable input), the subtree is abandoned.
//!
//! ## A*
//! For oneshot an admissible, consistent heuristic is available: every
//! node that is blue and still has an uncomputed successor must be loaded
//! at least once more (recomputation being forbidden), contributing 1
//! transfer each.

use crate::error::SolveError;
use crate::hash::FxHashMap;
use rbp_core::{bounds, Cost, Instance, ModelKind, Move, Pebbling, SourceConvention};
use rbp_graph::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration for [`solve_exact_with`].
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Abort with [`SolveError::StateLimitExceeded`] after interning this
    /// many states (memory guard).
    pub max_states: usize,
    /// Enable the optimality-preserving prunes documented on this module.
    pub prune: bool,
    /// Use the admissible oneshot heuristic (ignored for other models).
    pub astar: bool,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_states: 8_000_000,
            prune: true,
            astar: true,
        }
    }
}

/// Result of an exact solve.
#[derive(Clone, Debug)]
pub struct ExactReport {
    /// Exact optimal cost.
    pub cost: Cost,
    /// An optimal pebbling realizing that cost.
    pub trace: Pebbling,
    /// Number of states popped from the queue.
    pub states_expanded: usize,
    /// Number of distinct states interned.
    pub states_seen: usize,
}

/// Solves the instance exactly with default configuration.
///
/// # Example
/// ```
/// use rbp_core::{CostModel, Instance};
/// use rbp_graph::generate;
/// use rbp_solvers::solve_exact;
///
/// // a dependency chain fits in 2 red pebbles at zero I/O cost
/// let inst = Instance::new(generate::chain(8), 2, CostModel::oneshot());
/// let opt = solve_exact(&inst).unwrap();
/// assert_eq!(opt.cost.transfers, 0);
/// // the trace is a concrete, replayable schedule
/// assert!(rbp_core::simulate(&inst, &opt.trace).is_ok());
/// ```
pub fn solve_exact(instance: &Instance) -> Result<ExactReport, SolveError> {
    solve_exact_with(instance, ExactConfig::default())
}

/// Brute-force reference: no pruning, no heuristic. Exponentially slower;
/// only for cross-validating [`solve_exact`] on tiny instances.
pub fn solve_reference(instance: &Instance) -> Result<ExactReport, SolveError> {
    solve_exact_with(
        instance,
        ExactConfig {
            max_states: 4_000_000,
            prune: false,
            astar: false,
        },
    )
}

/// Solves the instance exactly with the given configuration.
pub fn solve_exact_with(instance: &Instance, cfg: ExactConfig) -> Result<ExactReport, SolveError> {
    bounds::check_feasible(instance)?;
    Search::new(instance, cfg).run()
}

// ---------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------

#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1 << (i % 64)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

#[inline]
fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1 << (i % 64));
}

struct Search<'a> {
    instance: &'a Instance,
    cfg: ExactConfig,
    n: usize,
    wpn: usize,       // words per node-set
    key_words: usize, // words per state key (2·wpn or 3·wpn)
    oneshot: bool,
    track_computed: bool,
    eps_num: u64,
    eps_den: u64,
    // interning
    ids: FxHashMap<Box<[u64]>, u32>,
    keys: Vec<Box<[u64]>>,
    dist: Vec<u64>,
    parent: Vec<(u32, Move)>,
    settled: Vec<bool>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    // scratch
    scratch: Vec<u64>,
    // per-node static info
    sinks: Vec<bool>,
    topo: Vec<NodeId>,
}

const NO_PARENT: u32 = u32::MAX;

impl<'a> Search<'a> {
    fn new(instance: &'a Instance, cfg: ExactConfig) -> Self {
        let n = instance.dag().n();
        let wpn = n.div_ceil(64).max(1);
        let oneshot = instance.model().kind() == ModelKind::Oneshot;
        let track_computed = oneshot;
        let key_words = if track_computed { 3 * wpn } else { 2 * wpn };
        let eps = instance.model().epsilon();
        let (eps_num, eps_den) = if eps.is_zero() {
            (0, 1)
        } else {
            (eps.num(), eps.den())
        };
        let sinks = instance
            .dag()
            .nodes()
            .map(|v| instance.dag().is_sink(v))
            .collect();
        Search {
            instance,
            cfg,
            n,
            wpn,
            key_words,
            oneshot,
            track_computed,
            eps_num,
            eps_den,
            ids: FxHashMap::default(),
            keys: Vec::new(),
            dist: Vec::new(),
            parent: Vec::new(),
            settled: Vec::new(),
            heap: BinaryHeap::new(),
            scratch: vec![0; key_words],
            sinks,
            topo: rbp_graph::topological_order(instance.dag()),
        }
    }

    #[inline]
    fn red<'k>(&self, key: &'k [u64]) -> &'k [u64] {
        &key[..self.wpn]
    }

    #[inline]
    fn blue<'k>(&self, key: &'k [u64]) -> &'k [u64] {
        &key[self.wpn..2 * self.wpn]
    }

    /// The computed set; for models that do not track it, pebbled ∪ history
    /// is irrelevant and this returns the blue slice (unused).
    #[inline]
    fn computed<'k>(&self, key: &'k [u64]) -> &'k [u64] {
        if self.track_computed {
            &key[2 * self.wpn..]
        } else {
            &key[..0]
        }
    }

    #[inline]
    fn is_red(&self, key: &[u64], v: usize) -> bool {
        bit_get(self.red(key), v)
    }

    #[inline]
    fn is_blue(&self, key: &[u64], v: usize) -> bool {
        bit_get(self.blue(key), v)
    }

    #[inline]
    fn is_computed(&self, key: &[u64], v: usize) -> bool {
        if self.track_computed {
            bit_get(self.computed(key), v)
        } else {
            // models without the computed set allow recomputation, so
            // "has it been computed" never gates legality; pebbled is the
            // only meaningful proxy where needed
            self.is_red(key, v) || self.is_blue(key, v)
        }
    }

    fn red_count(&self, key: &[u64]) -> usize {
        self.red(key).iter().map(|w| w.count_ones() as usize).sum()
    }

    fn initial_key(&self) -> Vec<u64> {
        let mut key = vec![0u64; self.key_words];
        if self.instance.source_convention() == SourceConvention::InitiallyBlue {
            for v in self.instance.dag().sources() {
                bit_set(&mut key[self.wpn..2 * self.wpn], v.index());
                if self.track_computed {
                    let w = self.wpn;
                    bit_set(&mut key[2 * w..], v.index());
                }
            }
        }
        key
    }

    fn is_goal(&self, key: &[u64]) -> bool {
        let need_blue = self.instance.sink_convention() == rbp_core::SinkConvention::RequireBlue;
        (0..self.n).all(|v| {
            !self.sinks[v]
                || if need_blue {
                    self.is_blue(key, v)
                } else {
                    self.is_red(key, v) || self.is_blue(key, v)
                }
        })
    }

    fn intern(&mut self, key: &[u64]) -> (u32, bool) {
        if let Some(&id) = self.ids.get(key) {
            return (id, false);
        }
        let id = self.keys.len() as u32;
        let boxed: Box<[u64]> = key.into();
        self.ids.insert(boxed.clone(), id);
        self.keys.push(boxed);
        self.dist.push(u64::MAX);
        self.parent.push((NO_PARENT, Move::Delete(NodeId::new(0))));
        self.settled.push(false);
        (id, true)
    }

    /// Whether `v` still has a successor that is uncomputed (oneshot only;
    /// callers guard on `self.oneshot`).
    fn has_uncomputed_successor(&self, key: &[u64], v: usize) -> bool {
        self.instance
            .dag()
            .succs(NodeId::new(v))
            .iter()
            .any(|w| !self.is_computed(key, w.index()))
    }

    /// Oneshot dead-state check: is any sink permanently unreachable?
    fn is_dead(&self, key: &[u64]) -> bool {
        debug_assert!(self.oneshot);
        // avail[v]: v's value can (still) be made red at some point
        let mut avail = vec![false; self.n];
        for &v in &self.topo {
            let i = v.index();
            avail[i] = if self.is_computed(key, i) {
                self.is_red(key, i) || self.is_blue(key, i)
            } else {
                self.instance
                    .dag()
                    .preds(v)
                    .iter()
                    .all(|p| avail[p.index()])
            };
        }
        (0..self.n).any(|v| {
            self.sinks[v]
                && if self.is_computed(key, v) {
                    !self.is_red(key, v) && !self.is_blue(key, v)
                } else {
                    !avail[v]
                }
        })
    }

    /// Admissible oneshot heuristic: every blue node with an uncomputed
    /// successor costs at least one more load.
    fn heuristic(&self, key: &[u64]) -> u64 {
        if !self.oneshot || !self.cfg.astar {
            return 0;
        }
        let mut h = 0u64;
        for v in 0..self.n {
            if self.is_blue(key, v) && self.has_uncomputed_successor(key, v) {
                h += self.eps_den;
            }
        }
        h
    }

    fn run(mut self) -> Result<ExactReport, SolveError> {
        let init = self.initial_key();
        let (root, _) = self.intern(&init);
        self.dist[root as usize] = 0;
        let h0 = self.heuristic(&init);
        self.heap.push(Reverse((h0, root)));

        let mut expanded = 0usize;
        while let Some(Reverse((_prio, id))) = self.heap.pop() {
            if self.settled[id as usize] {
                continue;
            }
            self.settled[id as usize] = true;
            let key: Box<[u64]> = self.keys[id as usize].clone();
            let d = self.dist[id as usize];
            expanded += 1;

            if self.is_goal(&key) {
                return Ok(ExactReport {
                    cost: self.recover_cost(id),
                    trace: self.recover_trace(id),
                    states_expanded: expanded,
                    states_seen: self.keys.len(),
                });
            }
            if self.cfg.prune && self.oneshot && self.is_dead(&key) {
                continue;
            }
            self.expand(id, &key, d)?;
        }
        Err(SolveError::NoPebblingFound)
    }

    fn expand(&mut self, from: u32, key: &[u64], d: u64) -> Result<(), SolveError> {
        let model = self.instance.model();
        let r_limit = self.instance.red_limit();
        let red_count = self.red_count(key);
        let prune = self.cfg.prune;
        let initially_blue = self.instance.source_convention() == SourceConvention::InitiallyBlue;

        for v in 0..self.n {
            let node = NodeId::new(v);
            let red = self.is_red(key, v);
            let blue = self.is_blue(key, v);
            if red {
                // Store(v)
                let useful = !prune
                    || !self.oneshot
                    || self.sinks[v]
                    || self.has_uncomputed_successor(key, v);
                if useful {
                    self.scratch.copy_from_slice(key);
                    bit_clear(&mut self.scratch[..self.wpn], v);
                    bit_set(&mut self.scratch[self.wpn..2 * self.wpn], v);
                    self.push_succ(from, Move::Store(node), d, self.eps_den)?;
                }
                // Delete(v)
                if model.allows_delete() {
                    let dead =
                        self.oneshot && (self.sinks[v] || self.has_uncomputed_successor(key, v));
                    if !(prune && dead) {
                        self.scratch.copy_from_slice(key);
                        bit_clear(&mut self.scratch[..self.wpn], v);
                        self.push_succ(from, Move::Delete(node), d, 0)?;
                    }
                }
            } else if blue {
                // Load(v)
                if red_count < r_limit {
                    let useful = !prune || !self.oneshot || self.has_uncomputed_successor(key, v);
                    if useful {
                        self.scratch.copy_from_slice(key);
                        bit_clear(&mut self.scratch[self.wpn..2 * self.wpn], v);
                        bit_set(&mut self.scratch[..self.wpn], v);
                        self.push_succ(from, Move::Load(node), d, self.eps_den)?;
                    }
                }
                // Delete of a blue pebble: dominated (prune rule 1)
                if model.allows_delete() && !prune {
                    self.scratch.copy_from_slice(key);
                    bit_clear(&mut self.scratch[self.wpn..2 * self.wpn], v);
                    self.push_succ(from, Move::Delete(node), d, 0)?;
                }
                // Compute onto blue (nodel recomputation; legal in base too)
                self.try_compute(from, key, d, v, red_count, initially_blue)?;
            } else {
                // Compute onto an empty node
                self.try_compute(from, key, d, v, red_count, initially_blue)?;
            }
        }
        Ok(())
    }

    fn try_compute(
        &mut self,
        from: u32,
        key: &[u64],
        d: u64,
        v: usize,
        red_count: usize,
        initially_blue: bool,
    ) -> Result<(), SolveError> {
        let node = NodeId::new(v);
        let model = self.instance.model();
        if !model.allows_recompute() && self.is_computed(key, v) {
            return Ok(());
        }
        if initially_blue && self.instance.dag().is_source(node) {
            return Ok(());
        }
        if red_count >= self.instance.red_limit() {
            return Ok(());
        }
        if !self
            .instance
            .dag()
            .preds(node)
            .iter()
            .all(|p| self.is_red(key, p.index()))
        {
            return Ok(());
        }
        self.scratch.copy_from_slice(key);
        bit_clear(&mut self.scratch[self.wpn..2 * self.wpn], v); // replace blue if any
        bit_set(&mut self.scratch[..self.wpn], v);
        if self.track_computed {
            let w = self.wpn;
            bit_set(&mut self.scratch[2 * w..], v);
        }
        self.push_succ(from, Move::Compute(node), d, self.eps_num)
    }

    fn push_succ(&mut self, from: u32, mv: Move, d: u64, delta: u64) -> Result<(), SolveError> {
        // self.scratch holds the successor key
        let key = std::mem::take(&mut self.scratch);
        let (id, _fresh) = self.intern(&key);
        self.scratch = key;
        if self.keys.len() > self.cfg.max_states {
            return Err(SolveError::StateLimitExceeded {
                limit: self.cfg.max_states,
            });
        }
        let nd = d + delta;
        if !self.settled[id as usize] && nd < self.dist[id as usize] {
            self.dist[id as usize] = nd;
            self.parent[id as usize] = (from, mv);
            // scratch still holds the successor key
            let h = self.heuristic(&self.scratch);
            self.heap.push(Reverse((nd + h, id)));
        }
        Ok(())
    }

    fn recover_trace(&self, goal: u32) -> Pebbling {
        let mut moves = Vec::new();
        let mut cur = goal;
        while self.parent[cur as usize].0 != NO_PARENT {
            let (prev, mv) = self.parent[cur as usize];
            moves.push(mv);
            cur = prev;
        }
        moves.reverse();
        Pebbling::from_moves(moves)
    }

    fn recover_cost(&self, goal: u32) -> Cost {
        let trace = self.recover_trace(goal);
        let stats = trace.stats();
        Cost {
            transfers: stats.transfers(),
            computes: stats.computes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{engine, CostModel};
    use rbp_graph::{generate, DagBuilder};

    fn check_optimal(instance: &Instance, expect_scaled: u64) {
        let rep = solve_exact(instance).unwrap();
        // reported trace must be valid and match the reported cost
        let sim = engine::simulate(instance, &rep.trace).unwrap();
        assert_eq!(sim.cost, rep.cost, "trace cost mismatch");
        assert!(sim.peak_red <= instance.red_limit());
        assert_eq!(
            rep.cost.scaled(instance.model().epsilon()),
            expect_scaled as u128
        );
    }

    #[test]
    fn chain_is_free_with_two_pebbles_oneshot() {
        let inst = Instance::new(generate::chain(6), 2, CostModel::oneshot());
        check_optimal(&inst, 0);
    }

    #[test]
    fn chain_infeasible_with_one_pebble() {
        let inst = Instance::new(generate::chain(3), 1, CostModel::oneshot());
        assert!(matches!(solve_exact(&inst), Err(SolveError::Pebbling(_))));
    }

    #[test]
    fn join_is_free_with_three_pebbles() {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        check_optimal(&inst, 0);
    }

    #[test]
    fn two_joins_sharing_inputs_tight_memory() {
        // 0,1 -> 3 ; 1,2 -> 4, with R = 3: an optimal order interleaves to
        // avoid transfers entirely (compute 0,1,3; drop 0&3 handling...).
        let mut b = DagBuilder::new(5);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        b.add_edge(2, 4);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        // compute 0,1 (2 red), compute 3 (3 red), store 3? No: delete 0
        // (never needed again), compute 2, compute 4 needs slot: 3 is a
        // sink -> store costs 1? But delete 3 is illegal-to-win... Actually
        // after computing 3 we can store nothing: red = {0,1,3}. Delete 0
        // (free) -> {1,3}, compute 2 -> {1,2,3}, need slot for 4: store 3
        // (sink, must keep) cost 1... or could we have stored 3 earlier?
        // Any way round, one transfer is forced: R=3, two sinks + shared
        // input... The exact solver decides: assert optimum is 1.
        check_optimal(&inst, 1);
    }

    #[test]
    fn nodel_chain_must_store_everything_but_last_two() {
        // nodel, chain of 5, R = 2: pebbles cannot be deleted, so nodes
        // 0, 1, 2 are each stored once when their slot is needed; the last
        // two nodes end red. Cost = n − R = 3 (the Section-4 lower bound,
        // tight here).
        let inst = Instance::new(generate::chain(5), 2, CostModel::nodel());
        check_optimal(&inst, 3);
    }

    #[test]
    fn base_chain_is_free_via_deletion() {
        let inst = Instance::new(generate::chain(5), 2, CostModel::base());
        check_optimal(&inst, 0);
    }

    #[test]
    fn compcost_chain_costs_epsilon_per_node() {
        // R=2 suffices; each node computed exactly once: scaled cost = n·num
        let inst = Instance::new(generate::chain(5), 2, CostModel::compcost());
        check_optimal(&inst, 5);
    }

    #[test]
    fn pruned_matches_reference_on_small_dags() {
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            for _ in 0..6 {
                let dag = generate::gnp_dag(6, 0.4, 2, &mut rng);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind));
                let fast = solve_exact(&inst).unwrap();
                let slow = solve_reference(&inst).unwrap();
                assert_eq!(
                    fast.cost.scaled(inst.model().epsilon()),
                    slow.cost.scaled(inst.model().epsilon()),
                    "prune changed optimum for {kind} on {:?}",
                    inst
                );
            }
        }
    }

    #[test]
    fn astar_matches_dijkstra() {
        let mut rng = rand::thread_rng();
        for _ in 0..5 {
            let dag = generate::layered(3, 3, 2, &mut rng);
            let inst = Instance::new(dag, 3, CostModel::oneshot());
            let astar = solve_exact_with(
                &inst,
                ExactConfig {
                    astar: true,
                    ..ExactConfig::default()
                },
            )
            .unwrap();
            let dij = solve_exact_with(
                &inst,
                ExactConfig {
                    astar: false,
                    ..ExactConfig::default()
                },
            )
            .unwrap();
            assert_eq!(astar.cost, dij.cost);
            assert!(astar.states_expanded <= dij.states_expanded + 5);
        }
    }

    #[test]
    fn state_limit_respected() {
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 3, &mut rng);
        let inst = Instance::new(dag, 5, CostModel::oneshot());
        let res = solve_exact_with(
            &inst,
            ExactConfig {
                max_states: 10,
                ..ExactConfig::default()
            },
        );
        assert_eq!(
            res.unwrap_err(),
            SolveError::StateLimitExceeded { limit: 10 }
        );
    }

    #[test]
    fn optimum_monotone_in_r() {
        let mut b = DagBuilder::new(6);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        b.add_edge(2, 4);
        b.add_edge(3, 5);
        b.add_edge(4, 5);
        let dag = b.build().unwrap();
        let mut prev = u128::MAX;
        for r in 3..=6 {
            let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
            let rep = solve_exact(&inst).unwrap();
            let c = rep.cost.scaled(inst.model().epsilon());
            assert!(c <= prev, "opt must not increase with more red pebbles");
            prev = c;
        }
    }

    #[test]
    fn initially_blue_sources_cost_loads() {
        // chain of 2 with blue-start sources: must load the source (1),
        // then compute the sink: optimum 1.
        let inst = Instance::new(generate::chain(2), 2, CostModel::oneshot())
            .with_source_convention(SourceConvention::InitiallyBlue);
        check_optimal(&inst, 1);
    }

    #[test]
    fn require_blue_sinks_adds_final_store() {
        let inst = Instance::new(generate::chain(2), 2, CostModel::oneshot())
            .with_sink_convention(rbp_core::SinkConvention::RequireBlue);
        check_optimal(&inst, 1);
    }
}

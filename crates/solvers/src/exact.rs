//! Exact optimal pebbling via Dijkstra / A* over configurations.
//!
//! A configuration is `(red, blue[, computed])` packed into `u64` words;
//! moves are edges weighted by their scaled cost (`transfers·den +
//! computes·num`, exact integers). Dijkstra over this graph yields the
//! optimal pebbling cost and, via parent pointers, an optimal trace.
//!
//! ## State keys per model
//! - **base / compcost / nodel**: `(red, blue)`. The computed set does not
//!   constrain future legality (recomputation is allowed), so it is
//!   omitted — this also merges states that differ only in history.
//! - **oneshot**: `(red, blue, computed)`, because each node admits one
//!   compute.
//!
//! ## Hot-path layout
//! The expand loop allocates nothing. All machinery is flat:
//!
//! - **Arena interning** ([`StateArena`]): every key lives contiguously in
//!   one `Vec<u64>`; a linear-probe table of `u32` ids (hashed from arena
//!   slices) replaces the old `HashMap<Box<[u64]>, u32>`. A hit is a hash
//!   probe plus one slice compare; a miss appends `key_words` words.
//! - **Struct-of-arrays bookkeeping** ([`NodeTable`]): `dist`, `parent`,
//!   `settled` and the incremental metadata below are parallel arrays
//!   indexed by state id.
//! - **Bitset adjacency** ([`Dag::pred_mask`]/[`Dag::succ_mask`]): the
//!   "all inputs red" gate of a compute and the "has an uncomputed
//!   successor" prune are word-wise `ANDN` loops over packed mask rows,
//!   not per-edge iteration.
//! - **Scratch reuse**: the successor-key buffer, the popped-key buffer,
//!   and the dead-state reachability words are solver-owned and reused
//!   across every expansion.
//!
//! ## Incremental-delta invariants
//! Three state functions are threaded through expansion as ±deltas and
//! cached per state instead of being rescanned:
//!
//! - `red_count`: `+1` on Load/Compute, `−1` on Store/Delete-of-red.
//! - `unsat_sinks`: the number of sinks violating the finishing
//!   convention; a state is a goal iff it is 0. Only the moved node's
//!   pebbles change, so only a sink move can shift it by ±1.
//! - `heur`: the A* heuristic value (below). A move on `v` changes only
//!   `v`'s own contribution, via its blue membership. A Compute changes
//!   nothing: the computed node was not blue (pebbled ⊆ computed in
//!   oneshot), and the only nodes whose "has an uncomputed successor"
//!   status flips are its predecessors, which the compute guard requires
//!   to be red — red and blue being disjoint, none of them is counted
//!   before or after.
//!
//! Each value is a pure function of the state key, so it is stored once
//! at intern time regardless of which path reaches the state first, and
//! debug builds assert every delta against a full rescan.
//!
//! ## Optimality-preserving pruning (`prune = true`)
//! All prunes below keep at least one optimal pebbling intact; the
//! unpruned mode (`prune = false`) is the brute-force reference that the
//! test-suite compares against on small instances.
//!
//! 1. *Never delete a blue pebble* (all models with deletion): a state
//!    with a superset of blue pebbles and identical red/computed sets can
//!    replay any continuation of the smaller state at equal cost, so the
//!    delete only moves to a dominated state.
//! 2. *(oneshot)* Skip `Load(v)`/`Store(v)` when `v` has no uncomputed
//!    successor and is not a sink: the pebble can never enable anything
//!    again, so the optimal continuation never pays to move it.
//! 3. *(oneshot)* Skip `Delete(v)` when `v` still has an uncomputed
//!    successor, or when `v` is a sink: recomputation is forbidden, so
//!    both cases make the goal unreachable (dead state).
//! 4. *(oneshot)* Dead-state check at expansion: if some sink is already
//!    unreachable (computed but unpebbled, or uncomputed with an
//!    unreachable input), the subtree is abandoned.
//!
//! ## A*
//! For oneshot an admissible, consistent heuristic is available: every
//! node that is blue and still has an uncomputed successor must be loaded
//! at least once more (recomputation being forbidden), contributing 1
//! transfer each.

use crate::arena::{NodeTable, StateArena, NO_STATE};
use crate::error::SolveError;
use rbp_core::{bounds, Cost, Instance, ModelKind, Move, Pebbling, SourceConvention};
use rbp_graph::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[cfg(doc)]
use rbp_graph::Dag;

/// Configuration for [`solve_exact_with`].
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Abort with [`SolveError::StateLimitExceeded`] after interning this
    /// many states (memory guard).
    pub max_states: usize,
    /// Enable the optimality-preserving prunes documented on this module.
    pub prune: bool,
    /// Use the admissible oneshot heuristic (ignored for other models).
    pub astar: bool,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_states: 8_000_000,
            prune: true,
            astar: true,
        }
    }
}

/// Result of an exact solve.
#[derive(Clone, Debug)]
pub struct ExactReport {
    /// Exact optimal cost.
    pub cost: Cost,
    /// An optimal pebbling realizing that cost.
    pub trace: Pebbling,
    /// Number of states popped from the queue.
    pub states_expanded: usize,
    /// Number of distinct states interned.
    pub states_seen: usize,
}

/// Solves the instance exactly with default configuration.
///
/// # Example
/// ```
/// use rbp_core::{CostModel, Instance};
/// use rbp_graph::generate;
/// use rbp_solvers::solve_exact;
///
/// // a dependency chain fits in 2 red pebbles at zero I/O cost
/// let inst = Instance::new(generate::chain(8), 2, CostModel::oneshot());
/// let opt = solve_exact(&inst).unwrap();
/// assert_eq!(opt.cost.transfers, 0);
/// // the trace is a concrete, replayable schedule
/// assert!(rbp_core::simulate(&inst, &opt.trace).is_ok());
/// ```
pub fn solve_exact(instance: &Instance) -> Result<ExactReport, SolveError> {
    solve_exact_with(instance, ExactConfig::default())
}

/// Brute-force reference: no pruning, no heuristic. Exponentially slower;
/// only for cross-validating [`solve_exact`] on tiny instances.
pub fn solve_reference(instance: &Instance) -> Result<ExactReport, SolveError> {
    solve_exact_with(
        instance,
        ExactConfig {
            max_states: 4_000_000,
            prune: false,
            astar: false,
        },
    )
}

/// Solves the instance exactly with the given configuration.
pub fn solve_exact_with(instance: &Instance, cfg: ExactConfig) -> Result<ExactReport, SolveError> {
    bounds::check_feasible(instance)?;
    Search::new(instance, cfg).run()
}

// ---------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------

#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1 << (i % 64)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

#[inline]
fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1 << (i % 64));
}

/// The incrementally maintained metadata of one state (see the module
/// docs): carried from a popped state to each successor as ±deltas.
#[derive(Clone, Copy)]
struct Meta {
    red: u32,
    unsat: u32,
    heur: u64,
}

impl Meta {
    /// Applies a signed delta to the unsatisfied-sink count.
    #[inline]
    fn bump_unsat(self, delta: i32) -> u32 {
        (self.unsat as i32 + delta) as u32
    }
}

struct Search<'a> {
    instance: &'a Instance,
    cfg: ExactConfig,
    n: usize,
    wpn: usize,       // words per node-set
    key_words: usize, // words per state key (2·wpn or 3·wpn)
    oneshot: bool,
    track_computed: bool,
    /// Whether the A* heuristic is live (`cfg.astar` and the model is
    /// oneshot); when false every stored `heur` is 0.
    astar: bool,
    /// Whether sinks must end blue ([`rbp_core::SinkConvention`]).
    need_blue: bool,
    eps_num: u64,
    eps_den: u64,
    // flat state storage
    arena: StateArena,
    nodes: NodeTable,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    // reusable scratch (no per-expansion allocation)
    scratch: Vec<u64>,
    /// Dead-state reachability words (`avail` bit per node), reused.
    avail: Vec<u64>,
    // per-node static info
    sinks: Vec<bool>,
    sink_ids: Vec<u32>,
    topo: Vec<NodeId>,
}

impl<'a> Search<'a> {
    fn new(instance: &'a Instance, cfg: ExactConfig) -> Self {
        let n = instance.dag().n();
        let wpn = rbp_graph::words_for(n);
        debug_assert_eq!(wpn, instance.dag().mask_words());
        let oneshot = instance.model().kind() == ModelKind::Oneshot;
        let track_computed = oneshot;
        let key_words = if track_computed { 3 * wpn } else { 2 * wpn };
        let eps = instance.model().epsilon();
        let (eps_num, eps_den) = if eps.is_zero() {
            (0, 1)
        } else {
            (eps.num(), eps.den())
        };
        let sinks: Vec<bool> = instance
            .dag()
            .nodes()
            .map(|v| instance.dag().is_sink(v))
            .collect();
        let sink_ids = sinks
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| i as u32)
            .collect();
        Search {
            instance,
            cfg,
            n,
            wpn,
            key_words,
            oneshot,
            track_computed,
            astar: cfg.astar && oneshot,
            need_blue: instance.sink_convention() == rbp_core::SinkConvention::RequireBlue,
            eps_num,
            eps_den,
            arena: StateArena::new(key_words),
            nodes: NodeTable::new(),
            heap: BinaryHeap::new(),
            scratch: vec![0; key_words],
            avail: vec![0; wpn],
            sinks,
            sink_ids,
            topo: rbp_graph::topological_order(instance.dag()),
        }
    }

    #[inline]
    fn is_red(&self, key: &[u64], v: usize) -> bool {
        bit_get(&key[..self.wpn], v)
    }

    #[inline]
    fn is_blue(&self, key: &[u64], v: usize) -> bool {
        bit_get(&key[self.wpn..2 * self.wpn], v)
    }

    #[inline]
    fn is_computed(&self, key: &[u64], v: usize) -> bool {
        if self.track_computed {
            bit_get(&key[2 * self.wpn..], v)
        } else {
            // models without the computed set allow recomputation, so
            // "has it been computed" never gates legality; pebbled is the
            // only meaningful proxy where needed
            self.is_red(key, v) || self.is_blue(key, v)
        }
    }

    fn initial_key(&self) -> Vec<u64> {
        let mut key = vec![0u64; self.key_words];
        if self.instance.source_convention() == SourceConvention::InitiallyBlue {
            for v in self.instance.dag().sources() {
                bit_set(&mut key[self.wpn..2 * self.wpn], v.index());
                if self.track_computed {
                    let w = self.wpn;
                    bit_set(&mut key[2 * w..], v.index());
                }
            }
        }
        key
    }

    /// Whether `v` still has a successor that is uncomputed, as one
    /// `ANDN` loop over the packed successor mask (oneshot only; callers
    /// guard on `self.oneshot`, which implies the computed set is
    /// tracked).
    #[inline]
    fn has_uncomputed_successor(&self, key: &[u64], v: usize) -> bool {
        debug_assert!(self.track_computed);
        let mask = self.instance.dag().succ_mask(NodeId::new(v));
        let computed = &key[2 * self.wpn..];
        mask.iter().zip(computed).any(|(m, c)| m & !c != 0)
    }

    /// Rescan of the red-pebble count; root init and debug asserts only.
    fn red_count_scan(&self, key: &[u64]) -> usize {
        key[..self.wpn]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Rescan of the unsatisfied-sink count; root init and debug asserts.
    fn unsat_scan(&self, key: &[u64]) -> u32 {
        self.sink_ids
            .iter()
            .filter(|&&s| {
                let v = s as usize;
                if self.need_blue {
                    !self.is_blue(key, v)
                } else {
                    !self.is_red(key, v) && !self.is_blue(key, v)
                }
            })
            .count() as u32
    }

    /// Rescan of the admissible oneshot heuristic; root init and debug
    /// asserts only — the hot path maintains it by deltas.
    fn heur_scan(&self, key: &[u64]) -> u64 {
        if !self.astar {
            return 0;
        }
        let mut h = 0u64;
        for v in 0..self.n {
            if self.is_blue(key, v) && self.has_uncomputed_successor(key, v) {
                h += self.eps_den;
            }
        }
        h
    }

    /// Oneshot dead-state check: is any sink permanently unreachable?
    /// Reuses `self.avail` (one reachability bit per node) instead of
    /// allocating, and gates each node on its packed pred mask.
    fn is_dead(&mut self, key: &[u64]) -> bool {
        debug_assert!(self.oneshot);
        let dag = self.instance.dag();
        self.avail.iter_mut().for_each(|w| *w = 0);
        // avail[v]: v's value can (still) be made red at some point
        for &v in &self.topo {
            let i = v.index();
            let ok = if self.is_computed(key, i) {
                self.is_red(key, i) || self.is_blue(key, i)
            } else {
                dag.pred_mask(v)
                    .iter()
                    .zip(self.avail.iter())
                    .all(|(p, a)| p & !a == 0)
            };
            if ok {
                self.avail[i / 64] |= 1 << (i % 64);
            }
        }
        self.sink_ids.iter().any(|&s| {
            let v = s as usize;
            if self.is_computed(key, v) {
                !self.is_red(key, v) && !self.is_blue(key, v)
            } else {
                !bit_get(&self.avail, v)
            }
        })
    }

    fn run(mut self) -> Result<ExactReport, SolveError> {
        let init = self.initial_key();
        let (root, fresh) = self.arena.intern(&init);
        debug_assert!(fresh);
        let root_meta = Meta {
            red: self.red_count_scan(&init) as u32,
            unsat: self.unsat_scan(&init),
            heur: self.heur_scan(&init),
        };
        self.nodes
            .push(root_meta.red, root_meta.unsat, root_meta.heur);
        self.nodes.dist[root as usize] = 0;
        self.heap.push(Reverse((root_meta.heur, root)));

        let mut expanded = 0usize;
        let mut key_buf: Vec<u64> = Vec::with_capacity(self.key_words);
        while let Some(Reverse((_prio, id))) = self.heap.pop() {
            let idx = id as usize;
            if self.nodes.settled[idx] {
                continue;
            }
            self.nodes.settled[idx] = true;
            key_buf.clear();
            key_buf.extend_from_slice(self.arena.key(id));
            let d = self.nodes.dist[idx];
            let meta = Meta {
                red: self.nodes.red_count[idx],
                unsat: self.nodes.unsat_sinks[idx],
                heur: self.nodes.heur[idx],
            };
            expanded += 1;

            if meta.unsat == 0 {
                let trace = self.recover_trace(id);
                let stats = trace.stats();
                return Ok(ExactReport {
                    cost: Cost {
                        transfers: stats.transfers(),
                        computes: stats.computes,
                    },
                    trace,
                    states_expanded: expanded,
                    states_seen: self.arena.len(),
                });
            }
            if self.cfg.prune && self.oneshot && self.is_dead(&key_buf) {
                continue;
            }
            self.expand(id, &key_buf, d, meta)?;
        }
        Err(SolveError::NoPebblingFound)
    }

    fn expand(&mut self, from: u32, key: &[u64], d: u64, meta: Meta) -> Result<(), SolveError> {
        let model = self.instance.model();
        let r_limit = self.instance.red_limit();
        let prune = self.cfg.prune;

        for v in 0..self.n {
            let node = NodeId::new(v);
            let red = self.is_red(key, v);
            let blue = self.is_blue(key, v);
            let is_sink = self.sinks[v];
            if red {
                let unc = self.oneshot && self.has_uncomputed_successor(key, v);
                // Store(v): red -> blue
                let useful = !prune || !self.oneshot || is_sink || unc;
                if useful {
                    self.scratch.copy_from_slice(key);
                    bit_clear(&mut self.scratch[..self.wpn], v);
                    bit_set(&mut self.scratch[self.wpn..2 * self.wpn], v);
                    let child = Meta {
                        red: meta.red - 1,
                        // a red sink only counts as satisfied under
                        // AnyPebble; turning it blue satisfies RequireBlue
                        unsat: meta.bump_unsat(if is_sink && self.need_blue { -1 } else { 0 }),
                        // v is now blue; if it still has an uncomputed
                        // successor it joins the heuristic count
                        heur: meta.heur + if self.astar && unc { self.eps_den } else { 0 },
                    };
                    self.push_succ(from, Move::Store(node), d, self.eps_den, child)?;
                }
                // Delete(v) of a red pebble
                if model.allows_delete() {
                    let dead = self.oneshot && (is_sink || unc);
                    if !(prune && dead) {
                        self.scratch.copy_from_slice(key);
                        bit_clear(&mut self.scratch[..self.wpn], v);
                        let child = Meta {
                            red: meta.red - 1,
                            unsat: meta.bump_unsat(if is_sink && !self.need_blue { 1 } else { 0 }),
                            heur: meta.heur, // blue set unchanged
                        };
                        self.push_succ(from, Move::Delete(node), d, 0, child)?;
                    }
                }
            } else if blue {
                let unc = self.oneshot && self.has_uncomputed_successor(key, v);
                // Load(v): blue -> red
                if (meta.red as usize) < r_limit {
                    let useful = !prune || !self.oneshot || unc;
                    if useful {
                        self.scratch.copy_from_slice(key);
                        bit_clear(&mut self.scratch[self.wpn..2 * self.wpn], v);
                        bit_set(&mut self.scratch[..self.wpn], v);
                        let child = Meta {
                            red: meta.red + 1,
                            // a blue sink was satisfied either way; as red
                            // it fails RequireBlue
                            unsat: meta.bump_unsat(if is_sink && self.need_blue { 1 } else { 0 }),
                            heur: meta.heur - if self.astar && unc { self.eps_den } else { 0 },
                        };
                        self.push_succ(from, Move::Load(node), d, self.eps_den, child)?;
                    }
                }
                // Delete of a blue pebble: dominated (prune rule 1)
                if model.allows_delete() && !prune {
                    self.scratch.copy_from_slice(key);
                    bit_clear(&mut self.scratch[self.wpn..2 * self.wpn], v);
                    let child = Meta {
                        red: meta.red,
                        unsat: meta.bump_unsat(if is_sink { 1 } else { 0 }),
                        heur: meta.heur - if self.astar && unc { self.eps_den } else { 0 },
                    };
                    self.push_succ(from, Move::Delete(node), d, 0, child)?;
                }
                // Compute onto blue (nodel recomputation; legal in base too)
                self.try_compute(from, key, d, v, meta)?;
            } else {
                // Compute onto an empty node
                self.try_compute(from, key, d, v, meta)?;
            }
        }
        Ok(())
    }

    fn try_compute(
        &mut self,
        from: u32,
        key: &[u64],
        d: u64,
        v: usize,
        meta: Meta,
    ) -> Result<(), SolveError> {
        let node = NodeId::new(v);
        let model = self.instance.model();
        if !model.allows_recompute() && self.is_computed(key, v) {
            return Ok(());
        }
        if self.instance.source_convention() == SourceConvention::InitiallyBlue
            && self.instance.dag().is_source(node)
        {
            return Ok(());
        }
        if meta.red as usize >= self.instance.red_limit() {
            return Ok(());
        }
        // all inputs red: pred_mask ANDN red-words must be empty
        if self
            .instance
            .dag()
            .pred_mask(node)
            .iter()
            .zip(&key[..self.wpn])
            .any(|(p, r)| p & !r != 0)
        {
            return Ok(());
        }
        let was_blue = self.is_blue(key, v);
        self.scratch.copy_from_slice(key);
        bit_clear(&mut self.scratch[self.wpn..2 * self.wpn], v); // replace blue if any
        bit_set(&mut self.scratch[..self.wpn], v);
        if self.track_computed {
            let w = self.wpn;
            bit_set(&mut self.scratch[2 * w..], v);
        }
        let is_sink = self.sinks[v];
        let d_unsat = match (is_sink, self.need_blue, was_blue) {
            (false, _, _) => 0,
            (true, true, true) => 1,    // satisfied blue sink turns red
            (true, true, false) => 0,   // still not blue
            (true, false, true) => 0,   // pebbled before and after
            (true, false, false) => -1, // newly pebbled
        };
        // The heuristic is unchanged by a compute: `v` itself was not
        // blue (in oneshot every pebbled node is computed and computed
        // nodes are not recomputable), and the only other nodes whose
        // "has an uncomputed successor" status could flip are `v`'s
        // predecessors — which the guard above requires to be red, hence
        // not blue, hence outside the blue-node count either way.
        let child = Meta {
            red: meta.red + 1,
            unsat: meta.bump_unsat(d_unsat),
            heur: meta.heur,
        };
        self.push_succ(from, Move::Compute(node), d, self.eps_num, child)
    }

    fn push_succ(
        &mut self,
        from: u32,
        mv: Move,
        d: u64,
        cost: u64,
        meta: Meta,
    ) -> Result<(), SolveError> {
        // self.scratch holds the successor key
        let key = std::mem::take(&mut self.scratch);
        let (id, fresh) = self.arena.intern(&key);
        if fresh {
            // the deltas must agree with a full rescan of the child key
            debug_assert_eq!(meta.red as usize, self.red_count_scan(&key));
            debug_assert_eq!(meta.unsat, self.unsat_scan(&key));
            debug_assert_eq!(meta.heur, self.heur_scan(&key));
            self.nodes.push(meta.red, meta.unsat, meta.heur);
        }
        self.scratch = key;
        if self.arena.len() > self.cfg.max_states {
            return Err(SolveError::StateLimitExceeded {
                limit: self.cfg.max_states,
            });
        }
        let idx = id as usize;
        let nd = d + cost;
        if !self.nodes.settled[idx] && nd < self.nodes.dist[idx] {
            self.nodes.dist[idx] = nd;
            self.nodes.parent[idx] = (from, mv);
            self.heap.push(Reverse((nd + self.nodes.heur[idx], id)));
        }
        Ok(())
    }

    /// Walks parent pointers from `goal` to the root. Called exactly once
    /// per solve; [`ExactReport::cost`] is derived from the same trace.
    fn recover_trace(&self, goal: u32) -> Pebbling {
        let mut moves = Vec::new();
        let mut cur = goal;
        while self.nodes.parent[cur as usize].0 != NO_STATE {
            let (prev, mv) = self.nodes.parent[cur as usize];
            moves.push(mv);
            cur = prev;
        }
        moves.reverse();
        Pebbling::from_moves(moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{engine, CostModel};
    use rbp_graph::{generate, DagBuilder};

    fn check_optimal(instance: &Instance, expect_scaled: u64) {
        let rep = solve_exact(instance).unwrap();
        // reported trace must be valid and match the reported cost
        let sim = engine::simulate(instance, &rep.trace).unwrap();
        assert_eq!(sim.cost, rep.cost, "trace cost mismatch");
        assert!(sim.peak_red <= instance.red_limit());
        assert_eq!(
            rep.cost.scaled(instance.model().epsilon()),
            expect_scaled as u128
        );
    }

    #[test]
    fn chain_is_free_with_two_pebbles_oneshot() {
        let inst = Instance::new(generate::chain(6), 2, CostModel::oneshot());
        check_optimal(&inst, 0);
    }

    #[test]
    fn chain_infeasible_with_one_pebble() {
        let inst = Instance::new(generate::chain(3), 1, CostModel::oneshot());
        assert!(matches!(solve_exact(&inst), Err(SolveError::Pebbling(_))));
    }

    #[test]
    fn join_is_free_with_three_pebbles() {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        check_optimal(&inst, 0);
    }

    #[test]
    fn two_joins_sharing_inputs_tight_memory() {
        // 0,1 -> 3 ; 1,2 -> 4, with R = 3: an optimal order interleaves to
        // avoid transfers entirely (compute 0,1,3; drop 0&3 handling...).
        let mut b = DagBuilder::new(5);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        b.add_edge(2, 4);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        // compute 0,1 (2 red), compute 3 (3 red), store 3? No: delete 0
        // (never needed again), compute 2, compute 4 needs slot: 3 is a
        // sink -> store costs 1? But delete 3 is illegal-to-win... Actually
        // after computing 3 we can store nothing: red = {0,1,3}. Delete 0
        // (free) -> {1,3}, compute 2 -> {1,2,3}, need slot for 4: store 3
        // (sink, must keep) cost 1... or could we have stored 3 earlier?
        // Any way round, one transfer is forced: R=3, two sinks + shared
        // input... The exact solver decides: assert optimum is 1.
        check_optimal(&inst, 1);
    }

    #[test]
    fn nodel_chain_must_store_everything_but_last_two() {
        // nodel, chain of 5, R = 2: pebbles cannot be deleted, so nodes
        // 0, 1, 2 are each stored once when their slot is needed; the last
        // two nodes end red. Cost = n − R = 3 (the Section-4 lower bound,
        // tight here).
        let inst = Instance::new(generate::chain(5), 2, CostModel::nodel());
        check_optimal(&inst, 3);
    }

    #[test]
    fn base_chain_is_free_via_deletion() {
        let inst = Instance::new(generate::chain(5), 2, CostModel::base());
        check_optimal(&inst, 0);
    }

    #[test]
    fn compcost_chain_costs_epsilon_per_node() {
        // R=2 suffices; each node computed exactly once: scaled cost = n·num
        let inst = Instance::new(generate::chain(5), 2, CostModel::compcost());
        check_optimal(&inst, 5);
    }

    #[test]
    fn pruned_matches_reference_on_small_dags() {
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            for _ in 0..6 {
                let dag = generate::gnp_dag(6, 0.4, 2, &mut rng);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind));
                let fast = solve_exact(&inst).unwrap();
                let slow = solve_reference(&inst).unwrap();
                assert_eq!(
                    fast.cost.scaled(inst.model().epsilon()),
                    slow.cost.scaled(inst.model().epsilon()),
                    "prune changed optimum for {kind} on {:?}",
                    inst
                );
            }
        }
    }

    #[test]
    fn astar_matches_dijkstra() {
        let mut rng = rand::thread_rng();
        for _ in 0..5 {
            let dag = generate::layered(3, 3, 2, &mut rng);
            let inst = Instance::new(dag, 3, CostModel::oneshot());
            let astar = solve_exact_with(
                &inst,
                ExactConfig {
                    astar: true,
                    ..ExactConfig::default()
                },
            )
            .unwrap();
            let dij = solve_exact_with(
                &inst,
                ExactConfig {
                    astar: false,
                    ..ExactConfig::default()
                },
            )
            .unwrap();
            assert_eq!(astar.cost, dij.cost);
            assert!(astar.states_expanded <= dij.states_expanded + 5);
        }
    }

    #[test]
    fn state_limit_respected() {
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 3, &mut rng);
        let inst = Instance::new(dag, 5, CostModel::oneshot());
        let res = solve_exact_with(
            &inst,
            ExactConfig {
                max_states: 10,
                ..ExactConfig::default()
            },
        );
        assert_eq!(
            res.unwrap_err(),
            SolveError::StateLimitExceeded { limit: 10 }
        );
    }

    #[test]
    fn optimum_monotone_in_r() {
        let mut b = DagBuilder::new(6);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        b.add_edge(2, 4);
        b.add_edge(3, 5);
        b.add_edge(4, 5);
        let dag = b.build().unwrap();
        let mut prev = u128::MAX;
        for r in 3..=6 {
            let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
            let rep = solve_exact(&inst).unwrap();
            let c = rep.cost.scaled(inst.model().epsilon());
            assert!(c <= prev, "opt must not increase with more red pebbles");
            prev = c;
        }
    }

    #[test]
    fn initially_blue_sources_cost_loads() {
        // chain of 2 with blue-start sources: must load the source (1),
        // then compute the sink: optimum 1.
        let inst = Instance::new(generate::chain(2), 2, CostModel::oneshot())
            .with_source_convention(SourceConvention::InitiallyBlue);
        check_optimal(&inst, 1);
    }

    #[test]
    fn require_blue_sinks_adds_final_store() {
        let inst = Instance::new(generate::chain(2), 2, CostModel::oneshot())
            .with_sink_convention(rbp_core::SinkConvention::RequireBlue);
        check_optimal(&inst, 1);
    }

    #[test]
    fn require_blue_matches_reference_across_models() {
        // the RequireBlue unsat-delta table is exercised against the
        // unpruned reference, like the main matrix does for AnyPebble
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            for _ in 0..3 {
                let dag = generate::gnp_dag(5, 0.4, 2, &mut rng);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind))
                    .with_sink_convention(rbp_core::SinkConvention::RequireBlue);
                let fast = solve_exact(&inst).unwrap();
                let slow = solve_reference(&inst).unwrap();
                assert_eq!(
                    fast.cost.scaled(inst.model().epsilon()),
                    slow.cost.scaled(inst.model().epsilon()),
                    "prune changed RequireBlue optimum for {kind} on {:?}",
                    inst
                );
            }
        }
    }

    #[test]
    fn report_cost_always_derives_from_trace() {
        // ExactReport reconstructs the trace once; its cost must equal
        // the engine's replay of that same trace in every model
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            let dag = generate::gnp_dag(6, 0.35, 2, &mut rng);
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag, r, CostModel::of_kind(kind));
            let rep = solve_exact(&inst).unwrap();
            let sim = engine::simulate(&inst, &rep.trace).unwrap();
            assert_eq!(sim.cost, rep.cost, "cost must derive from the trace");
        }
    }
}

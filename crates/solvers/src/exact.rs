//! Exact optimal pebbling via Dijkstra / A* over configurations.
//!
//! A configuration is `(red, blue[, computed])` packed into `u64` words;
//! moves are edges weighted by their scaled cost (`transfers·den +
//! computes·num`, exact integers). Dijkstra over this graph yields the
//! optimal pebbling cost and, via parent pointers, an optimal trace.
//!
//! ## State keys per model
//! - **base / compcost / nodel**: `(red, blue)`. The computed set does not
//!   constrain future legality (recomputation is allowed), so it is
//!   omitted — this also merges states that differ only in history.
//! - **oneshot**: `(red, blue, computed)`, because each node admits one
//!   compute.
//!
//! ## Hot-path layout
//! The expand loop allocates nothing. All machinery is flat, and the move
//! generation itself lives in the shared [`Expander`] so the sequential
//! and parallel solvers explore one and the same configuration graph:
//!
//! - **Shared move generator** ([`Expander`]): guards, prunes, and the
//!   incremental ±delta metadata ([`Meta`]) are defined once; this solver
//!   plugs an intern-and-relax sink into [`Expander::expand`], the
//!   parallel solver ([`crate::parallel`]) plugs a shard router.
//! - **Arena interning** ([`StateArena`]): every key lives contiguously in
//!   one `Vec<u64>`; a linear-probe table of `u32` ids (hashed from arena
//!   slices) replaces the old `HashMap<Box<[u64]>, u32>`. A hit is a hash
//!   probe plus one slice compare; a miss appends `key_words` words. The
//!   same `hash_words` digest doubles as the shard router of the parallel
//!   solver ([`StateArena::shard_of`]), so a state's owner is a pure
//!   function of its key.
//! - **Struct-of-arrays bookkeeping** ([`NodeTable`]): `dist`, `parent`,
//!   `settled` and the incremental metadata are parallel arrays indexed
//!   by state id.
//! - **Bitset adjacency** ([`Dag::pred_mask`]/[`Dag::succ_mask`]): the
//!   "all inputs red" gate of a compute and the "has an uncomputed
//!   successor" prune are word-wise `ANDN` loops over packed mask rows,
//!   not per-edge iteration.
//! - **Scratch reuse**: the successor-key buffer, the popped-key buffer,
//!   and the dead-state reachability words are solver-owned and reused
//!   across every expansion.
//!
//! ## Incumbent-bound pruning
//! The search carries an *incumbent*: the cheapest known upper bound on
//! the optimum. It starts from [`ExactConfig::upper_bound`] (callers
//! seed it with a greedy portfolio cost — [`crate::parallel`] does this
//! automatically) and tightens to the best goal distance discovered
//! during the search. Any successor with `g + h` strictly above the
//! seeded bound, or at-or-above the best discovered goal, is dropped
//! *before* it is interned: since the bound is realized by a concrete
//! pebbling, at least one optimal path survives (`f ≤ opt ≤ bound` along
//! it), so the optimum is unchanged while the arena, heap, and probe
//! table stay smaller. On positive-cost frontiers (e.g. the base model's
//! grid cell) this skips the large shell of states strictly beyond the
//! optimum that plain Dijkstra would intern but never expand. The same
//! cutoff is what makes the parallel solver's termination test sound:
//! "every shard quiescent with local `f`-min at-or-above the incumbent"
//! certifies optimality.
//!
//! ## Incremental-delta invariants
//! Three state functions are threaded through expansion as ±deltas and
//! cached per state instead of being rescanned (see [`Meta`]):
//!
//! - `red_count`: `+1` on Load/Compute, `−1` on Store/Delete-of-red.
//! - `unsat_sinks`: the number of sinks violating the finishing
//!   convention; a state is a goal iff it is 0. Only the moved node's
//!   pebbles change, so only a sink move can shift it by ±1.
//! - `heur`: the A* heuristic value (below). A move on `v` changes only
//!   `v`'s own contribution, via its blue membership. A Compute changes
//!   nothing: the computed node was not blue (pebbled ⊆ computed in
//!   oneshot), and the only nodes whose "has an uncomputed successor"
//!   status flips are its predecessors, which the compute guard requires
//!   to be red — red and blue being disjoint, none of them is counted
//!   before or after.
//!
//! Each value is a pure function of the state key, so it is stored once
//! at intern time regardless of which path reaches the state first, and
//! debug builds assert every delta against a full rescan.
//!
//! ## Optimality-preserving pruning (`prune = true`)
//! All prunes below keep at least one optimal pebbling intact; the
//! unpruned mode (`prune = false`) is the brute-force reference that the
//! test-suite compares against on small instances.
//!
//! 1. *Never delete a blue pebble* (all models with deletion): a state
//!    with a superset of blue pebbles and identical red/computed sets can
//!    replay any continuation of the smaller state at equal cost, so the
//!    delete only moves to a dominated state.
//! 2. *(oneshot)* Skip `Load(v)`/`Store(v)` when `v` has no uncomputed
//!    successor and is not a sink: the pebble can never enable anything
//!    again, so the optimal continuation never pays to move it.
//! 3. *(oneshot)* Skip `Delete(v)` when `v` still has an uncomputed
//!    successor, or when `v` is a sink: recomputation is forbidden, so
//!    both cases make the goal unreachable (dead state).
//! 4. *(oneshot)* Dead-state check at expansion: if some sink is already
//!    unreachable (computed but unpebbled, or uncomputed with an
//!    unreachable input), the subtree is abandoned.
//!
//! ## A*
//! For oneshot an admissible, consistent heuristic is available: every
//! node that is blue and still has an uncomputed successor must be loaded
//! at least once more (recomputation being forbidden), contributing 1
//! transfer each.

use crate::api::{Progress, SolveCtx};
use crate::arena::{NodeTable, StateArena, NO_STATE};
use crate::error::SolveError;
use crate::expand::{Expander, Meta};
use rbp_core::{bounds, Cost, Instance, Pebbling};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

#[cfg(doc)]
use rbp_graph::Dag;

/// Budget polls happen every this many expansions (amortizes the
/// `Instant::now()` call off the per-state hot path).
const BUDGET_POLL_INTERVAL: usize = 256;

/// Progress reports fire every this many expansions.
const PROGRESS_INTERVAL: usize = 8192;

/// Configuration for [`solve_exact_with`].
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Abort with [`SolveError::StateLimitExceeded`] after interning this
    /// many states (memory guard).
    pub max_states: usize,
    /// Enable the optimality-preserving prunes documented on this module.
    pub prune: bool,
    /// Use the admissible oneshot heuristic (ignored for other models).
    pub astar: bool,
    /// Optional incumbent seed: a known upper bound on the optimal
    /// *scaled* cost (e.g. a greedy portfolio result). Successors with
    /// `g + h` strictly above it are never interned; the optimum is
    /// unchanged because the bound is realized by a concrete pebbling.
    pub upper_bound: Option<u64>,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_states: 8_000_000,
            prune: true,
            astar: true,
            upper_bound: None,
        }
    }
}

impl ExactConfig {
    /// Rejects degenerate values ([`SolveError::BadConfig`]). Run by
    /// every [`crate::api::Solver`] entry point before solving.
    pub fn validate(&self) -> Result<(), SolveError> {
        if self.max_states == 0 {
            return Err(SolveError::BadConfig {
                reason: "ExactConfig::max_states must be >= 1 (the root state is always interned)"
                    .into(),
            });
        }
        Ok(())
    }

    /// The prune cutoff seeded by [`ExactConfig::upper_bound`]:
    /// successors with `g + h ≥` this are dropped. It is `bound + 1` —
    /// states with `f == bound` must survive because the bound may be
    /// exactly optimal — and `u64::MAX` (no cutoff) when no bound is set
    /// or pruning is off (the brute-force reference mode must stay
    /// exhaustive). Both exact solvers derive their cutoff from this one
    /// definition so an exactly-tight seed prunes identically in each.
    #[inline]
    pub fn seed_cutoff(&self) -> u64 {
        match self.upper_bound {
            Some(b) if self.prune => b.saturating_add(1),
            _ => u64::MAX,
        }
    }
}

/// Result of an exact solve.
#[derive(Clone, Debug)]
pub struct ExactReport {
    /// Exact optimal cost.
    pub cost: Cost,
    /// An optimal pebbling realizing that cost.
    pub trace: Pebbling,
    /// Number of states popped from the queue.
    pub states_expanded: usize,
    /// Number of distinct states interned.
    pub states_seen: usize,
}

/// Solves the instance exactly with default configuration.
///
/// # Example
/// ```
/// use rbp_core::{CostModel, Instance};
/// use rbp_graph::generate;
/// use rbp_solvers::exact::solve_exact;
///
/// // a dependency chain fits in 2 red pebbles at zero I/O cost
/// let inst = Instance::new(generate::chain(8), 2, CostModel::oneshot());
/// let opt = solve_exact(&inst).unwrap();
/// assert_eq!(opt.cost.transfers, 0);
/// // the trace is a concrete, replayable schedule
/// assert!(rbp_core::simulate(&inst, &opt.trace).is_ok());
/// ```
pub fn solve_exact(instance: &Instance) -> Result<ExactReport, SolveError> {
    solve_exact_with(instance, ExactConfig::default())
}

/// Brute-force reference: no pruning, no heuristic, no incumbent.
/// Exponentially slower; only for cross-validating [`solve_exact`] on
/// tiny instances.
pub fn solve_reference(instance: &Instance) -> Result<ExactReport, SolveError> {
    solve_exact_with(
        instance,
        ExactConfig {
            max_states: 4_000_000,
            prune: false,
            astar: false,
            upper_bound: None,
        },
    )
}

/// Solves the instance exactly with the given configuration.
pub fn solve_exact_with(instance: &Instance, cfg: ExactConfig) -> Result<ExactReport, SolveError> {
    // an unlimited context can never interrupt, so the outcome is
    // always optimal (or a hard error)
    solve_exact_budgeted(instance, cfg, &SolveCtx::default()).map(|(report, _)| report)
}

/// Budget-aware entry point used by the [`crate::api`] layer. Returns
/// the report plus whether it is proved optimal: `true` when the search
/// settled a goal, `false` when the budget expired and the report holds
/// the best goal *discovered* so far (a valid upper bound). Expiring
/// before any goal was discovered is [`SolveError::Interrupted`] — the
/// api layer degrades to its greedy seed there.
pub(crate) fn solve_exact_budgeted(
    instance: &Instance,
    cfg: ExactConfig,
    ctx: &SolveCtx,
) -> Result<(ExactReport, bool), SolveError> {
    cfg.validate()?;
    bounds::check_feasible(instance)?;
    Search::new(instance, cfg).run(ctx)
}

// ---------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------

struct Search<'a> {
    cfg: ExactConfig,
    exp: Expander<'a>,
    /// Debug-only second expander: rescans successor metadata to check
    /// the ±deltas while `exp` is mutably borrowed by the expansion.
    #[cfg(debug_assertions)]
    check: Expander<'a>,
    // flat state storage
    arena: StateArena,
    nodes: NodeTable,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Prune cutoff: successors with `g + h ≥ cutoff` are dropped. This
    /// is `min(seeded upper bound + 1, best goal distance seen)` — both
    /// components are upper bounds realized by concrete pebblings (the
    /// seed externally, the goal by its own parent chain), so at least
    /// one optimal path always stays strictly below it.
    cutoff: u64,
    /// The structural floor ([`bounds::best_lower_bound`], scaled): a
    /// *discovered* goal at this distance is already provably optimal,
    /// so the search may return it without draining the heap to settle
    /// it. Only consulted under `prune`; the brute-force reference runs
    /// to settlement.
    floor: u128,
    /// `(dist, id)` of the cheapest goal *discovered* (relaxed, not yet
    /// necessarily settled). This is what a budget-expired solve returns
    /// as its incumbent.
    best_goal: (u64, u32),
}

impl<'a> Search<'a> {
    fn new(instance: &'a Instance, cfg: ExactConfig) -> Self {
        let exp = Expander::new(instance, cfg.prune, cfg.astar);
        let cutoff = cfg.seed_cutoff();
        let key_words = exp.key_words();
        Search {
            cfg,
            exp,
            #[cfg(debug_assertions)]
            check: Expander::new(instance, cfg.prune, cfg.astar),
            arena: StateArena::new(key_words),
            nodes: NodeTable::new(),
            heap: BinaryHeap::new(),
            cutoff,
            floor: instance.scaled_cost(&bounds::best_lower_bound(instance)),
            best_goal: (u64::MAX, NO_STATE),
        }
    }

    fn run(mut self, ctx: &SolveCtx) -> Result<(ExactReport, bool), SolveError> {
        let t0 = Instant::now();
        let budget_live = !ctx.budget.is_unlimited();
        // an already-exhausted budget (pre-set cancel flag, elapsed
        // deadline) stops before any work; in-loop polls then only fire
        // every BUDGET_POLL_INTERVAL real expansions
        if budget_live && ctx.budget.exhausted(0) {
            return self.interrupted(0);
        }
        let init = self.exp.initial_key();
        let (root, fresh) = self.arena.intern(&init);
        debug_assert!(fresh);
        let root_meta = self.exp.meta_scan(&init);
        self.nodes
            .push(root_meta.red, root_meta.unsat, root_meta.heur);
        self.nodes.dist[root as usize] = 0;
        self.heap.push(Reverse((root_meta.heur, root)));

        let mut expanded = 0usize;
        let mut key_buf: Vec<u64> = Vec::with_capacity(self.exp.key_words());
        while let Some(Reverse((_prio, id))) = self.heap.pop() {
            let idx = id as usize;
            if self.nodes.settled[idx] {
                continue;
            }
            self.nodes.settled[idx] = true;
            key_buf.clear();
            key_buf.extend_from_slice(self.arena.key(id));
            let d = self.nodes.dist[idx];
            let meta = Meta {
                red: self.nodes.red_count[idx],
                unsat: self.nodes.unsat_sinks[idx],
                heur: self.nodes.heur[idx],
            };
            expanded += 1;
            // cooperative budget poll, amortized over a quantum of *real*
            // expansions (stale pops skip it above, so a streak of
            // settled duplicates cannot re-fire the deadline check or
            // deliver duplicate progress snapshots)
            if budget_live
                && expanded.is_multiple_of(BUDGET_POLL_INTERVAL)
                && ctx.budget.exhausted(expanded as u64)
            {
                return self.interrupted(expanded);
            }
            if expanded.is_multiple_of(PROGRESS_INTERVAL) {
                if let Some(observer) = ctx.progress {
                    observer(&self.progress(t0, expanded));
                }
            }

            if meta.is_goal() {
                return Ok((self.report_for(id, expanded), true));
            }
            if self.exp.prune() && self.exp.oneshot() && self.exp.is_dead(&key_buf) {
                continue;
            }

            // destructure so the expander and the storage borrow disjointly
            let Search {
                exp,
                #[cfg(debug_assertions)]
                check,
                arena,
                nodes,
                heap,
                cutoff,
                cfg,
                best_goal,
                ..
            } = &mut self;
            exp.expand(&key_buf, meta, |succ, mv, cost, child| {
                let nd = d + cost;
                let f = nd.saturating_add(child.heur);
                if f >= *cutoff {
                    return Ok(());
                }
                let (cid, fresh) = arena.intern(succ);
                if fresh {
                    // the deltas must agree with a full rescan of the key
                    #[cfg(debug_assertions)]
                    debug_assert_eq!(child, check.meta_scan(succ));
                    nodes.push(child.red, child.unsat, child.heur);
                    if arena.len() > cfg.max_states {
                        return Err(SolveError::StateLimitExceeded {
                            limit: cfg.max_states,
                        });
                    }
                }
                let cidx = cid as usize;
                if !nodes.settled[cidx] && nd < nodes.dist[cidx] {
                    nodes.dist[cidx] = nd;
                    nodes.parent[cidx] = (id, mv);
                    heap.push(Reverse((f, cid)));
                    if child.is_goal() && nd < best_goal.0 {
                        // remember the cheapest goal discovered: it is
                        // the incumbent a budget-expired solve returns
                        *best_goal = (nd, cid);
                        // and it tightens the prune cutoff immediately:
                        // nothing at-or-beyond it can improve the answer
                        if cfg.prune && nd < *cutoff {
                            *cutoff = nd;
                        }
                    }
                }
                Ok(())
            })?;
            // a discovered goal that meets the structural floor is
            // already provably optimal: floor ≤ optimum ≤ any realized
            // goal distance, so equality pins it — return without
            // draining the heap to settle it
            if self.cfg.prune
                && self.best_goal.1 != NO_STATE
                && u128::from(self.best_goal.0) <= self.floor
            {
                let (_, goal) = self.best_goal;
                return Ok((self.report_for(goal, expanded), true));
            }
        }
        Err(SolveError::NoPebblingFound)
    }

    /// The report for a settled-or-discovered goal state.
    fn report_for(&self, goal: u32, expanded: usize) -> ExactReport {
        let trace = self.recover_trace(goal);
        let stats = trace.stats();
        ExactReport {
            cost: Cost {
                transfers: stats.transfers(),
                computes: stats.computes,
            },
            trace,
            states_expanded: expanded,
            states_seen: self.arena.len(),
        }
    }

    /// Budget expiry: return the best goal discovered so far as a
    /// (non-optimal) incumbent, or [`SolveError::Interrupted`] when none
    /// exists yet.
    fn interrupted(self, expanded: usize) -> Result<(ExactReport, bool), SolveError> {
        let (g, id) = self.best_goal;
        if id == NO_STATE {
            return Err(SolveError::Interrupted);
        }
        debug_assert!(g < u64::MAX);
        Ok((self.report_for(id, expanded), false))
    }

    fn progress(&self, t0: Instant, expanded: usize) -> Progress {
        let elapsed = t0.elapsed();
        let secs = elapsed.as_secs_f64();
        Progress {
            elapsed,
            states_expanded: expanded as u64,
            states_per_sec: if secs > 0.0 {
                (expanded as f64 / secs) as u64
            } else {
                0
            },
            frontier: self.heap.len(),
            incumbent: match (self.best_goal.0, self.cfg.upper_bound) {
                (u64::MAX, ub) => ub,
                (g, Some(ub)) => Some(g.min(ub)),
                (g, None) => Some(g),
            },
        }
    }

    /// Walks parent pointers from `goal` to the root. Called exactly once
    /// per solve; [`ExactReport::cost`] is derived from the same trace.
    fn recover_trace(&self, goal: u32) -> Pebbling {
        let mut moves = Vec::new();
        let mut cur = goal;
        while self.nodes.parent[cur as usize].0 != NO_STATE {
            let (prev, mv) = self.nodes.parent[cur as usize];
            moves.push(mv);
            cur = prev;
        }
        moves.reverse();
        Pebbling::from_moves(moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{engine, CostModel, ModelKind, SourceConvention};
    use rbp_graph::{generate, DagBuilder};

    fn check_optimal(instance: &Instance, expect_scaled: u64) {
        let rep = solve_exact(instance).unwrap();
        // reported trace must be valid and match the reported cost
        let sim = engine::simulate(instance, &rep.trace).unwrap();
        assert_eq!(sim.cost, rep.cost, "trace cost mismatch");
        assert!(sim.peak_red <= instance.red_limit());
        assert_eq!(
            rep.cost.scaled(instance.model().epsilon()),
            expect_scaled as u128
        );
    }

    #[test]
    fn chain_is_free_with_two_pebbles_oneshot() {
        let inst = Instance::new(generate::chain(6), 2, CostModel::oneshot());
        check_optimal(&inst, 0);
    }

    #[test]
    fn chain_infeasible_with_one_pebble() {
        let inst = Instance::new(generate::chain(3), 1, CostModel::oneshot());
        assert!(matches!(solve_exact(&inst), Err(SolveError::Pebbling(_))));
    }

    #[test]
    fn join_is_free_with_three_pebbles() {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        check_optimal(&inst, 0);
    }

    #[test]
    fn two_joins_sharing_inputs_tight_memory() {
        // 0,1 -> 3 ; 1,2 -> 4, with R = 3: an optimal order interleaves to
        // avoid transfers entirely (compute 0,1,3; drop 0&3 handling...).
        let mut b = DagBuilder::new(5);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        b.add_edge(2, 4);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        // compute 0,1 (2 red), compute 3 (3 red), store 3? No: delete 0
        // (never needed again), compute 2, compute 4 needs slot: 3 is a
        // sink -> store costs 1? But delete 3 is illegal-to-win... Actually
        // after computing 3 we can store nothing: red = {0,1,3}. Delete 0
        // (free) -> {1,3}, compute 2 -> {1,2,3}, need slot for 4: store 3
        // (sink, must keep) cost 1... or could we have stored 3 earlier?
        // Any way round, one transfer is forced: R=3, two sinks + shared
        // input... The exact solver decides: assert optimum is 1.
        check_optimal(&inst, 1);
    }

    #[test]
    fn nodel_chain_must_store_everything_but_last_two() {
        // nodel, chain of 5, R = 2: pebbles cannot be deleted, so nodes
        // 0, 1, 2 are each stored once when their slot is needed; the last
        // two nodes end red. Cost = n − R = 3 (the Section-4 lower bound,
        // tight here).
        let inst = Instance::new(generate::chain(5), 2, CostModel::nodel());
        check_optimal(&inst, 3);
    }

    #[test]
    fn base_chain_is_free_via_deletion() {
        let inst = Instance::new(generate::chain(5), 2, CostModel::base());
        check_optimal(&inst, 0);
    }

    #[test]
    fn compcost_chain_costs_epsilon_per_node() {
        // R=2 suffices; each node computed exactly once: scaled cost = n·num
        let inst = Instance::new(generate::chain(5), 2, CostModel::compcost());
        check_optimal(&inst, 5);
    }

    #[test]
    fn pruned_matches_reference_on_small_dags() {
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            for _ in 0..6 {
                let dag = generate::gnp_dag(6, 0.4, 2, &mut rng);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind));
                let fast = solve_exact(&inst).unwrap();
                let slow = solve_reference(&inst).unwrap();
                assert_eq!(
                    fast.cost.scaled(inst.model().epsilon()),
                    slow.cost.scaled(inst.model().epsilon()),
                    "prune changed optimum for {kind} on {:?}",
                    inst
                );
            }
        }
    }

    #[test]
    fn astar_matches_dijkstra() {
        let mut rng = rand::thread_rng();
        for _ in 0..5 {
            let dag = generate::layered(3, 3, 2, &mut rng);
            let inst = Instance::new(dag, 3, CostModel::oneshot());
            let astar = solve_exact_with(
                &inst,
                ExactConfig {
                    astar: true,
                    ..ExactConfig::default()
                },
            )
            .unwrap();
            let dij = solve_exact_with(
                &inst,
                ExactConfig {
                    astar: false,
                    ..ExactConfig::default()
                },
            )
            .unwrap();
            assert_eq!(astar.cost, dij.cost);
            assert!(astar.states_expanded <= dij.states_expanded + 5);
        }
    }

    #[test]
    fn state_limit_respected() {
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 3, &mut rng);
        let inst = Instance::new(dag, 5, CostModel::oneshot());
        let res = solve_exact_with(
            &inst,
            ExactConfig {
                max_states: 10,
                ..ExactConfig::default()
            },
        );
        assert_eq!(
            res.unwrap_err(),
            SolveError::StateLimitExceeded { limit: 10 }
        );
    }

    #[test]
    fn optimum_monotone_in_r() {
        let mut b = DagBuilder::new(6);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        b.add_edge(2, 4);
        b.add_edge(3, 5);
        b.add_edge(4, 5);
        let dag = b.build().unwrap();
        let mut prev = u128::MAX;
        for r in 3..=6 {
            let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
            let rep = solve_exact(&inst).unwrap();
            let c = rep.cost.scaled(inst.model().epsilon());
            assert!(c <= prev, "opt must not increase with more red pebbles");
            prev = c;
        }
    }

    #[test]
    fn initially_blue_sources_cost_loads() {
        // chain of 2 with blue-start sources: must load the source (1),
        // then compute the sink: optimum 1.
        let inst = Instance::new(generate::chain(2), 2, CostModel::oneshot())
            .with_source_convention(SourceConvention::InitiallyBlue);
        check_optimal(&inst, 1);
    }

    #[test]
    fn require_blue_sinks_adds_final_store() {
        let inst = Instance::new(generate::chain(2), 2, CostModel::oneshot())
            .with_sink_convention(rbp_core::SinkConvention::RequireBlue);
        check_optimal(&inst, 1);
    }

    #[test]
    fn require_blue_matches_reference_across_models() {
        // the RequireBlue unsat-delta table is exercised against the
        // unpruned reference, like the main matrix does for AnyPebble
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            for _ in 0..3 {
                let dag = generate::gnp_dag(5, 0.4, 2, &mut rng);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind))
                    .with_sink_convention(rbp_core::SinkConvention::RequireBlue);
                let fast = solve_exact(&inst).unwrap();
                let slow = solve_reference(&inst).unwrap();
                assert_eq!(
                    fast.cost.scaled(inst.model().epsilon()),
                    slow.cost.scaled(inst.model().epsilon()),
                    "prune changed RequireBlue optimum for {kind} on {:?}",
                    inst
                );
            }
        }
    }

    #[test]
    fn report_cost_always_derives_from_trace() {
        // ExactReport reconstructs the trace once; its cost must equal
        // the engine's replay of that same trace in every model
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            let dag = generate::gnp_dag(6, 0.35, 2, &mut rng);
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag, r, CostModel::of_kind(kind));
            let rep = solve_exact(&inst).unwrap();
            let sim = engine::simulate(&inst, &rep.trace).unwrap();
            assert_eq!(sim.cost, rep.cost, "cost must derive from the trace");
        }
    }

    #[test]
    fn incumbent_bound_preserves_optimum() {
        // seed with the loosest and the exactly-tight bound; the optimum
        // and a valid trace must survive both
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            for _ in 0..4 {
                let dag = generate::gnp_dag(6, 0.4, 2, &mut rng);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind));
                let plain = solve_exact(&inst).unwrap();
                let opt = plain.cost.scaled(inst.model().epsilon()) as u64;
                for bound in [opt, opt + 1, opt + 100] {
                    let seeded = solve_exact_with(
                        &inst,
                        ExactConfig {
                            upper_bound: Some(bound),
                            ..ExactConfig::default()
                        },
                    )
                    .unwrap();
                    assert_eq!(
                        seeded.cost.scaled(inst.model().epsilon()),
                        opt as u128,
                        "incumbent bound {bound} changed the optimum ({kind})"
                    );
                    assert!(seeded.states_seen <= plain.states_seen);
                    let sim = engine::simulate(&inst, &seeded.trace).unwrap();
                    assert_eq!(sim.cost, seeded.cost);
                }
            }
        }
    }

    #[test]
    fn tight_incumbent_shrinks_the_search() {
        // on a positive-cost instance, seeding with the exact optimum
        // must intern strictly fewer states than the unseeded run; a
        // height-3 binary in-tree at R=3 forces spills under base (its
        // black-pebbling number is 4)
        let mut b = DagBuilder::new(15);
        for parent in 0..7 {
            b.add_edge(2 * parent + 1, parent);
            b.add_edge(2 * parent + 2, parent);
        }
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::base());
        let plain = solve_exact(&inst).unwrap();
        let opt = plain.cost.scaled(inst.model().epsilon()) as u64;
        let seeded = solve_exact_with(
            &inst,
            ExactConfig {
                upper_bound: Some(opt),
                ..ExactConfig::default()
            },
        )
        .unwrap();
        assert_eq!(seeded.cost, plain.cost);
        assert!(
            seeded.states_seen < plain.states_seen,
            "tight bound should prune interns ({} vs {})",
            seeded.states_seen,
            plain.states_seen
        );
    }
}

//! Portfolio solving: run every greedy configuration in parallel and keep
//! the cheapest valid pebbling.
//!
//! Section 8 shows no greedy rule is safe in the worst case, and on real
//! workloads no single configuration dominates either — a portfolio is the
//! practical answer.

use crate::error::SolveError;
use crate::greedy::{solve_greedy_with, EvictionPolicy, GreedyConfig, GreedyReport, SelectionRule};
use rbp_core::Instance;

/// The default portfolio: all three selection rules crossed with the
/// deterministic eviction policies.
pub fn default_portfolio() -> Vec<GreedyConfig> {
    let mut configs = Vec::new();
    for rule in SelectionRule::ALL {
        for eviction in EvictionPolicy::DETERMINISTIC {
            configs.push(GreedyConfig { rule, eviction });
        }
    }
    configs
}

/// Runs all `configs` in parallel and returns the cheapest report plus the
/// winning configuration. Errors only if every configuration fails.
///
/// Concurrency is capped at `available_parallelism` through the shared
/// work-queue pool ([`crate::pool::run_indexed`]) rather than spawning
/// one thread per configuration; on a single-core host the whole
/// portfolio runs inline on the caller with zero spawns, which keeps it
/// cheap enough to seed exact-solver incumbents with.
pub fn solve_portfolio(
    instance: &Instance,
    configs: &[GreedyConfig],
) -> Result<(GreedyConfig, GreedyReport), SolveError> {
    assert!(!configs.is_empty(), "empty portfolio");
    let eps = instance.model().epsilon();
    let slots: Vec<Result<GreedyReport, SolveError>> =
        crate::pool::run_indexed(configs.len(), |i| solve_greedy_with(instance, configs[i]));

    let mut best: Option<(GreedyConfig, GreedyReport)> = None;
    let mut last_err = SolveError::NoPebblingFound;
    for (cfg, slot) in configs.iter().zip(slots) {
        match slot {
            Ok(rep) => {
                let better = match &best {
                    None => true,
                    Some((_, b)) => rep.cost.scaled(eps) < b.cost.scaled(eps),
                };
                if better {
                    best = Some((*cfg, rep));
                }
            }
            Err(e) => last_err = e,
        }
    }
    best.ok_or(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::CostModel;
    use rbp_graph::generate;

    #[test]
    fn portfolio_never_worse_than_default_greedy() {
        let mut rng = rand::thread_rng();
        for _ in 0..5 {
            let dag = generate::layered(5, 4, 3, &mut rng);
            let inst = Instance::new(dag, 5, CostModel::oneshot());
            let (_, best) = solve_portfolio(&inst, &default_portfolio()).unwrap();
            let single = crate::greedy::solve_greedy(&inst).unwrap();
            let eps = inst.model().epsilon();
            assert!(best.cost.scaled(eps) <= single.cost.scaled(eps));
        }
    }

    #[test]
    fn portfolio_has_nine_default_members() {
        assert_eq!(default_portfolio().len(), 9);
    }

    #[test]
    fn portfolio_propagates_infeasibility() {
        let mut b = rbp_graph::DagBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, 3);
        }
        let inst = Instance::new(b.build().unwrap(), 2, CostModel::oneshot());
        assert!(solve_portfolio(&inst, &default_portfolio()).is_err());
    }
}

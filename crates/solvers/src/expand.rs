//! The shared move generator of the exact solvers.
//!
//! Sequential Dijkstra/A* ([`crate::exact`]) and the hash-sharded
//! parallel search ([`crate::parallel`]) explore the same configuration
//! graph; this module owns its single definition. An [`Expander`] packages
//! everything that is a pure function of the instance — key layout, move
//! guards, the optimality-preserving prunes, and the incremental ±delta
//! bookkeeping ([`Meta`]) — so both solvers generate byte-identical
//! successor keys with identical metadata, and the subtle per-model rules
//! are written (and tested) exactly once.
//!
//! The expander is deliberately storage-agnostic: it does not know about
//! arenas, heaps, or distances. [`Expander::expand`] walks the legal moves
//! of a popped state and hands each successor `(key, move, edge cost,
//! meta)` to a caller-supplied sink, which interns/relaxes it wherever
//! that solver keeps its states (a local [`crate::arena::StateArena`], or
//! a batch buffer bound for another shard's owner thread).
//!
//! See the [`crate::exact`] module docs for the semantics of the state
//! encoding, the prune rules, and the A* heuristic; the documentation
//! there is normative for the code here.

use crate::error::SolveError;
use rbp_core::{Instance, ModelKind, Move, SourceConvention};
use rbp_graph::NodeId;

/// The incrementally maintained metadata of one state: carried from a
/// popped state to each successor as ±deltas instead of being rescanned.
///
/// Each field is a pure function of the state key, so it is stored once
/// at intern time regardless of which path (or which shard's message)
/// reaches the state first; debug builds assert every delta against a
/// full rescan ([`Expander::meta_scan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Meta {
    /// Number of red pebbles in the state.
    pub red: u32,
    /// Number of sinks violating the finishing convention; the state is a
    /// goal iff this is 0.
    pub unsat: u32,
    /// The admissible A* heuristic value in scaled units (0 when A* is
    /// off or the model is not oneshot).
    pub heur: u64,
}

impl Meta {
    /// Whether the state satisfies the finishing convention.
    #[inline]
    pub fn is_goal(self) -> bool {
        self.unsat == 0
    }

    /// Applies a signed delta to the unsatisfied-sink count.
    #[inline]
    fn bump_unsat(self, delta: i32) -> u32 {
        (self.unsat as i32 + delta) as u32
    }
}

#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1 << (i % 64)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

#[inline]
fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1 << (i % 64));
}

/// The per-instance move generator shared by the exact solvers.
///
/// Construction precomputes the key layout and per-node static tables;
/// the struct also owns the scratch buffers of the expansion hot path, so
/// each solver thread needs its own `Expander` (they are cheap: a few
/// `Vec`s sized by the instance, not by the search).
pub struct Expander<'a> {
    instance: &'a Instance,
    n: usize,
    wpn: usize,       // words per node-set
    key_words: usize, // words per state key (2·wpn or 3·wpn)
    oneshot: bool,
    track_computed: bool,
    /// Whether the A* heuristic is live (`astar` requested and the model
    /// is oneshot); when false every computed `heur` is 0.
    astar: bool,
    /// Whether the optimality-preserving prunes are on.
    prune: bool,
    /// Whether sinks must end blue ([`rbp_core::SinkConvention`]).
    need_blue: bool,
    eps_num: u64,
    eps_den: u64,
    // reusable scratch (no per-expansion allocation)
    scratch: Vec<u64>,
    /// Dead-state reachability words (`avail` bit per node), reused.
    avail: Vec<u64>,
    // per-node static info
    sinks: Vec<bool>,
    sink_ids: Vec<u32>,
    topo: Vec<NodeId>,
}

impl<'a> Expander<'a> {
    /// Builds the move generator for `instance`. `prune` enables the
    /// optimality-preserving prunes; `astar` requests the admissible
    /// oneshot heuristic (ignored for other models).
    pub fn new(instance: &'a Instance, prune: bool, astar: bool) -> Self {
        let n = instance.dag().n();
        let wpn = rbp_graph::words_for(n);
        debug_assert_eq!(wpn, instance.dag().mask_words());
        let oneshot = instance.model().kind() == ModelKind::Oneshot;
        let track_computed = oneshot;
        let key_words = if track_computed { 3 * wpn } else { 2 * wpn };
        let eps = instance.model().epsilon();
        let (eps_num, eps_den) = if eps.is_zero() {
            (0, 1)
        } else {
            (eps.num(), eps.den())
        };
        let sinks: Vec<bool> = instance
            .dag()
            .nodes()
            .map(|v| instance.dag().is_sink(v))
            .collect();
        let sink_ids = sinks
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| i as u32)
            .collect();
        Expander {
            instance,
            n,
            wpn,
            key_words,
            oneshot,
            track_computed,
            astar: astar && oneshot,
            prune,
            need_blue: instance.sink_convention() == rbp_core::SinkConvention::RequireBlue,
            eps_num,
            eps_den,
            scratch: vec![0; key_words],
            avail: vec![0; wpn],
            sinks,
            sink_ids,
            topo: rbp_graph::topological_order(instance.dag()),
        }
    }

    /// Width of every state key, in `u64` words.
    #[inline]
    pub fn key_words(&self) -> usize {
        self.key_words
    }

    /// Whether the model is oneshot (computed set tracked, dead-state
    /// prune applicable).
    #[inline]
    pub fn oneshot(&self) -> bool {
        self.oneshot
    }

    /// Whether the optimality-preserving prunes are enabled.
    #[inline]
    pub fn prune(&self) -> bool {
        self.prune
    }

    #[inline]
    fn is_red(&self, key: &[u64], v: usize) -> bool {
        bit_get(&key[..self.wpn], v)
    }

    #[inline]
    fn is_blue(&self, key: &[u64], v: usize) -> bool {
        bit_get(&key[self.wpn..2 * self.wpn], v)
    }

    #[inline]
    fn is_computed(&self, key: &[u64], v: usize) -> bool {
        if self.track_computed {
            bit_get(&key[2 * self.wpn..], v)
        } else {
            // models without the computed set allow recomputation, so
            // "has it been computed" never gates legality; pebbled is the
            // only meaningful proxy where needed
            self.is_red(key, v) || self.is_blue(key, v)
        }
    }

    /// The initial configuration key under the instance's source
    /// convention.
    pub fn initial_key(&self) -> Vec<u64> {
        let mut key = vec![0u64; self.key_words];
        if self.instance.source_convention() == SourceConvention::InitiallyBlue {
            for v in self.instance.dag().sources() {
                bit_set(&mut key[self.wpn..2 * self.wpn], v.index());
                if self.track_computed {
                    let w = self.wpn;
                    bit_set(&mut key[2 * w..], v.index());
                }
            }
        }
        key
    }

    /// Whether `v` still has a successor that is uncomputed, as one
    /// `ANDN` loop over the packed successor mask (oneshot only; callers
    /// guard on `self.oneshot`, which implies the computed set is
    /// tracked).
    #[inline]
    fn has_uncomputed_successor(&self, key: &[u64], v: usize) -> bool {
        debug_assert!(self.track_computed);
        let mask = self.instance.dag().succ_mask(NodeId::new(v));
        let computed = &key[2 * self.wpn..];
        mask.iter().zip(computed).any(|(m, c)| m & !c != 0)
    }

    /// Full rescan of all three metadata fields; root initialization and
    /// debug asserts only — the hot path maintains them by deltas.
    pub fn meta_scan(&self, key: &[u64]) -> Meta {
        let red = key[..self.wpn].iter().map(|w| w.count_ones()).sum::<u32>();
        let unsat = self
            .sink_ids
            .iter()
            .filter(|&&s| {
                let v = s as usize;
                if self.need_blue {
                    !self.is_blue(key, v)
                } else {
                    !self.is_red(key, v) && !self.is_blue(key, v)
                }
            })
            .count() as u32;
        let mut heur = 0u64;
        if self.astar {
            for v in 0..self.n {
                if self.is_blue(key, v) && self.has_uncomputed_successor(key, v) {
                    heur += self.eps_den;
                }
            }
        }
        Meta { red, unsat, heur }
    }

    /// Oneshot dead-state check: is any sink permanently unreachable?
    /// Reuses `self.avail` (one reachability bit per node) instead of
    /// allocating, and gates each node on its packed pred mask. Callers
    /// gate on [`Expander::oneshot`] and [`Expander::prune`].
    pub fn is_dead(&mut self, key: &[u64]) -> bool {
        debug_assert!(self.oneshot);
        let dag = self.instance.dag();
        self.avail.iter_mut().for_each(|w| *w = 0);
        // avail[v]: v's value can (still) be made red at some point
        for &v in &self.topo {
            let i = v.index();
            let ok = if self.is_computed(key, i) {
                self.is_red(key, i) || self.is_blue(key, i)
            } else {
                dag.pred_mask(v)
                    .iter()
                    .zip(self.avail.iter())
                    .all(|(p, a)| p & !a == 0)
            };
            if ok {
                self.avail[i / 64] |= 1 << (i % 64);
            }
        }
        self.sink_ids.iter().any(|&s| {
            let v = s as usize;
            if self.is_computed(key, v) {
                !self.is_red(key, v) && !self.is_blue(key, v)
            } else {
                !bit_get(&self.avail, v)
            }
        })
    }

    /// Generates every (pruned-)legal successor of `(key, meta)` and
    /// hands each one to `emit` as `(successor key, move, scaled edge
    /// cost, successor meta)`. The successor key slice borrows the
    /// expander's scratch buffer: sinks must copy (or intern) it before
    /// returning.
    ///
    /// Errors from `emit` (e.g. a state budget trip) abort the expansion
    /// and propagate.
    pub fn expand<F>(&mut self, key: &[u64], meta: Meta, mut emit: F) -> Result<(), SolveError>
    where
        F: FnMut(&[u64], Move, u64, Meta) -> Result<(), SolveError>,
    {
        let model = self.instance.model();
        let r_limit = self.instance.red_limit();
        let prune = self.prune;

        for v in 0..self.n {
            let node = NodeId::new(v);
            let red = self.is_red(key, v);
            let blue = self.is_blue(key, v);
            let is_sink = self.sinks[v];
            if red {
                let unc = self.oneshot && self.has_uncomputed_successor(key, v);
                // Store(v): red -> blue
                let useful = !prune || !self.oneshot || is_sink || unc;
                if useful {
                    self.scratch.copy_from_slice(key);
                    bit_clear(&mut self.scratch[..self.wpn], v);
                    bit_set(&mut self.scratch[self.wpn..2 * self.wpn], v);
                    let child = Meta {
                        red: meta.red - 1,
                        // a red sink only counts as satisfied under
                        // AnyPebble; turning it blue satisfies RequireBlue
                        unsat: meta.bump_unsat(if is_sink && self.need_blue { -1 } else { 0 }),
                        // v is now blue; if it still has an uncomputed
                        // successor it joins the heuristic count
                        heur: meta.heur + if self.astar && unc { self.eps_den } else { 0 },
                    };
                    emit(&self.scratch, Move::Store(node), self.eps_den, child)?;
                }
                // Delete(v) of a red pebble
                if model.allows_delete() {
                    let dead = self.oneshot && (is_sink || unc);
                    if !(prune && dead) {
                        self.scratch.copy_from_slice(key);
                        bit_clear(&mut self.scratch[..self.wpn], v);
                        let child = Meta {
                            red: meta.red - 1,
                            unsat: meta.bump_unsat(if is_sink && !self.need_blue { 1 } else { 0 }),
                            heur: meta.heur, // blue set unchanged
                        };
                        emit(&self.scratch, Move::Delete(node), 0, child)?;
                    }
                }
            } else if blue {
                let unc = self.oneshot && self.has_uncomputed_successor(key, v);
                // Load(v): blue -> red
                if (meta.red as usize) < r_limit {
                    let useful = !prune || !self.oneshot || unc;
                    if useful {
                        self.scratch.copy_from_slice(key);
                        bit_clear(&mut self.scratch[self.wpn..2 * self.wpn], v);
                        bit_set(&mut self.scratch[..self.wpn], v);
                        let child = Meta {
                            red: meta.red + 1,
                            // a blue sink was satisfied either way; as red
                            // it fails RequireBlue
                            unsat: meta.bump_unsat(if is_sink && self.need_blue { 1 } else { 0 }),
                            heur: meta.heur - if self.astar && unc { self.eps_den } else { 0 },
                        };
                        emit(&self.scratch, Move::Load(node), self.eps_den, child)?;
                    }
                }
                // Delete of a blue pebble: dominated (prune rule 1)
                if model.allows_delete() && !prune {
                    self.scratch.copy_from_slice(key);
                    bit_clear(&mut self.scratch[self.wpn..2 * self.wpn], v);
                    let child = Meta {
                        red: meta.red,
                        unsat: meta.bump_unsat(if is_sink { 1 } else { 0 }),
                        heur: meta.heur - if self.astar && unc { self.eps_den } else { 0 },
                    };
                    emit(&self.scratch, Move::Delete(node), 0, child)?;
                }
                // Compute onto blue (nodel recomputation; legal in base too)
                self.try_compute(key, v, meta, &mut emit)?;
            } else {
                // Compute onto an empty node
                self.try_compute(key, v, meta, &mut emit)?;
            }
        }
        Ok(())
    }

    fn try_compute<F>(
        &mut self,
        key: &[u64],
        v: usize,
        meta: Meta,
        emit: &mut F,
    ) -> Result<(), SolveError>
    where
        F: FnMut(&[u64], Move, u64, Meta) -> Result<(), SolveError>,
    {
        let node = NodeId::new(v);
        let model = self.instance.model();
        if !model.allows_recompute() && self.is_computed(key, v) {
            return Ok(());
        }
        if self.instance.source_convention() == SourceConvention::InitiallyBlue
            && self.instance.dag().is_source(node)
        {
            return Ok(());
        }
        if meta.red as usize >= self.instance.red_limit() {
            return Ok(());
        }
        // all inputs red: pred_mask ANDN red-words must be empty
        if self
            .instance
            .dag()
            .pred_mask(node)
            .iter()
            .zip(&key[..self.wpn])
            .any(|(p, r)| p & !r != 0)
        {
            return Ok(());
        }
        let was_blue = self.is_blue(key, v);
        self.scratch.copy_from_slice(key);
        bit_clear(&mut self.scratch[self.wpn..2 * self.wpn], v); // replace blue if any
        bit_set(&mut self.scratch[..self.wpn], v);
        if self.track_computed {
            let w = self.wpn;
            bit_set(&mut self.scratch[2 * w..], v);
        }
        let is_sink = self.sinks[v];
        let d_unsat = match (is_sink, self.need_blue, was_blue) {
            (false, _, _) => 0,
            (true, true, true) => 1,    // satisfied blue sink turns red
            (true, true, false) => 0,   // still not blue
            (true, false, true) => 0,   // pebbled before and after
            (true, false, false) => -1, // newly pebbled
        };
        // The heuristic is unchanged by a compute: `v` itself was not
        // blue (in oneshot every pebbled node is computed and computed
        // nodes are not recomputable), and the only other nodes whose
        // "has an uncomputed successor" status could flip are `v`'s
        // predecessors — which the guard above requires to be red, hence
        // not blue, hence outside the blue-node count either way.
        let child = Meta {
            red: meta.red + 1,
            unsat: meta.bump_unsat(d_unsat),
            heur: meta.heur,
        };
        emit(&self.scratch, Move::Compute(node), self.eps_num, child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::CostModel;
    use rbp_graph::generate;

    #[test]
    fn meta_scan_matches_every_emitted_delta() {
        // walk two expansion levels from the root on every model and
        // check the ±delta metadata against the rescan
        for kind in ModelKind::ALL {
            let inst = Instance::new(generate::chain(6), 2, CostModel::of_kind(kind));
            let mut exp = Expander::new(&inst, true, true);
            let root = exp.initial_key();
            let root_meta = exp.meta_scan(&root);
            let mut frontier: Vec<(Vec<u64>, Meta)> = vec![(root, root_meta)];
            for _ in 0..2 {
                let mut next = Vec::new();
                for (key, meta) in frontier {
                    exp.expand(&key, meta, |succ, _mv, _cost, child| {
                        next.push((succ.to_vec(), child));
                        Ok(())
                    })
                    .unwrap();
                }
                for (key, meta) in &next {
                    let scan = {
                        let e = Expander::new(&inst, true, true);
                        e.meta_scan(key)
                    };
                    assert_eq!(*meta, scan, "delta metadata drifted from rescan ({kind})");
                }
                frontier = next;
            }
        }
    }

    #[test]
    fn goal_states_have_zero_heuristic() {
        // at a goal every node is computed, so the A* count is empty —
        // the parallel solver's f = g at goals relies on this
        let inst = Instance::new(generate::chain(3), 2, CostModel::oneshot());
        let exp = Expander::new(&inst, true, true);
        let mut key = vec![0u64; exp.key_words()];
        // all computed, sink red: a satisfied final configuration
        key[0] = 0b100; // red = {2}
        key[2] = 0b111; // computed = all
        let meta = exp.meta_scan(&key);
        assert!(meta.is_goal());
        assert_eq!(meta.heur, 0);
    }
}

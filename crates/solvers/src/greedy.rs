//! The greedy pebbling heuristics of Section 8.
//!
//! In the oneshot model a strategy is characterized by the (topological)
//! order of first computations plus the choice of which red pebbles to
//! move. The paper's three natural greedy rules pick the next node to
//! compute among the *enabled* ones (all inputs computed):
//!
//! - largest number of red pebbles among its inputs;
//! - smallest number of blue pebbles among its inputs;
//! - largest red-pebbles-to-inputs ratio.
//!
//! The rules say nothing about eviction, so eviction is a pluggable
//! policy; Theorem 4's constructions defeat every choice, and the
//! `ablation` experiment measures the policies against each other on
//! realistic workloads.
//!
//! The solver maintains the invariant that a computed node keeps a pebble
//! while it still has uncomputed successors (it is stored, never deleted,
//! when its slot is needed), which keeps the produced trace legal in all
//! four models — in base/nodel/compcost this realizes the paper's
//! "ordering of the very first computation" greedy interpretation
//! (Appendix A.4).

use crate::error::SolveError;
use rbp_core::{
    bounds, engine, Cost, Instance, Move, Pebbling, SinkConvention, SourceConvention, State,
};
use rbp_graph::NodeId;

/// Rule for choosing the next node to compute (Section 8).
///
/// Ties are broken by the complementary pebble criterion (fewer blue for
/// [`MostRedInputs`], more red for the other two) and finally toward the
/// lower node index, so that on k-uniform input-group DAGs all three
/// rules coincide — the property Section 8 relies on ("for such graphs,
/// the previous greedy approaches are all identical").
///
/// [`MostRedInputs`]: SelectionRule::MostRedInputs
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SelectionRule {
    /// Maximize the number of red pebbles among the inputs.
    MostRedInputs,
    /// Minimize the number of blue pebbles among the inputs.
    FewestBlueInputs,
    /// Maximize red-inputs / indegree (sources count as fully available).
    HighestRedRatio,
}

impl SelectionRule {
    /// All three paper rules.
    pub const ALL: [SelectionRule; 3] = [
        SelectionRule::MostRedInputs,
        SelectionRule::FewestBlueInputs,
        SelectionRule::HighestRedRatio,
    ];
}

impl std::fmt::Display for SelectionRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SelectionRule::MostRedInputs => "most-red-inputs",
            SelectionRule::FewestBlueInputs => "fewest-blue-inputs",
            SelectionRule::HighestRedRatio => "highest-red-ratio",
        };
        f.write_str(s)
    }
}

/// Policy for choosing which *live* red pebble to spill when a slot is
/// needed. Dead values (no uncomputed successor, not a sink) are always
/// deleted for free first; sinks are always stored, never deleted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvictionPolicy {
    /// Evict the value with the fewest remaining uncomputed successors.
    MinUses,
    /// Evict the least recently touched value.
    Lru,
    /// Evict the oldest resident value.
    Fifo,
    /// Evict a pseudo-random victim (seeded; deterministic per seed).
    Random(u64),
}

impl EvictionPolicy {
    /// The deterministic policies (for ablation sweeps).
    pub const DETERMINISTIC: [EvictionPolicy; 3] = [
        EvictionPolicy::MinUses,
        EvictionPolicy::Lru,
        EvictionPolicy::Fifo,
    ];
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictionPolicy::MinUses => f.write_str("min-uses"),
            EvictionPolicy::Lru => f.write_str("lru"),
            EvictionPolicy::Fifo => f.write_str("fifo"),
            EvictionPolicy::Random(s) => write!(f, "random({s})"),
        }
    }
}

/// Full greedy configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GreedyConfig {
    /// Next-node selection rule.
    pub rule: SelectionRule,
    /// Spill-victim policy.
    pub eviction: EvictionPolicy,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            rule: SelectionRule::MostRedInputs,
            eviction: EvictionPolicy::MinUses,
        }
    }
}

impl std::fmt::Display for GreedyConfig {
    /// The registry argument form, `RULE/EVICT` — `format!("greedy:{cfg}")`
    /// parses back to this configuration.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.rule, self.eviction)
    }
}

/// Result of a greedy run.
#[derive(Clone, Debug)]
pub struct GreedyReport {
    /// The produced (engine-validated) pebbling.
    pub trace: Pebbling,
    /// Its exact cost.
    pub cost: Cost,
    /// The order in which nodes were first computed.
    pub order: Vec<NodeId>,
}

/// Runs the greedy solver with the default configuration
/// (most-red-inputs + min-uses).
///
/// # Example
/// ```
/// use rbp_core::{CostModel, Instance};
/// use rbp_solvers::greedy::solve_greedy;
///
/// let mut b = rbp_graph::DagBuilder::new(3);
/// b.add_edge(0, 2);
/// b.add_edge(1, 2);
/// let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
/// let rep = solve_greedy(&inst).unwrap();
/// assert_eq!(rep.cost.transfers, 0);
/// assert_eq!(rep.order.len(), 3); // first-computation order
/// ```
pub fn solve_greedy(instance: &Instance) -> Result<GreedyReport, SolveError> {
    solve_greedy_with(instance, GreedyConfig::default())
}

/// Runs the greedy solver with the given configuration. The returned
/// trace has been validated by the engine; `cost` is the engine's number.
///
/// Following the paper's narrative (Section 8), the greedy rule chooses
/// among *non-source* nodes whose non-source inputs are all computed;
/// source inputs are computed on demand while acquiring red pebbles for
/// the chosen node ("these greedy methods … do not specify which red
/// pebbles to move to its inputs").
pub fn solve_greedy_with(
    instance: &Instance,
    cfg: GreedyConfig,
) -> Result<GreedyReport, SolveError> {
    bounds::check_feasible(instance)?;
    let dag = instance.dag();
    let n = dag.n();
    let initially_blue = instance.source_convention() == SourceConvention::InitiallyBlue;

    let mut state = State::initial(instance);
    let mut trace = Pebbling::with_capacity(3 * n);
    // uses[v]: uncomputed successors of v (the value's remaining demand)
    let mut uses: Vec<u32> = (0..n)
        .map(|v| dag.outdegree(NodeId::new(v)) as u32)
        .collect();
    // pending[v]: uncomputed non-source predecessors (v is a selection
    // candidate when it hits 0)
    let mut pending: Vec<u32> = (0..n)
        .map(|v| {
            dag.preds(NodeId::new(v))
                .iter()
                .filter(|&&u| !dag.is_source(u))
                .count() as u32
        })
        .collect();
    let mut computed = vec![false; n];
    if initially_blue {
        for v in dag.sources() {
            computed[v.index()] = true;
        }
    }
    let mut order: Vec<NodeId> = Vec::with_capacity(n);

    let mut ready: Vec<u32> = (0..n as u32)
        .filter(|&v| {
            let node = NodeId::new(v as usize);
            !dag.is_source(node) && pending[v as usize] == 0
        })
        .collect();

    // recency bookkeeping for LRU/FIFO
    let mut clock: u64 = 0;
    let mut last_touch = vec![0u64; n];
    let mut placed_at = vec![0u64; n];
    let mut rng_state = match cfg.eviction {
        EvictionPolicy::Random(seed) => seed ^ 0x9e37_79b9_7f4a_7c15,
        _ => 0,
    };

    let apply = |state: &mut State, trace: &mut Pebbling, mv: Move| -> Result<(), SolveError> {
        state.apply(mv, instance).map_err(SolveError::Pebbling)?;
        trace.push(mv);
        Ok(())
    };

    while !ready.is_empty() {
        // --- selection ---
        let chosen = select(&ready, cfg.rule, dag, &state);
        let v = NodeId::new(chosen as usize);
        ready.retain(|&c| c != chosen);

        // --- acquire inputs (computing source inputs on demand) ---
        for &u in dag.preds(v) {
            if state.is_red(u) {
                clock += 1;
                last_touch[u.index()] = clock;
                continue;
            }
            ensure_slot(
                instance,
                &mut state,
                &mut trace,
                dag.preds(v),
                &uses,
                cfg.eviction,
                &last_touch,
                &placed_at,
                &mut rng_state,
            )?;
            if state.is_blue(u) {
                apply(&mut state, &mut trace, Move::Load(u))?;
            } else {
                // invariant: a computed value with uncomputed successors
                // keeps a pebble, so an unpebbled input is an uncomputed
                // source — compute it on demand
                debug_assert!(
                    dag.is_source(u) && !computed[u.index()],
                    "input v{} lost its pebble",
                    u.index()
                );
                apply(&mut state, &mut trace, Move::Compute(u))?;
                computed[u.index()] = true;
                order.push(u);
            }
            clock += 1;
            last_touch[u.index()] = clock;
            placed_at[u.index()] = clock;
        }

        // --- compute ---
        ensure_slot(
            instance,
            &mut state,
            &mut trace,
            dag.preds(v),
            &uses,
            cfg.eviction,
            &last_touch,
            &placed_at,
            &mut rng_state,
        )?;
        apply(&mut state, &mut trace, Move::Compute(v))?;
        clock += 1;
        last_touch[v.index()] = clock;
        placed_at[v.index()] = clock;
        computed[v.index()] = true;
        order.push(v);

        // --- bookkeeping ---
        for &u in dag.preds(v) {
            uses[u.index()] -= 1;
        }
        for &w in dag.succs(v) {
            pending[w.index()] -= 1;
            if pending[w.index()] == 0 && !computed[w.index()] {
                ready.push(w.index() as u32);
            }
        }
    }

    // isolated sources (simultaneously sinks) are never demanded by any
    // computation but still need a pebble for completion
    if !initially_blue {
        for v in dag.nodes() {
            if dag.is_source(v) && dag.is_sink(v) && !computed[v.index()] {
                ensure_slot(
                    instance,
                    &mut state,
                    &mut trace,
                    &[],
                    &uses,
                    cfg.eviction,
                    &last_touch,
                    &placed_at,
                    &mut rng_state,
                )?;
                apply(&mut state, &mut trace, Move::Compute(v))?;
                computed[v.index()] = true;
                order.push(v);
            }
        }
    }

    // under RequireBlue, sinks that finished red must be written out
    if instance.sink_convention() == SinkConvention::RequireBlue {
        for v in dag.nodes() {
            if dag.is_sink(v) && state.is_red(v) {
                apply(&mut state, &mut trace, Move::Store(v))?;
            }
        }
    }

    let report = engine::simulate(instance, &trace).map_err(|e| SolveError::Pebbling(e.error))?;
    Ok(GreedyReport {
        trace,
        cost: report.cost,
        order,
    })
}

/// Picks the next node to compute among `ready` under `rule`, breaking
/// ties toward the lowest node index (deterministic).
fn select(ready: &[u32], rule: SelectionRule, dag: &rbp_graph::Dag, state: &State) -> u32 {
    debug_assert!(!ready.is_empty(), "DAG exhausted with nodes uncomputed");
    let mut best = u32::MAX;
    // score encoded so that HIGHER is better for every rule
    let mut best_score = (i64::MIN, i64::MIN);
    for &c in ready {
        let v = NodeId::new(c as usize);
        let preds = dag.preds(v);
        let red = preds.iter().filter(|&&u| state.is_red(u)).count() as i64;
        let blue = preds.iter().filter(|&&u| state.is_blue(u)).count() as i64;
        let indeg = preds.len() as i64;
        let score = match rule {
            SelectionRule::MostRedInputs => (red, -blue),
            SelectionRule::FewestBlueInputs => (-blue, red),
            // compare red/indeg as exact fractions via a fixed common
            // scale; sources (indeg 0) count as ratio 1
            SelectionRule::HighestRedRatio => {
                if indeg == 0 {
                    (1 << 30, red)
                } else {
                    ((red << 30) / indeg, red)
                }
            }
        };
        // ties toward lower index: strictly-greater score wins; equal
        // score keeps the earlier (lower-index follows from scan order
        // only if ready is sorted — sort below)
        if score > best_score || (score == best_score && c < best) {
            best_score = score;
            best = c;
        }
    }
    best
}

/// Frees one red slot if the board is full: deletes a dead value if
/// possible, otherwise stores the victim chosen by `policy`. Nodes in
/// `pinned` (the inputs of the node being computed) are never evicted.
#[allow(clippy::too_many_arguments)]
fn ensure_slot(
    instance: &Instance,
    state: &mut State,
    trace: &mut Pebbling,
    pinned: &[NodeId],
    uses: &[u32],
    policy: EvictionPolicy,
    last_touch: &[u64],
    placed_at: &[u64],
    rng_state: &mut u64,
) -> Result<(), SolveError> {
    let r_limit = instance.red_limit();
    while state.red_count() >= r_limit {
        let dag = instance.dag();
        let is_pinned = |v: usize| pinned.iter().any(|p| p.index() == v);
        // class 1: dead non-sink values — free deletion (store in nodel)
        let mut dead: Option<usize> = None;
        // class 2: sinks (must store, but never need a reload)
        let mut sink: Option<usize> = None;
        // class 3: live values — policy decides
        let mut live: Vec<usize> = Vec::new();
        for v in state.red_set().iter() {
            if is_pinned(v) {
                continue;
            }
            let node = NodeId::new(v);
            if dag.is_sink(node) {
                sink.get_or_insert(v);
            } else if uses[v] == 0 {
                dead.get_or_insert(v);
            } else {
                live.push(v);
            }
        }
        let (victim, dispose) = if let Some(v) = dead {
            (v, instance.model().allows_delete())
        } else if let Some(v) = sink {
            (v, false)
        } else if !live.is_empty() {
            let v = match policy {
                EvictionPolicy::MinUses => *live
                    .iter()
                    .min_by_key(|&&v| (uses[v], v))
                    .expect("nonempty"),
                EvictionPolicy::Lru => *live
                    .iter()
                    .min_by_key(|&&v| (last_touch[v], v))
                    .expect("nonempty"),
                EvictionPolicy::Fifo => *live
                    .iter()
                    .min_by_key(|&&v| (placed_at[v], v))
                    .expect("nonempty"),
                EvictionPolicy::Random(_) => {
                    // xorshift64*
                    *rng_state ^= *rng_state << 13;
                    *rng_state ^= *rng_state >> 7;
                    *rng_state ^= *rng_state << 17;
                    live[(*rng_state % live.len() as u64) as usize]
                }
            };
            (v, false)
        } else {
            // every red pebble is pinned: the instance budget cannot hold
            // the inputs plus the result — ruled out by the feasibility
            // check, so this indicates an internal inconsistency
            unreachable!("eviction with all pebbles pinned despite feasibility check");
        };
        let node = NodeId::new(victim);
        let mv = if dispose {
            Move::Delete(node)
        } else {
            Move::Store(node)
        };
        state.apply(mv, instance).map_err(SolveError::Pebbling)?;
        trace.push(mv);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::CostModel;
    use rbp_core::ModelKind;
    use rbp_graph::{generate, DagBuilder};

    #[test]
    fn greedy_free_when_memory_ample() {
        let dag = generate::chain(10);
        let inst = Instance::new(dag, 3, CostModel::oneshot());
        let rep = solve_greedy(&inst).unwrap();
        assert_eq!(rep.cost.transfers, 0);
        assert_eq!(rep.order.len(), 10);
    }

    #[test]
    fn greedy_satisfies_require_blue_sinks_in_all_models() {
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            let dag = generate::gnp_dag(10, 0.3, 3, &mut rng);
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag, r, CostModel::of_kind(kind))
                .with_sink_convention(SinkConvention::RequireBlue);
            let rep = solve_greedy(&inst).unwrap();
            // simulate's completeness check enforces every sink blue
            assert!(engine::simulate(&inst, &rep.trace).is_ok(), "model {kind}");
        }
    }

    #[test]
    fn greedy_valid_in_all_models() {
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            for _ in 0..5 {
                let dag = generate::gnp_dag(15, 0.3, 3, &mut rng);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind));
                let rep = solve_greedy(&inst).unwrap();
                // cost is already engine-validated inside; re-check peak
                let sim = engine::simulate(&inst, &rep.trace).unwrap();
                assert!(sim.peak_red <= inst.red_limit(), "model {kind}");
            }
        }
    }

    #[test]
    fn all_rules_and_policies_produce_valid_traces() {
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 3, &mut rng);
        let inst = Instance::new(dag, 4, CostModel::oneshot());
        for rule in SelectionRule::ALL {
            for eviction in [
                EvictionPolicy::MinUses,
                EvictionPolicy::Lru,
                EvictionPolicy::Fifo,
                EvictionPolicy::Random(7),
            ] {
                let rep = solve_greedy_with(&inst, GreedyConfig { rule, eviction }).unwrap();
                assert!(engine::simulate(&inst, &rep.trace).is_ok());
            }
        }
    }

    #[test]
    fn greedy_cost_below_canonical_upper_bound() {
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            let dag = generate::gnp_dag(20, 0.25, 3, &mut rng);
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag, r, CostModel::oneshot());
            let rep = solve_greedy(&inst).unwrap();
            let ub = rbp_core::bounds::universal_upper_bound(&inst);
            assert!(rep.cost.transfers <= ub.transfers);
        }
    }

    #[test]
    fn greedy_respects_dependencies() {
        // order must be topological
        let mut rng = rand::thread_rng();
        let dag = generate::layered(3, 3, 2, &mut rng);
        let inst = Instance::new(dag, 4, CostModel::oneshot());
        let rep = solve_greedy(&inst).unwrap();
        assert!(rbp_graph::is_topological_order(inst.dag(), &rep.order));
    }

    #[test]
    fn greedy_infeasible_rejected() {
        let mut b = DagBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, 3);
        }
        let inst = Instance::new(b.build().unwrap(), 2, CostModel::oneshot());
        assert!(matches!(solve_greedy(&inst), Err(SolveError::Pebbling(_))));
    }

    #[test]
    fn most_red_inputs_prefers_warm_node() {
        // two independent joins; after computing the inputs of the first,
        // greedy must continue with the join whose inputs are red
        let mut b = DagBuilder::new(6);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.add_edge(3, 5);
        b.add_edge(4, 5);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        let rep = solve_greedy_with(
            &inst,
            GreedyConfig {
                rule: SelectionRule::MostRedInputs,
                eviction: EvictionPolicy::MinUses,
            },
        )
        .unwrap();
        // source 0, 1 computed first (ready, ties to low index), then node
        // 2 (two red inputs) must precede sources 3, 4
        let pos = |v: usize| rep.order.iter().position(|x| x.index() == v).unwrap();
        assert!(pos(2) < pos(3));
        assert!(pos(2) < pos(4));
        // one transfer is forced: when sink 5 is computed the other sink 2
        // must hold its pebble in blue (R = 3 is fully used by 3, 4, 5)
        assert_eq!(rep.cost.transfers, 1);
    }

    #[test]
    fn greedy_with_initially_blue_sources() {
        let dag = generate::chain(4);
        let inst = Instance::new(dag, 2, CostModel::oneshot())
            .with_source_convention(SourceConvention::InitiallyBlue);
        let rep = solve_greedy(&inst).unwrap();
        // the source must be loaded once: cost 1
        assert_eq!(rep.cost.transfers, 1);
        assert_eq!(rep.order.len(), 3, "source not recomputed");
    }

    #[test]
    fn random_eviction_is_deterministic_per_seed() {
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 2, &mut rng);
        let inst = Instance::new(dag, 3, CostModel::oneshot());
        let cfg = GreedyConfig {
            rule: SelectionRule::MostRedInputs,
            eviction: EvictionPolicy::Random(99),
        };
        let a = solve_greedy_with(&inst, cfg).unwrap();
        let b = solve_greedy_with(&inst, cfg).unwrap();
        assert_eq!(a.trace.moves(), b.trace.moves());
    }
}

//! Allocation-free state interning for the exact solver.
//!
//! The exact solver interns millions of fixed-width `u64` state keys. The
//! naive representation (`HashMap<Box<[u64]>, u32>` plus a parallel
//! `Vec<Box<[u64]>>`) pays two heap allocations per interned state and a
//! pointer chase per probe. [`StateArena`] replaces it with:
//!
//! - a single growable `Vec<u64>` **arena** holding every key
//!   contiguously — the key of state `id` lives at
//!   `arena[id·key_words .. (id+1)·key_words]`;
//! - an open-addressing (linear-probe) **index** of `u32` ids, hashed
//!   from arena slices with the Fx word hash.
//!
//! `intern` on the hit path is a hash, a probe, and one slice compare —
//! zero allocation. On the miss path it is one `extend_from_slice` into
//! the arena (amortized grow) plus a table store. Ids are dense and
//! assigned in first-intern order, so per-state solver bookkeeping lives
//! in parallel arrays ([`NodeTable`]) instead of per-state boxes.

use crate::hash::hash_words;
use rbp_core::Move;
use rbp_graph::NodeId;

/// Sentinel id marking an empty slot in the probe table and the root's
/// parent in [`NodeTable`].
pub const NO_STATE: u32 = u32::MAX;

/// Composes a shard-local state id into the global id namespace used for
/// cross-shard parent pointers: shards interleave (`global = local ·
/// shards + shard`), so every shard's ids stay dense in the shared `u32`
/// space and no per-shard capacity has to be reserved up front. The
/// sequential solver is the 1-shard special case (`global == local`).
///
/// Panics if the composition would collide with [`NO_STATE`] or overflow
/// (≈ `u32::MAX / shards` states per shard — far beyond memory, and the
/// solvers' `max_states` guard trips long before).
#[inline]
pub fn global_id(shard: u32, local: u32, shards: u32) -> u32 {
    debug_assert!(shard < shards);
    let id = (local as u64) * (shards as u64) + shard as u64;
    assert!(id < NO_STATE as u64, "sharded state id space exhausted");
    id as u32
}

/// Inverse of [`global_id`]: recovers `(shard, local)` from a global id.
#[inline]
pub fn split_id(global: u32, shards: u32) -> (u32, u32) {
    (global % shards, global / shards)
}

/// A flat intern table for fixed-width `u64` keys.
///
/// Capacity is bounded at `u32::MAX - 1` states (the probe table stores
/// `u32` ids with [`NO_STATE`] reserved), far beyond what fits in memory.
#[derive(Clone, Debug)]
pub struct StateArena {
    key_words: usize,
    /// All keys, contiguous; state `id` owns words `id*kw..(id+1)*kw`.
    arena: Vec<u64>,
    /// Open-addressing table of ids; `NO_STATE` marks an empty slot.
    /// Length is always a power of two.
    table: Vec<u32>,
    /// `table.len() - 1`, cached for masking hashes into slots.
    mask: usize,
}

impl StateArena {
    /// Creates an arena for keys of exactly `key_words` words.
    pub fn new(key_words: usize) -> Self {
        Self::with_capacity(key_words, 1024)
    }

    /// Creates an arena pre-sized for roughly `states` interned keys.
    pub fn with_capacity(key_words: usize, states: usize) -> Self {
        assert!(key_words > 0, "keys must be at least one word wide");
        let slots = (states * 2).next_power_of_two().max(16);
        StateArena {
            key_words,
            arena: Vec::with_capacity(states.saturating_mul(key_words)),
            table: vec![NO_STATE; slots],
            mask: slots - 1,
        }
    }

    /// Width of every key, in `u64` words.
    #[inline]
    pub fn key_words(&self) -> usize {
        self.key_words
    }

    /// The shard that owns `key` in a `shards`-way partition of the state
    /// space: the parallel solver routes every successor to its owner so
    /// each state is interned by exactly one thread.
    ///
    /// Routing reuses the [`hash_words`] digest that the intern table
    /// probes with, but folds in the *upper* half of the hash — the probe
    /// table masks the low bits, so shard choice and slot choice stay
    /// independent and the per-shard tables do not alias.
    #[inline]
    pub fn shard_of(key: &[u64], shards: usize) -> usize {
        debug_assert!(shards > 0);
        ((hash_words(key) >> 32) as usize) % shards
    }

    /// Number of interned states.
    #[inline]
    pub fn len(&self) -> usize {
        self.arena.len() / self.key_words
    }

    /// Whether no state has been interned yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The key of state `id`, borrowed from the arena.
    #[inline]
    pub fn key(&self, id: u32) -> &[u64] {
        let start = id as usize * self.key_words;
        &self.arena[start..start + self.key_words]
    }

    /// Interns `key`, returning `(id, fresh)` where `fresh` is `true` iff
    /// the key was not present before. Ids are dense: the k-th distinct
    /// key ever interned gets id `k - 1`.
    pub fn intern(&mut self, key: &[u64]) -> (u32, bool) {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        // Grow at 7/8 occupancy, before probing, so insertion below
        // always finds an empty slot.
        if (self.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        }
        let mut slot = hash_words(key) as usize & self.mask;
        loop {
            let id = self.table[slot];
            if id == NO_STATE {
                let fresh_id = self.len() as u32;
                assert!(fresh_id != NO_STATE, "state arena id space exhausted");
                self.arena.extend_from_slice(key);
                self.table[slot] = fresh_id;
                return (fresh_id, true);
            }
            if self.key(id) == key {
                return (id, false);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Doubles the probe table and re-inserts every id. Keys never move:
    /// only the index is rebuilt, hashing each key in place in the arena.
    fn grow(&mut self) {
        let new_len = self.table.len() * 2;
        let mut table = vec![NO_STATE; new_len];
        let mask = new_len - 1;
        for id in 0..self.len() as u32 {
            let mut slot = hash_words(self.key(id)) as usize & mask;
            while table[slot] != NO_STATE {
                slot = (slot + 1) & mask;
            }
            table[slot] = id;
        }
        self.table = table;
        self.mask = mask;
    }
}

/// Struct-of-arrays per-state bookkeeping for the exact search, indexed
/// by [`StateArena`] id.
///
/// Splitting the fields keeps each access pattern dense: the Dijkstra
/// relaxation touches `dist`/`settled`, trace recovery walks `parent`,
/// and the incremental-delta machinery reads the three metadata arrays
/// (`red_count`, `unsat_sinks`, `heur`) exactly once per expansion.
///
/// Invariant: all arrays stay the same length as the owning arena; every
/// interned state pushes exactly one entry.
#[derive(Clone, Debug, Default)]
pub struct NodeTable {
    /// Tentative scaled distance from the initial state (`u64::MAX` =
    /// unreached).
    pub dist: Vec<u64>,
    /// `(predecessor id, move)` realizing `dist`; `(NO_STATE, _)` for the
    /// root.
    pub parent: Vec<(u32, Move)>,
    /// Whether the state has been popped with its final distance.
    pub settled: Vec<bool>,
    /// Number of red pebbles in the state (maintained by ±1 deltas).
    pub red_count: Vec<u32>,
    /// Number of sinks not yet satisfying the finishing condition; the
    /// state is a goal iff this is 0.
    pub unsat_sinks: Vec<u32>,
    /// Cached admissible heuristic value (scaled units; 0 when A* is
    /// off or inapplicable).
    pub heur: Vec<u64>,
}

impl NodeTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked states.
    #[inline]
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Appends bookkeeping for a freshly interned state with the given
    /// incremental metadata; distance starts unreached.
    #[inline]
    pub fn push(&mut self, red_count: u32, unsat_sinks: u32, heur: u64) {
        self.dist.push(u64::MAX);
        self.parent.push((NO_STATE, Move::Delete(NodeId::new(0))));
        self.settled.push(false);
        self.red_count.push(red_count);
        self.unsat_sinks.push(unsat_sinks);
        self.heur.push(heur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_and_roundtrips() {
        let mut a = StateArena::new(2);
        assert!(a.is_empty());
        let (i0, f0) = a.intern(&[1, 2]);
        let (i1, f1) = a.intern(&[3, 4]);
        let (i0b, f0b) = a.intern(&[1, 2]);
        assert_eq!((i0, f0), (0, true));
        assert_eq!((i1, f1), (1, true));
        assert_eq!((i0b, f0b), (0, false));
        assert_eq!(a.len(), 2);
        assert_eq!(a.key(0), &[1, 2]);
        assert_eq!(a.key(1), &[3, 4]);
    }

    #[test]
    fn zero_key_is_a_valid_state() {
        let mut a = StateArena::new(3);
        let (id, fresh) = a.intern(&[0, 0, 0]);
        assert!(fresh);
        assert_eq!(a.key(id), &[0, 0, 0]);
        assert_eq!(a.intern(&[0, 0, 0]), (id, false));
    }

    #[test]
    fn survives_table_growth() {
        // start tiny so several doublings happen
        let mut a = StateArena::with_capacity(1, 4);
        for k in 0..10_000u64 {
            let (id, fresh) = a.intern(&[k.wrapping_mul(0x9e37_79b9_7f4a_7c15)]);
            assert_eq!(id as u64, k);
            assert!(fresh);
        }
        for k in 0..10_000u64 {
            let (id, fresh) = a.intern(&[k.wrapping_mul(0x9e37_79b9_7f4a_7c15)]);
            assert_eq!(id as u64, k);
            assert!(!fresh);
        }
        assert_eq!(a.len(), 10_000);
    }

    #[test]
    fn colliding_prefixes_stay_distinct() {
        // keys sharing every word but the last must not alias
        let mut a = StateArena::new(4);
        let (x, _) = a.intern(&[7, 7, 7, 1]);
        let (y, _) = a.intern(&[7, 7, 7, 2]);
        assert_ne!(x, y);
        assert_eq!(a.key(x)[3], 1);
        assert_eq!(a.key(y)[3], 2);
    }

    #[test]
    fn node_table_tracks_arena() {
        let mut t = NodeTable::new();
        assert!(t.is_empty());
        t.push(3, 1, 10);
        assert_eq!(t.len(), 1);
        assert_eq!(t.dist[0], u64::MAX);
        assert_eq!(t.parent[0].0, NO_STATE);
        assert!(!t.settled[0]);
        assert_eq!(
            (t.red_count[0], t.unsat_sinks[0], t.heur[0]),
            (3u32, 1u32, 10u64)
        );
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_width_keys_rejected() {
        let _ = StateArena::new(0);
    }

    #[test]
    fn global_ids_roundtrip_and_interleave() {
        for shards in 1u32..=5 {
            let mut seen = std::collections::HashSet::new();
            for local in 0..100u32 {
                for shard in 0..shards {
                    let g = global_id(shard, local, shards);
                    assert_eq!(split_id(g, shards), (shard, local));
                    assert!(seen.insert(g), "global ids must not collide");
                    assert_ne!(g, NO_STATE);
                }
            }
        }
        // the 1-shard namespace is the identity (sequential solver)
        assert_eq!(global_id(0, 42, 1), 42);
    }

    #[test]
    #[should_panic(expected = "id space exhausted")]
    fn global_id_never_aliases_no_state() {
        // u32::MAX would decompose as (shard 3, local …) in a 4-shard
        // namespace; composing it must trap instead of aliasing NO_STATE
        let (shard, local) = split_id(u32::MAX, 4);
        let _ = global_id(shard, local, 4);
    }

    #[test]
    fn sharding_partitions_and_balances() {
        // every key routes to exactly one shard, deterministically, and
        // no shard is starved on a spread of keys
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for k in 0..4096u64 {
            let key = [k.wrapping_mul(0x9e37_79b9_7f4a_7c15), k];
            let s = StateArena::shard_of(&key, shards);
            assert_eq!(s, StateArena::shard_of(&key, shards), "routing unstable");
            assert!(s < shards);
            counts[s] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 4096 / shards / 4, "shard {s} starved: {counts:?}");
        }
    }
}

//! Re-export of [`rbp_graph::hash`], the fast word hasher the solver
//! arenas intern states with.
//!
//! The implementation moved down to `rbp-graph` so that `rbp-core` can
//! share the same digest scheme (notably
//! `rbp_core::Instance::canonical_key`, the service-layer cache key)
//! without depending on this crate. Existing `rbp_solvers::hash::*`
//! paths keep working through this module.

pub use rbp_graph::hash::{hash_words, FxBuildHasher, FxHashMap, FxHasher};

//! Multiprocessor pebbling solvers: exact Dijkstra over the product
//! state space and a greedy list scheduler.
//!
//! The multiprocessor game (`rbp_core::mpp`) runs `p` private fast
//! memories over one shared blue memory; a configuration is the tuple
//! of `p` per-processor red sets, the shared blue set, and (oneshot)
//! the global computed set. This module searches that product space:
//!
//! - [`solve_exact_mpp`]: plain Dijkstra — the A* heuristic and most
//!   oneshot prunes of the classic solver do not transfer soundly to
//!   per-processor ownership, so only the dominance prune "never delete
//!   a blue pebble" is kept (deleting shared blue frees no private
//!   capacity, so the smaller-blue state is dominated at equal cost).
//!   Edge weights are the instance's exact weight scales
//!   ([`Instance::cost_scales`]), so the optimum is the additive
//!   objective `transfers·comm + computes·comp` — the makespan is a
//!   reported statistic, never the search objective.
//! - [`solve_greedy_mpp`]: a topological list scheduler. Each
//!   non-source node is assigned to the processor holding most of its
//!   inputs red (ties: least accumulated weighted work, then lowest
//!   index); inputs travel through shared memory (store + load) when
//!   they live on another processor; eviction stores the victim with
//!   the fewest uncomputed successors (sinks preferred stored, dead
//!   values deleted where the model allows).
//!
//! Both are exposed through the registry as `exact@mpp[:P]` and
//! `greedy@mpp[:P]`, where the optional `P` overrides the instance's
//! own processor count ([`Instance::with_procs`]). At `p = 1` the exact
//! solver provably agrees with the classic single-processor optimum —
//! the state spaces are isomorphic — which the verify harness and the
//! perf snapshot pin continuously.

use crate::api::{upper_bound_quality, Quality, Solution, SolveCtx, Solver, Stats};
use crate::arena::{StateArena, NO_STATE};
use crate::error::SolveError;
use crate::exact::ExactConfig;
use rbp_core::{bounds, engine, mpp, Cost, Instance, ModelKind, Move, Pebbling, SourceConvention};
use rbp_graph::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Budget polls happen every this many expansions (mirrors
/// `crate::exact`).
const BUDGET_POLL_INTERVAL: usize = 256;

#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1 << (i % 64)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

#[inline]
fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1 << (i % 64));
}

/// Result of an exact multiprocessor solve.
#[derive(Clone, Debug)]
pub struct MppExactReport {
    /// Exact optimal cost (additive objective).
    pub cost: Cost,
    /// A processor-tagged optimal pebbling realizing that cost.
    pub trace: Pebbling,
    /// Number of states popped from the queue.
    pub states_expanded: usize,
    /// Number of distinct states interned.
    pub states_seen: usize,
}

/// Solves the multiprocessor instance exactly (default configuration).
pub fn solve_exact_mpp(instance: &Instance) -> Result<MppExactReport, SolveError> {
    solve_exact_mpp_budgeted(instance, ExactConfig::default(), &SolveCtx::default())
        .map(|(rep, _)| rep)
}

/// Budget-aware exact multiprocessor solve. Returns the report plus
/// whether it is proved optimal (`false` when the budget expired and
/// the report holds the best goal discovered so far).
pub(crate) fn solve_exact_mpp_budgeted(
    instance: &Instance,
    cfg: ExactConfig,
    ctx: &SolveCtx,
) -> Result<(MppExactReport, bool), SolveError> {
    cfg.validate()?;
    bounds::check_feasible(instance)?;

    let dag = instance.dag();
    let n = dag.n();
    let p = instance.procs().max(1);
    let wpn = rbp_graph::words_for(n);
    let oneshot = instance.model().kind() == ModelKind::Oneshot;
    // key layout: p red planes, then blue, then (oneshot) computed
    let key_words = (p + 1 + usize::from(oneshot)) * wpn;
    let blue_off = p * wpn;
    let comp_off = blue_off + wpn;
    let (comm, comp) = instance.cost_scales();
    let r_limit = instance.red_limit();
    let model = instance.model();
    let initially_blue = instance.source_convention() == SourceConvention::InitiallyBlue;
    let need_blue = instance.sink_convention() == rbp_core::SinkConvention::RequireBlue;
    let sinks: Vec<usize> = dag
        .nodes()
        .filter(|&v| dag.is_sink(v))
        .map(|v| v.index())
        .collect();

    let is_red_on = |key: &[u64], i: usize, v: usize| bit_get(&key[i * wpn..(i + 1) * wpn], v);
    let is_red_any =
        |key: &[u64], v: usize| (0..p).any(|i| bit_get(&key[i * wpn..(i + 1) * wpn], v));
    let is_blue = |key: &[u64], v: usize| bit_get(&key[blue_off..blue_off + wpn], v);
    let is_computed = |key: &[u64], v: usize| {
        if oneshot {
            bit_get(&key[comp_off..comp_off + wpn], v)
        } else {
            is_red_any(key, v) || is_blue(key, v)
        }
    };
    let is_goal = |key: &[u64]| {
        sinks.iter().all(|&s| {
            if need_blue {
                is_blue(key, s)
            } else {
                is_blue(key, s) || is_red_any(key, s)
            }
        })
    };

    // initial configuration
    let mut init = vec![0u64; key_words];
    if initially_blue {
        for v in dag.sources() {
            bit_set(&mut init[blue_off..blue_off + wpn], v.index());
            if oneshot {
                bit_set(&mut init[comp_off..comp_off + wpn], v.index());
            }
        }
    }

    let mut arena = StateArena::new(key_words);
    let mut dist: Vec<u64> = Vec::new();
    let mut parent: Vec<(u32, Move, u16)> = Vec::new();
    let mut settled: Vec<bool> = Vec::new();
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut cutoff = cfg.seed_cutoff();
    let mut best_goal: (u64, u32) = (u64::MAX, NO_STATE);

    let (root, _) = arena.intern(&init);
    dist.push(0);
    parent.push((NO_STATE, Move::Delete(NodeId::new(0)), 0));
    settled.push(false);
    heap.push(Reverse((0, root)));

    let budget_live = !ctx.budget.is_unlimited();
    let mut expanded = 0usize;
    let mut key_buf: Vec<u64> = Vec::with_capacity(key_words);
    let mut scratch = vec![0u64; key_words];
    let mut red_counts = vec![0u32; p];

    let recover = |goal: u32, parent: &[(u32, Move, u16)]| {
        let mut rev: Vec<(Move, u16)> = Vec::new();
        let mut cur = goal;
        while parent[cur as usize].0 != NO_STATE {
            let (prev, mv, proc) = parent[cur as usize];
            rev.push((mv, proc));
            cur = prev;
        }
        let mut trace = Pebbling::with_capacity(rev.len());
        for (mv, proc) in rev.into_iter().rev() {
            trace.push_on(mv, proc);
        }
        trace
    };
    let report = |goal: u32,
                  expanded: usize,
                  arena: &StateArena,
                  parent: &[(u32, Move, u16)]|
     -> MppExactReport {
        let trace = recover(goal, parent);
        let stats = trace.stats();
        MppExactReport {
            cost: Cost {
                transfers: stats.transfers(),
                computes: stats.computes,
            },
            trace,
            states_expanded: expanded,
            states_seen: arena.len(),
        }
    };

    if budget_live && ctx.budget.exhausted(0) {
        return Err(SolveError::Interrupted);
    }

    while let Some(Reverse((_prio, id))) = heap.pop() {
        let idx = id as usize;
        if settled[idx] {
            continue;
        }
        settled[idx] = true;
        key_buf.clear();
        key_buf.extend_from_slice(arena.key(id));
        let d = dist[idx];
        expanded += 1;
        if budget_live
            && expanded.is_multiple_of(BUDGET_POLL_INTERVAL)
            && ctx.budget.exhausted(expanded as u64)
        {
            let (_, gid) = best_goal;
            if gid == NO_STATE {
                return Err(SolveError::Interrupted);
            }
            return Ok((report(gid, expanded, &arena, &parent), false));
        }
        if is_goal(&key_buf) {
            return Ok((report(id, expanded, &arena, &parent), true));
        }

        for (i, count) in red_counts.iter_mut().enumerate() {
            *count = key_buf[i * wpn..(i + 1) * wpn]
                .iter()
                .map(|w| w.count_ones())
                .sum();
        }

        // every (move, processor) successor; relax-or-intern each child
        let mut relax = |succ: &[u64],
                         mv: Move,
                         proc: u16,
                         edge: u64,
                         arena: &mut StateArena|
         -> Result<(), SolveError> {
            let nd = d + edge;
            if nd >= cutoff {
                return Ok(());
            }
            let (cid, fresh) = arena.intern(succ);
            if fresh {
                dist.push(u64::MAX);
                parent.push((NO_STATE, Move::Delete(NodeId::new(0)), 0));
                settled.push(false);
                if arena.len() > cfg.max_states {
                    return Err(SolveError::StateLimitExceeded {
                        limit: cfg.max_states,
                    });
                }
            }
            let cidx = cid as usize;
            if !settled[cidx] && nd < dist[cidx] {
                dist[cidx] = nd;
                parent[cidx] = (id, mv, proc);
                heap.push(Reverse((nd, cid)));
                if is_goal(succ) && nd < best_goal.0 {
                    best_goal = (nd, cid);
                    if cfg.prune && nd < cutoff {
                        cutoff = nd;
                    }
                }
            }
            Ok(())
        };

        for v in 0..n {
            let node = NodeId::new(v);
            let blue = is_blue(&key_buf, v);
            let red_any = is_red_any(&key_buf, v);
            for (i, &red_count) in red_counts.iter().enumerate() {
                let plane = i * wpn;
                if is_red_on(&key_buf, i, v) {
                    // Store(i, v): own red -> shared blue
                    scratch.copy_from_slice(&key_buf);
                    bit_clear(&mut scratch[plane..plane + wpn], v);
                    bit_set(&mut scratch[blue_off..blue_off + wpn], v);
                    relax(&scratch, Move::Store(node), i as u16, comm, &mut arena)?;
                    // Delete(i, v) of the own red pebble
                    if model.allows_delete() {
                        scratch.copy_from_slice(&key_buf);
                        bit_clear(&mut scratch[plane..plane + wpn], v);
                        relax(&scratch, Move::Delete(node), i as u16, 0, &mut arena)?;
                    }
                    continue;
                }
                if blue && (red_count as usize) < r_limit {
                    // Load(i, v): shared blue -> own red
                    scratch.copy_from_slice(&key_buf);
                    bit_clear(&mut scratch[blue_off..blue_off + wpn], v);
                    bit_set(&mut scratch[plane..plane + wpn], v);
                    relax(&scratch, Move::Load(node), i as u16, comm, &mut arena)?;
                }
                // Compute(i, v): all inputs red on processor i
                let recompute_ok = model.allows_recompute() || !is_computed(&key_buf, v);
                let source_ok = !initially_blue || !dag.is_source(node);
                let computable = !red_any
                    && recompute_ok
                    && source_ok
                    && (red_count as usize) < r_limit
                    && dag
                        .pred_mask(node)
                        .iter()
                        .zip(&key_buf[plane..plane + wpn])
                        .all(|(m, r)| m & !r == 0);
                if computable {
                    scratch.copy_from_slice(&key_buf);
                    bit_clear(&mut scratch[blue_off..blue_off + wpn], v);
                    bit_set(&mut scratch[plane..plane + wpn], v);
                    if oneshot {
                        bit_set(&mut scratch[comp_off..comp_off + wpn], v);
                    }
                    relax(&scratch, Move::Compute(node), i as u16, comp, &mut arena)?;
                }
            }
            // Delete of the shared blue pebble: processor-independent,
            // emitted once (from processor 0) and only in unpruned mode —
            // dropping shared data frees no private capacity, so the
            // smaller-blue state is dominated at equal cost.
            if blue && model.allows_delete() && !cfg.prune {
                scratch.copy_from_slice(&key_buf);
                bit_clear(&mut scratch[blue_off..blue_off + wpn], v);
                relax(&scratch, Move::Delete(node), 0, 0, &mut arena)?;
            }
        }
    }
    Err(SolveError::NoPebblingFound)
}

/// The move-application callback the greedy helpers thread through:
/// `(state, trace, per-processor work, move, processor)`.
type ApplyMove<'a> = dyn FnMut(&mut mpp::MppState, &mut Pebbling, &mut [u128], Move, usize) -> Result<(), SolveError>
    + 'a;

/// Result of a greedy multiprocessor run.
#[derive(Clone, Debug)]
pub struct MppGreedyReport {
    /// The produced processor-tagged pebbling (engine-validated).
    pub trace: Pebbling,
    /// Its exact global cost.
    pub cost: Cost,
}

/// Greedy multiprocessor list scheduling: nodes in topological order,
/// each assigned to the processor already holding most of its inputs.
pub fn solve_greedy_mpp(instance: &Instance) -> Result<MppGreedyReport, SolveError> {
    bounds::check_feasible(instance)?;
    let dag = instance.dag();
    let n = dag.n();
    let p = instance.procs().max(1);
    let initially_blue = instance.source_convention() == SourceConvention::InitiallyBlue;
    let (comm, comp) = instance.cost_scales();
    let allows_delete = instance.model().allows_delete();

    let mut state = mpp::MppState::initial(instance);
    let mut trace = Pebbling::with_capacity(3 * n);
    // uses[v]: uncomputed successors (remaining demand for v's value)
    let mut uses: Vec<u32> = (0..n)
        .map(|v| dag.outdegree(NodeId::new(v)) as u32)
        .collect();
    let mut computed = vec![false; n];
    if initially_blue {
        for v in dag.sources() {
            computed[v.index()] = true;
        }
    }
    // weighted accumulated work per processor (load-balancing tiebreak)
    let mut work: Vec<u128> = vec![0; p];

    let mut apply = |state: &mut mpp::MppState,
                     trace: &mut Pebbling,
                     work: &mut [u128],
                     mv: Move,
                     proc: usize|
     -> Result<(), SolveError> {
        state
            .apply(mv, proc as u16, instance)
            .map_err(SolveError::Pebbling)?;
        trace.push_on(mv, proc as u16);
        work[proc] += match mv {
            Move::Load(_) | Move::Store(_) => comm as u128,
            Move::Compute(_) => comp as u128,
            Move::Delete(_) => 0,
        };
        Ok(())
    };

    // Frees one slot on processor `i` if its memory is full. Victims:
    // dead non-sinks first (deleted where legal, else stored), then the
    // live value with the fewest uncomputed successors (sinks last —
    // they are stored, never deleted). `pinned` values never move.
    let ensure_slot = |state: &mut mpp::MppState,
                       trace: &mut Pebbling,
                       work: &mut [u128],
                       apply: &mut ApplyMove<'_>,
                       uses: &[u32],
                       i: usize,
                       pinned: &[NodeId]|
     -> Result<(), SolveError> {
        while state.red_count_of(i) >= instance.red_limit() {
            let is_pinned = |v: usize| pinned.iter().any(|u| u.index() == v);
            let mut dead: Option<usize> = None;
            let mut sink: Option<usize> = None;
            let mut live: Option<(u32, usize)> = None;
            for (v, &demand) in uses.iter().enumerate() {
                if !state.is_red_on(i, NodeId::new(v)) || is_pinned(v) {
                    continue;
                }
                if dag.is_sink(NodeId::new(v)) {
                    sink.get_or_insert(v);
                } else if demand == 0 {
                    dead.get_or_insert(v);
                } else if live.is_none_or(|(u, w)| (demand, v) < (u, w)) {
                    live = Some((demand, v));
                }
            }
            let (victim, dispose) = if let Some(v) = dead {
                (v, allows_delete)
            } else if let Some((_, v)) = live {
                (v, false)
            } else if let Some(v) = sink {
                (v, false)
            } else {
                unreachable!("eviction with all pebbles pinned despite feasibility check");
            };
            let node = NodeId::new(victim);
            let mv = if dispose {
                Move::Delete(node)
            } else {
                Move::Store(node)
            };
            apply(state, trace, work, mv, i)?;
        }
        Ok(())
    };

    for v in rbp_graph::topological_order(dag) {
        if dag.is_source(v) {
            continue; // sources are computed on demand, on the consumer
        }
        let preds = dag.preds(v);
        // processor choice: most inputs already red there, then least
        // accumulated weighted work, then lowest index
        let i = (0..p)
            .min_by_key(|&i| {
                let red_here = preds.iter().filter(|&&u| state.is_red_on(i, u)).count();
                (Reverse(red_here), work[i], i)
            })
            .expect("p >= 1");
        // acquire inputs on processor i
        for &u in preds {
            if state.is_red_on(i, u) {
                continue;
            }
            if let Some(j) = (0..p).find(|&j| state.is_red_on(j, u)) {
                // ship through shared memory: store on the holder...
                apply(&mut state, &mut trace, &mut work, Move::Store(u), j)?;
            }
            ensure_slot(
                &mut state, &mut trace, &mut work, &mut apply, &uses, i, preds,
            )?;
            if state.is_blue(u) {
                apply(&mut state, &mut trace, &mut work, Move::Load(u), i)?;
            } else {
                // an unpebbled input is an uncomputed source
                debug_assert!(
                    dag.is_source(u) && !computed[u.index()],
                    "input v{} lost its pebble",
                    u.index()
                );
                apply(&mut state, &mut trace, &mut work, Move::Compute(u), i)?;
                computed[u.index()] = true;
            }
        }
        ensure_slot(
            &mut state, &mut trace, &mut work, &mut apply, &uses, i, preds,
        )?;
        apply(&mut state, &mut trace, &mut work, Move::Compute(v), i)?;
        computed[v.index()] = true;
        for &u in preds {
            uses[u.index()] -= 1;
        }
    }

    // isolated source-sinks are never demanded but still need a pebble
    if !initially_blue {
        for v in dag.nodes() {
            if dag.is_source(v) && dag.is_sink(v) && !computed[v.index()] {
                let i = (0..p).min_by_key(|&i| (work[i], i)).expect("p >= 1");
                ensure_slot(&mut state, &mut trace, &mut work, &mut apply, &uses, i, &[])?;
                apply(&mut state, &mut trace, &mut work, Move::Compute(v), i)?;
                computed[v.index()] = true;
            }
        }
    }

    // under RequireBlue, sinks that finished red must be written out by
    // whichever processor holds them
    if instance.sink_convention() == rbp_core::SinkConvention::RequireBlue {
        for v in dag.nodes() {
            if dag.is_sink(v) && !state.is_blue(v) {
                if let Some(j) = (0..p).find(|&j| state.is_red_on(j, v)) {
                    apply(&mut state, &mut trace, &mut work, Move::Store(v), j)?;
                }
            }
        }
    }

    let rep = engine::simulate(instance, &trace).map_err(|e| SolveError::Pebbling(e.error))?;
    Ok(MppGreedyReport {
        trace,
        cost: rep.cost,
    })
}

// ---------------------------------------------------------------------
// Solver-trait adapters
// ---------------------------------------------------------------------

/// The exact multiprocessor solver behind the [`Solver`] trait:
/// registry family `exact@mpp[:P]`. The optional `P` overrides the
/// instance's processor count; without it the instance's own `p` (1 for
/// classic instances) is searched.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactMppSolver {
    /// Processor-count override (`None`: the instance's own `p`).
    pub procs: Option<u32>,
    /// The search knobs shared with the classic exact solver
    /// (`astar` is ignored — no admissible product-space heuristic).
    pub cfg: ExactConfig,
}

impl ExactMppSolver {
    /// Default configuration, no processor override.
    pub fn new() -> Self {
        ExactMppSolver::default()
    }

    /// Overrides the processor count (`exact@mpp:P`).
    pub fn with_procs(p: u32) -> Self {
        ExactMppSolver {
            procs: Some(p),
            cfg: ExactConfig::default(),
        }
    }

    fn derived(&self, instance: &Instance) -> Instance {
        match self.procs {
            Some(p) => instance.with_procs(p),
            None => instance.clone(),
        }
    }
}

impl Solver for ExactMppSolver {
    fn name(&self) -> &str {
        "exact@mpp"
    }

    fn spec(&self) -> String {
        match self.procs {
            Some(p) => format!("exact@mpp:{p}"),
            None => "exact@mpp".to_string(),
        }
    }

    fn solve(&self, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError> {
        let inst = self.derived(instance);
        let mut cfg = self.cfg;
        cfg.validate()?;
        bounds::check_feasible(&inst)?;
        // seed the incumbent (and the degradation fallback) greedily
        let seed = match solve_greedy_mpp(&inst) {
            Ok(rep) => {
                let ub = inst.scaled_cost(&rep.cost);
                if cfg.prune && u64::try_from(ub).is_ok() {
                    cfg.upper_bound = Some(cfg.upper_bound.map_or(ub as u64, |b| b.min(ub as u64)));
                }
                Some(rep)
            }
            Err(_) => None,
        };
        match solve_exact_mpp_budgeted(&inst, cfg, ctx) {
            Ok((rep, optimal)) => {
                let mut stats = mpp_stats(&inst, &rep.trace);
                stats.set("states_expanded", rep.states_expanded as u64);
                stats.set("states_seen", rep.states_seen as u64);
                let quality = if optimal {
                    Quality::Optimal
                } else {
                    stats.set("degraded", 1);
                    upper_bound_quality(&inst, rep.cost)
                };
                Solution::validated(&inst, rep.trace, quality, stats)
            }
            Err(SolveError::Interrupted) | Err(SolveError::StateLimitExceeded { .. })
                if seed.is_some() =>
            {
                let rep = seed.expect("guarded");
                let mut stats = mpp_stats(&inst, &rep.trace);
                stats.set("degraded", 1);
                let quality = upper_bound_quality(&inst, rep.cost);
                Solution::validated(&inst, rep.trace, quality, stats)
            }
            Err(e) => Err(e),
        }
    }
}

/// The greedy multiprocessor list scheduler behind the [`Solver`]
/// trait: registry family `greedy@mpp[:P]`.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyMppSolver {
    /// Processor-count override (`None`: the instance's own `p`).
    pub procs: Option<u32>,
}

impl GreedyMppSolver {
    /// No processor override.
    pub fn new() -> Self {
        GreedyMppSolver::default()
    }

    /// Overrides the processor count (`greedy@mpp:P`).
    pub fn with_procs(p: u32) -> Self {
        GreedyMppSolver { procs: Some(p) }
    }
}

impl Solver for GreedyMppSolver {
    fn name(&self) -> &str {
        "greedy@mpp"
    }

    fn spec(&self) -> String {
        match self.procs {
            Some(p) => format!("greedy@mpp:{p}"),
            None => "greedy@mpp".to_string(),
        }
    }

    fn solve(&self, instance: &Instance, _ctx: &SolveCtx) -> Result<Solution, SolveError> {
        let inst = match self.procs {
            Some(p) => instance.with_procs(p),
            None => instance.clone(),
        };
        let rep = solve_greedy_mpp(&inst)?;
        let stats = mpp_stats(&inst, &rep.trace);
        let quality = upper_bound_quality(&inst, rep.cost);
        Solution::validated(&inst, rep.trace, quality, stats)
    }
}

/// The stats every MPP solver reports: the effective processor count
/// and the makespan statistic (max over processors of own weighted
/// work — reported, never optimized).
fn mpp_stats(instance: &Instance, trace: &Pebbling) -> Stats {
    let mut stats = Stats::new();
    stats.set("procs", instance.procs() as u64);
    if let Ok(rep) = mpp::simulate_mpp(instance, trace) {
        stats.set(
            "mpp_time_scaled",
            u64::try_from(rep.time_scaled(instance)).unwrap_or(u64::MAX),
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use rbp_core::{CostModel, MppDim, Ratio, SinkConvention};
    use rbp_graph::{generate, DagBuilder};

    #[test]
    fn p1_exact_matches_the_classic_optimum() {
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            for _ in 0..3 {
                let dag = generate::gnp_dag(5, 0.4, 2, &mut rng);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind));
                let classic = solve_exact(&inst).unwrap();
                let mpp1 = solve_exact_mpp(&inst.with_procs(1)).unwrap();
                assert_eq!(
                    inst.scaled_cost(&mpp1.cost),
                    inst.scaled_cost(&classic.cost),
                    "exact@mpp:1 must equal the classic optimum ({kind})"
                );
            }
        }
    }

    #[test]
    fn optimum_is_monotone_non_increasing_in_p() {
        let mut rng = rand::thread_rng();
        for _ in 0..2 {
            let dag = generate::gnp_dag(5, 0.4, 2, &mut rng);
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag, r, CostModel::base());
            let mut prev = u128::MAX;
            for p in [1u32, 2, 4] {
                let lifted = inst.with_procs(p);
                let rep = solve_exact_mpp(&lifted).unwrap();
                let c = lifted.scaled_cost(&rep.cost);
                assert!(c <= prev, "optimum rose from p to {p}: {prev} -> {c}");
                prev = c;
            }
        }
    }

    #[test]
    fn more_processors_can_strictly_help() {
        // Two independent 3-chains in nodel with R = 2. One processor
        // must store n - R = 4 values; two processors run one chain
        // each and store only one value per chain.
        let mut b = DagBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        let inst = Instance::new(b.build().unwrap(), 2, CostModel::nodel());
        let p1 = solve_exact_mpp(&inst.with_procs(1)).unwrap();
        let p2 = solve_exact_mpp(&inst.with_procs(2)).unwrap();
        let c1 = inst.with_procs(1).scaled_cost(&p1.cost);
        let c2 = inst.with_procs(2).scaled_cost(&p2.cost);
        assert_eq!(c1, 4, "classic nodel optimum stores n - R values");
        assert_eq!(c2, 2, "p = 2 stores one value per chain");
    }

    #[test]
    fn exact_trace_certifies_and_respects_budgets() {
        let mut b = DagBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(1, 4);
        b.add_edge(3, 4);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::base()).with_procs(2);
        let rep = solve_exact_mpp(&inst).unwrap();
        let sim = engine::simulate(&inst, &rep.trace).unwrap();
        assert_eq!(sim.cost, rep.cost);
        let cert = rbp_core::certify(&inst, &rep.trace).unwrap();
        assert_eq!(cert.scaled_cost, inst.scaled_cost(&rep.cost));
    }

    #[test]
    fn weights_steer_the_exact_optimum() {
        // compcost chain with compute weight far above communication:
        // the solver must still compute each node once (no recompute
        // tricks exist on a chain), but the scaled objective reflects
        // the weights exactly
        let inst = Instance::new(generate::chain(3), 2, CostModel::base()).with_mpp(MppDim {
            p: 2,
            comm: Ratio::new(5, 1),
            comp: Ratio::new(1, 1),
        });
        let rep = solve_exact_mpp(&inst).unwrap();
        // chain fits in one processor's 2 slots with deletion: no
        // transfers, 3 computes at weight 1
        assert_eq!(inst.scaled_cost(&rep.cost), 3);
        assert_eq!(rep.cost.transfers, 0);
    }

    #[test]
    fn greedy_dominated_by_exact_and_valid_everywhere() {
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            let dag = generate::gnp_dag(5, 0.4, 2, &mut rng);
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag, r, CostModel::of_kind(kind)).with_procs(2);
            let greedy = solve_greedy_mpp(&inst).unwrap();
            let exact = solve_exact_mpp(&inst).unwrap();
            assert!(
                inst.scaled_cost(&exact.cost) <= inst.scaled_cost(&greedy.cost),
                "greedy beat exact under {kind}"
            );
            // the greedy trace is valid under conventions too
            let conv = Instance::new(generate::chain(4), 2, CostModel::of_kind(kind))
                .with_source_convention(SourceConvention::InitiallyBlue)
                .with_sink_convention(SinkConvention::RequireBlue)
                .with_procs(2);
            let rep = solve_greedy_mpp(&conv).unwrap();
            assert!(engine::simulate(&conv, &rep.trace).is_ok(), "{kind}");
        }
    }

    #[test]
    fn greedy_spreads_work_across_processors() {
        // two independent 2-chains: the load-balancing tiebreak must
        // put one on each processor — under unit compute weight, or the
        // accumulated work stays zero and everything ties to processor 0
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::base()).with_mpp(MppDim {
            p: 2,
            comm: Ratio::new(1, 1),
            comp: Ratio::new(1, 1),
        });
        let rep = solve_greedy_mpp(&inst).unwrap();
        let sim = mpp::simulate_mpp(&inst, &rep.trace).unwrap();
        assert!(
            sim.per_proc.iter().all(|c| c.computes == 2),
            "work not spread: {:?}",
            sim.per_proc
        );
        assert_eq!(sim.cost.transfers, 0, "independent chains need no traffic");
    }

    #[test]
    fn solver_adapters_report_procs_and_makespan() {
        let inst = Instance::new(generate::chain(4), 2, CostModel::base());
        let sol = ExactMppSolver::with_procs(2).solve_default(&inst).unwrap();
        assert!(sol.is_optimal());
        assert_eq!(sol.stats.get("procs"), Some(2));
        assert!(sol.stats.get("mpp_time_scaled").is_some());
        let sol = GreedyMppSolver::with_procs(2).solve_default(&inst).unwrap();
        assert_eq!(sol.stats.get("procs"), Some(2));
    }

    #[test]
    fn mpp1_solution_on_classic_instance_is_untagged() {
        // exact@mpp:1 produces a classic single-processor schedule —
        // its trace must not claim processor tags
        let inst = Instance::new(generate::chain(4), 2, CostModel::oneshot());
        let sol = ExactMppSolver::with_procs(1).solve_default(&inst).unwrap();
        assert!(!sol.trace.has_proc_tags());
        assert!(sol.is_optimal());
    }

    #[test]
    fn makespan_statistic_reflects_the_tradeoff() {
        // the two-2-chain join from the core trade-off test: greedy on
        // p = 2 with unit weights must beat the serial makespan
        let mut b = DagBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(1, 4);
        b.add_edge(3, 4);
        let dag = b.build().unwrap();
        let weights = |p| MppDim {
            p,
            comm: Ratio::new(1, 1),
            comp: Ratio::new(1, 1),
        };
        let base = Instance::new(dag, 3, CostModel::base());
        let serial = GreedyMppSolver::new()
            .solve_default(&base.with_mpp(weights(1)))
            .unwrap();
        let par = GreedyMppSolver::new()
            .solve_default(&base.with_mpp(weights(2)))
            .unwrap();
        let t1 = serial.stats.get("mpp_time_scaled").unwrap();
        let t2 = par.stats.get("mpp_time_scaled").unwrap();
        assert!(t2 < t1, "parallel makespan {t2} must beat serial {t1}");
        assert!(
            par.cost.transfers > serial.cost.transfers,
            "communication must rise with p"
        );
    }
}

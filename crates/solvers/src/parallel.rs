//! Hash-sharded parallel exact search (HDA*) with incumbent-bound
//! pruning.
//!
//! The state space of [`crate::exact`] is partitioned across worker
//! threads by [`StateArena::shard_of`] — the same `hash_words` digest the
//! intern tables probe with — so every configuration has exactly one
//! *owner* thread. Each worker owns a full shard of the solver state
//! (a [`StateArena`], a [`NodeTable`], and a local A* priority queue) and
//! runs the shared move generator ([`Expander`]); successors that hash to
//! another shard are batched and routed to their owner over bounded
//! channels. No lock is ever taken on the hot path: a state is interned,
//! relaxed, settled, and re-opened only by its owner.
//!
//! ## Incumbent bound
//! Before the search starts, a greedy portfolio
//! ([`crate::portfolio::solve_portfolio`]) produces a valid pebbling
//! whose scaled cost seeds the *incumbent* — the best known upper bound
//! on the optimum. During the search the incumbent tightens to the
//! cheapest goal configuration discovered so far (a lock-protected
//! `(cost, global id)` pair with an atomic mirror for hot-path reads).
//! Every worker drops successors with `g + h` at-or-beyond the incumbent
//! before interning them, which keeps the shards small and — crucially —
//! gives the distributed search a sound finish line.
//!
//! ## Termination
//! The search is over exactly when no worker can still improve on the
//! incumbent: every local queue has `f`-min at-or-above it and no
//! successor batch is in flight. Quiescence is detected without a
//! coordinator: workers that run out of eligible states park on their
//! channel and advertise themselves in a shared idle counter; matching
//! `sent`/`received` batch counters cover the channels. A worker that
//! observes "all idle, all batches received" twice, with stable
//! counters, declares termination — the double read rules out the race
//! where a just-delivered batch is still being absorbed (its absorption
//! either re-busies a worker or bumps the counters, failing the second
//! read). The incumbent then *is* the optimum: any cheaper goal would
//! need an open state with `f` below it somewhere, and there is none.
//!
//! ## Id namespacing
//! Parent pointers must cross shards for trace reconstruction, so
//! per-shard dense ids are composed into a global namespace
//! ([`global_id`]: `local · shards + shard`). After the workers join,
//! [`split_id`] walks the goal's parent chain across the collected
//! shards exactly like the sequential solver walks its single table.
//!
//! ## When it wins
//! Sharding pays off when the per-state work (expansion, interning,
//! heap traffic) dominates the routing overhead — i.e. on searches that
//! are large because the frontier is wide (the base model's grid and
//! pyramid cells, matmul at tight R). On instances that solve in
//! microseconds, or on a single-core host, the sequential path is
//! faster; `threads == 1` therefore runs the plain solver (still seeded
//! with the greedy incumbent) with no channels or extra threads at all.

use crate::api::{Progress, SolveCtx};
use crate::arena::{global_id, split_id, NodeTable, StateArena, NO_STATE};
use crate::error::SolveError;
use crate::exact::{solve_exact_budgeted, ExactConfig, ExactReport};
use crate::expand::{Expander, Meta};
use crate::greedy::GreedyReport;
use crate::portfolio::{default_portfolio, solve_portfolio};
use rbp_core::{bounds, Cost, Instance, Move, Pebbling};
use rbp_graph::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Successors routed to another shard are accumulated up to this many
/// per destination before the batch is shipped.
const BATCH_ITEMS: usize = 32;
/// Bounded channel capacity, in batches, per worker.
const CHANNEL_BATCHES: usize = 256;
/// States popped per scheduling quantum before a worker re-checks its
/// channel and flushes its outgoing batches.
const POP_CHUNK: usize = 64;

/// Configuration for [`solve_exact_parallel_with`].
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Worker-thread count (≥ 1). The default resolves
    /// `available_parallelism` at construction; an explicit `0` is a
    /// [`SolveError::BadConfig`], not a silent fallback.
    pub threads: usize,
    /// The shared search knobs ([`ExactConfig`]); `max_states` bounds the
    /// *total* interned states across all shards, and `upper_bound`
    /// seeds the incumbent in addition to (and combined with) the greedy
    /// seed below.
    pub exact: ExactConfig,
    /// Seed the incumbent from a greedy-portfolio upper bound before
    /// searching (ignored when `exact.prune` is off, mirroring the
    /// sequential solver's brute-force reference mode).
    pub seed_incumbent: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            exact: ExactConfig::default(),
            seed_incumbent: true,
        }
    }
}

impl ParallelConfig {
    /// Rejects degenerate values ([`SolveError::BadConfig`]). Run by
    /// every [`crate::api::Solver`] entry point before solving.
    pub fn validate(&self) -> Result<(), SolveError> {
        if self.threads == 0 {
            return Err(SolveError::BadConfig {
                reason: "ParallelConfig::threads must be >= 1 (the default resolves \
                         available_parallelism; an explicit 0 is rejected rather than silently \
                         remapped)"
                    .into(),
            });
        }
        self.exact.validate()
    }
}

/// Solves the instance exactly on all available cores. Returns the same
/// optimal scaled cost as [`crate::exact::solve_exact`] (traces may
/// differ; both replay through the engine).
pub fn solve_exact_parallel(instance: &Instance) -> Result<ExactReport, SolveError> {
    solve_exact_parallel_with(instance, ParallelConfig::default())
}

/// Solves the instance exactly with the given parallel configuration.
pub fn solve_exact_parallel_with(
    instance: &Instance,
    cfg: ParallelConfig,
) -> Result<ExactReport, SolveError> {
    cfg.validate()?;
    bounds::check_feasible(instance)?;
    let mut exact = cfg.exact;
    if cfg.seed_incumbent && exact.prune {
        if let Some((ub, _)) = greedy_incumbent(instance) {
            exact.upper_bound = Some(exact.upper_bound.map_or(ub, |b| b.min(ub)));
        }
    }
    // an unlimited context never interrupts, so the outcome is optimal
    let ctx = SolveCtx::default();
    if cfg.threads == 1 {
        // the sharded machinery only pays for itself with real
        // parallelism; one thread runs the sequential solver, still
        // seeded with the incumbent bound
        return solve_exact_budgeted(instance, exact, &ctx).map(|(report, _)| report);
    }
    hda_star(instance, exact, cfg.threads, &ctx).map(|(report, _)| report)
}

/// Budget-aware entry point used by the [`crate::api`] layer; seeding is
/// the api layer's job (it keeps the greedy trace as the degradation
/// fallback). Semantics mirror
/// [`solve_exact_budgeted`](crate::exact::solve_exact_budgeted).
pub(crate) fn solve_parallel_budgeted(
    instance: &Instance,
    exact: ExactConfig,
    threads: usize,
    ctx: &SolveCtx,
) -> Result<(ExactReport, bool), SolveError> {
    exact.validate()?;
    bounds::check_feasible(instance)?;
    if threads == 1 {
        return solve_exact_budgeted(instance, exact, ctx);
    }
    hda_star(instance, exact, threads, ctx)
}

/// Best-of-greedy incumbent — the scaled upper bound plus the report
/// realizing it — used to seed the exact searches and as the fallback a
/// budget-expired solve degrades to. `None` when every greedy
/// configuration fails (the search then starts unbounded).
///
/// Cost-staged: the single default greedy runs first, and the full
/// portfolio only when that bound could still improve — i.e. when it
/// sits above the model's provable floor
/// ([`bounds::best_lower_bound`]). On instances whose default greedy
/// is already optimal (chains, most zero-cost cells) seeding costs one
/// microsecond-scale greedy solve instead of nine, which keeps the
/// seeded sequential path competitive even on solves that finish in
/// tens of microseconds.
pub(crate) fn greedy_incumbent(instance: &Instance) -> Option<(u64, GreedyReport)> {
    let eps = instance.model().epsilon();
    let clamp = |scaled: u128| u64::try_from(scaled).unwrap_or(u64::MAX);
    let floor = bounds::best_lower_bound(instance).scaled(eps);
    let first = crate::greedy::solve_greedy(instance).ok();
    if let Some(rep) = &first {
        if rep.cost.scaled(eps) <= floor {
            let scaled = clamp(rep.cost.scaled(eps));
            return first.map(|r| (scaled, r));
        }
    }
    // escalation re-runs the other eight configurations only — the
    // default one already produced `first`
    let rest: Vec<_> = default_portfolio()
        .into_iter()
        .filter(|c| *c != crate::greedy::GreedyConfig::default())
        .collect();
    let best = if rest.is_empty() {
        None
    } else {
        solve_portfolio(instance, &rest).ok().map(|(_, rep)| rep)
    };
    match (first, best) {
        (Some(a), Some(b)) => {
            let winner = if a.cost.scaled(eps) <= b.cost.scaled(eps) {
                a
            } else {
                b
            };
            Some((clamp(winner.cost.scaled(eps)), winner))
        }
        (Some(a), None) => Some((clamp(a.cost.scaled(eps)), a)),
        (None, Some(b)) => Some((clamp(b.cost.scaled(eps)), b)),
        (None, None) => None,
    }
}

// ---------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------

/// One routed successor: the key travels in the batch's flat `keys`
/// buffer, everything else here.
struct Item {
    g: u64,
    from: u32, // global id of the parent state
    mv: Move,
    meta: Meta,
}

/// A shipment of successors bound for one shard.
struct Batch {
    keys: Vec<u64>, // item i's key at [i·key_words .. (i+1)·key_words]
    items: Vec<Item>,
}

impl Batch {
    fn new() -> Self {
        Batch {
            keys: Vec::new(),
            items: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// State shared across workers. All counters are `SeqCst`: they are off
/// the per-successor hot path (batched), and the termination argument
/// leans on a total order of the idle/sent/recv updates.
struct Shared {
    threads: usize,
    /// `(scaled cost, global id)` of the best goal configuration found.
    incumbent: Mutex<(u64, u32)>,
    /// Atomic mirror of the incumbent cost for hot-path cutoff reads.
    incumbent_g: AtomicU64,
    /// Static cutoff from the seeded upper bound
    /// ([`ExactConfig::seed_cutoff`]: `bound + 1`, so an exactly-tight
    /// seed keeps its optimal path; `u64::MAX` when unseeded or
    /// pruning is off).
    ub_cutoff: u64,
    /// Whether incumbent pruning is live. When off (the brute-force
    /// reference mode) the search stays exhaustive like
    /// [`crate::exact::solve_reference`]: goals are still *recorded* for
    /// the answer, but never prune.
    prune: bool,
    /// Batches sent / received, for quiescence detection.
    sent: AtomicU64,
    recv: AtomicU64,
    /// Number of workers currently parked with nothing eligible to do.
    idle: AtomicUsize,
    /// Set once by the worker that detects global quiescence.
    done: AtomicBool,
    /// Set when the [`crate::api::Budget`] trips: workers exit at their
    /// next quantum and the incumbent (if any) is returned as a
    /// non-optimal upper bound.
    stopped: AtomicBool,
    /// Set on any error; the first error wins.
    abort: AtomicBool,
    abort_err: Mutex<Option<SolveError>>,
    /// Total states interned across all shards (memory guard).
    states_total: AtomicUsize,
    max_states: usize,
    /// Total states expanded across all shards (budget accounting +
    /// progress reports), updated once per worker quantum.
    expanded_total: AtomicU64,
}

impl Shared {
    /// Successors with `f ≥ cutoff` can be dropped: they cannot beat the
    /// incumbent. Relaxed is enough — the incumbent only decreases, so a
    /// stale read merely prunes less. With pruning off this is always
    /// `u64::MAX` (exhaustive reference mode; termination then comes
    /// from exhausting the finite state space, not from the incumbent).
    #[inline]
    fn cutoff(&self) -> u64 {
        if !self.prune {
            return u64::MAX;
        }
        self.ub_cutoff.min(self.incumbent_g.load(Ordering::Relaxed))
    }

    fn offer_incumbent(&self, g: u64, id: u32) {
        if g >= self.incumbent_g.load(Ordering::Relaxed) {
            return;
        }
        let mut best = self.incumbent.lock().expect("incumbent lock");
        if g < best.0 {
            *best = (g, id);
            self.incumbent_g.store(g, Ordering::SeqCst);
        }
    }

    fn record_error(&self, e: SolveError) {
        let mut slot = self.abort_err.lock().expect("abort lock");
        if slot.is_none() {
            *slot = Some(e);
        }
        self.abort.store(true, Ordering::SeqCst);
    }
}

struct Worker<'a, 's> {
    me: usize,
    shards: usize,
    key_words: usize,
    shared: &'s Shared,
    arena: StateArena,
    nodes: NodeTable,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    out: Vec<Batch>,
    txs: Vec<SyncSender<Batch>>,
    rx: Receiver<Batch>,
    /// Debug-only rescanner for the ±delta metadata of fresh interns.
    #[cfg(debug_assertions)]
    check: Expander<'a>,
    #[cfg(not(debug_assertions))]
    _marker: std::marker::PhantomData<&'a ()>,
    popped: usize,
    idle_flag: bool,
    key_buf: Vec<u64>,
    ctx: &'s SolveCtx<'s>,
    t0: Instant,
    last_progress: Instant,
}

impl<'a, 's> Worker<'a, 's> {
    /// Interns/relaxes `key` in this worker's shard. Only ever called by
    /// the owner (`shard_of(key) == me`).
    fn relax_local(
        &mut self,
        key: &[u64],
        g: u64,
        from: u32,
        mv: Move,
        meta: Meta,
    ) -> Result<(), SolveError> {
        debug_assert_eq!(StateArena::shard_of(key, self.shards), self.me);
        // pre-intern cutoff, mirroring the sequential solver: the
        // incumbent may have tightened while this state sat in a channel
        // batch, and a prunable state must not consume arena memory or
        // the max_states budget. Safe for goals too (their f = g, and an
        // optimal goal always sits strictly below the cutoff) and for
        // the root (its f is at most any valid seed bound).
        if g.saturating_add(meta.heur) >= self.shared.cutoff() {
            return Ok(());
        }
        let (local, fresh) = self.arena.intern(key);
        if fresh {
            #[cfg(debug_assertions)]
            debug_assert_eq!(meta, self.check.meta_scan(key));
            self.nodes.push(meta.red, meta.unsat, meta.heur);
            let total = self.shared.states_total.fetch_add(1, Ordering::Relaxed) + 1;
            if total > self.shared.max_states {
                return Err(SolveError::StateLimitExceeded {
                    limit: self.shared.max_states,
                });
            }
        }
        let idx = local as usize;
        if g < self.nodes.dist[idx] {
            self.nodes.dist[idx] = g;
            self.nodes.parent[idx] = (from, mv);
            let gid = global_id(self.me as u32, local, self.shards as u32);
            if meta.is_goal() {
                // goals are recorded, never expanded (their heuristic is
                // 0, so f = g and nothing below them is reachable)
                self.shared.offer_incumbent(g, gid);
            } else {
                let f = g.saturating_add(meta.heur);
                if f < self.shared.cutoff() {
                    // re-open on improvement: HDA* may settle a state
                    // before its best g has crossed the shard boundary
                    self.nodes.settled[idx] = false;
                    self.heap.push(Reverse((f, local)));
                }
            }
        }
        Ok(())
    }

    /// Routes one generated successor: relax locally if this shard owns
    /// it, else append it to the owner's outgoing batch.
    fn route(
        &mut self,
        key: &[u64],
        g: u64,
        from: u32,
        mv: Move,
        meta: Meta,
    ) -> Result<(), SolveError> {
        let f = g.saturating_add(meta.heur);
        if f >= self.shared.cutoff() {
            return Ok(());
        }
        let dest = StateArena::shard_of(key, self.shards);
        if dest == self.me {
            return self.relax_local(key, g, from, mv, meta);
        }
        let batch = &mut self.out[dest];
        batch.keys.extend_from_slice(key);
        batch.items.push(Item { g, from, mv, meta });
        if batch.items.len() >= BATCH_ITEMS {
            self.flush_one(dest)?;
        }
        Ok(())
    }

    /// Ships `out[dest]` if non-empty. Returns whether the buffer is now
    /// empty (a full channel leaves it in place; callers retry after
    /// draining their own channel, which is what makes bounded channels
    /// deadlock-free here).
    fn flush_one(&mut self, dest: usize) -> Result<bool, SolveError> {
        if self.out[dest].is_empty() {
            return Ok(true);
        }
        let batch = std::mem::replace(&mut self.out[dest], Batch::new());
        match self.txs[dest].try_send(batch) {
            Ok(()) => {
                self.shared.sent.fetch_add(1, Ordering::SeqCst);
                Ok(true)
            }
            Err(TrySendError::Full(batch)) => {
                self.out[dest] = batch;
                // make progress on our own queue so the peer (possibly
                // blocked on a channel to us) can drain
                self.drain_incoming()?;
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => {
                // the peer exited: only happens on abort/done, where
                // in-flight work is moot
                Ok(true)
            }
        }
    }

    fn flush_outgoing(&mut self) -> Result<bool, SolveError> {
        let mut all = true;
        for dest in 0..self.shards {
            if dest != self.me {
                all &= self.flush_one(dest)?;
            }
        }
        Ok(all)
    }

    /// Absorbs every batch currently in the channel. Returns whether
    /// anything arrived.
    fn drain_incoming(&mut self) -> Result<bool, SolveError> {
        let mut got = false;
        while let Ok(batch) = self.rx.try_recv() {
            self.absorb(batch)?;
            got = true;
        }
        Ok(got)
    }

    /// Processes one received batch. The un-idle → recv-count order is
    /// what the termination double-check relies on.
    fn absorb(&mut self, batch: Batch) -> Result<(), SolveError> {
        if self.idle_flag {
            self.idle_flag = false;
            self.shared.idle.fetch_sub(1, Ordering::SeqCst);
        }
        self.shared.recv.fetch_add(1, Ordering::SeqCst);
        for (i, item) in batch.items.iter().enumerate() {
            let key = &batch.keys[i * self.key_words..(i + 1) * self.key_words];
            self.relax_local(key, item.g, item.from, item.mv, item.meta)?;
        }
        Ok(())
    }

    /// Pops and expands up to [`POP_CHUNK`] eligible states. Returns
    /// whether any state was actually expanded.
    fn expand_some(&mut self, exp: &mut Expander<'a>) -> Result<bool, SolveError> {
        let mut any = false;
        let popped_before = self.popped;
        for _ in 0..POP_CHUNK {
            let cutoff = self.shared.cutoff();
            match self.heap.peek() {
                None => break,
                Some(&Reverse((f, _))) if f >= cutoff => {
                    // the cutoff never grows, so everything still queued
                    // is dead weight
                    self.heap.clear();
                    break;
                }
                Some(_) => {}
            }
            let Reverse((_f, local)) = self.heap.pop().expect("peeked entry");
            // every pop is progress, stale or not: a quantum of stale
            // entries (duplicate pushes whose state settled meanwhile)
            // must NOT read as "nothing to do" — eligible work may sit
            // right behind them, and a worker may only go idle once the
            // heap is truly exhausted below the cutoff (the termination
            // check is sound only under that invariant)
            any = true;
            let idx = local as usize;
            if self.nodes.settled[idx] {
                continue;
            }
            debug_assert!(!self.idle_flag, "expansion while advertised idle");
            self.nodes.settled[idx] = true;
            self.popped += 1;
            self.expand_one(exp, local)?;
            if self.shared.abort.load(Ordering::Relaxed) {
                break;
            }
        }
        let delta = (self.popped - popped_before) as u64;
        if delta > 0 {
            self.shared
                .expanded_total
                .fetch_add(delta, Ordering::Relaxed);
        }
        Ok(any)
    }

    /// Per-quantum budget poll + progress report. Returns `true` when
    /// the budget tripped (the caller then stops the whole search —
    /// "within one batch quantum" is exactly this granularity).
    fn poll_budget_and_progress(&mut self) -> bool {
        let budget = &self.ctx.budget;
        if !budget.is_unlimited()
            && budget.exhausted(self.shared.expanded_total.load(Ordering::Relaxed))
        {
            self.shared.stopped.store(true, Ordering::SeqCst);
            return true;
        }
        if let Some(observer) = self.ctx.progress {
            // one reporter (shard 0), rate-limited by wall clock
            if self.me == 0 && self.last_progress.elapsed() >= Duration::from_millis(50) {
                self.last_progress = Instant::now();
                let elapsed = self.t0.elapsed();
                let expanded = self.shared.expanded_total.load(Ordering::Relaxed);
                let secs = elapsed.as_secs_f64();
                let incumbent = match self.shared.incumbent_g.load(Ordering::Relaxed) {
                    u64::MAX => match self.shared.ub_cutoff {
                        u64::MAX => None,
                        c => Some(c - 1), // cutoff is seed bound + 1
                    },
                    g => Some(g),
                };
                observer(&Progress {
                    elapsed,
                    states_expanded: expanded,
                    states_per_sec: if secs > 0.0 {
                        (expanded as f64 / secs) as u64
                    } else {
                        0
                    },
                    frontier: self.heap.len(),
                    incumbent,
                });
            }
        }
        false
    }

    fn expand_one(&mut self, exp: &mut Expander<'a>, local: u32) -> Result<(), SolveError> {
        let idx = local as usize;
        self.key_buf.clear();
        self.key_buf.extend_from_slice(self.arena.key(local));
        let key_buf = std::mem::take(&mut self.key_buf);
        let d = self.nodes.dist[idx];
        let meta = Meta {
            red: self.nodes.red_count[idx],
            unsat: self.nodes.unsat_sinks[idx],
            heur: self.nodes.heur[idx],
        };
        debug_assert!(!meta.is_goal(), "goals are never queued for expansion");
        let res = if exp.prune() && exp.oneshot() && exp.is_dead(&key_buf) {
            Ok(())
        } else {
            let from = global_id(self.me as u32, local, self.shards as u32);
            exp.expand(&key_buf, meta, |succ, mv, cost, child| {
                self.route(succ, d + cost, from, mv, child)
            })
        };
        self.key_buf = key_buf;
        res
    }

    fn set_idle(&mut self) {
        if !self.idle_flag {
            self.idle_flag = true;
            self.shared.idle.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// The quiescence double-check (see the module docs): all workers
    /// idle and all batches received, observed twice with stable
    /// counters, the second idle read ordered after the first counter
    /// reads.
    fn check_termination(&self) -> bool {
        let t = self.shared.threads;
        if self.shared.idle.load(Ordering::SeqCst) != t {
            return false;
        }
        let s1 = self.shared.sent.load(Ordering::SeqCst);
        let r1 = self.shared.recv.load(Ordering::SeqCst);
        if s1 != r1 {
            return false;
        }
        self.shared.idle.load(Ordering::SeqCst) == t
            && self.shared.sent.load(Ordering::SeqCst) == s1
            && self.shared.recv.load(Ordering::SeqCst) == r1
    }

    fn run(&mut self, exp: &mut Expander<'a>) -> Result<(), SolveError> {
        loop {
            if self.shared.abort.load(Ordering::Relaxed)
                || self.shared.done.load(Ordering::SeqCst)
                || self.shared.stopped.load(Ordering::SeqCst)
            {
                return Ok(());
            }
            if self.poll_budget_and_progress() {
                return Ok(());
            }
            let received = self.drain_incoming()?;
            let worked = self.expand_some(exp)?;
            if received || worked {
                // still busy: full batches ship inline from `route`;
                // partial ones wait until local work runs dry, so peers
                // get few, dense messages instead of a wakeup per quantum
                continue;
            }
            if !self.flush_outgoing()? {
                // a peer's channel is full; keep cycling (drain + retry)
                std::thread::yield_now();
                continue;
            }
            // nothing eligible locally and nothing outbound: advertise
            // idle, try to close the search, else park on the channel
            self.set_idle();
            if self.check_termination() {
                self.shared.done.store(true, Ordering::SeqCst);
                return Ok(());
            }
            // park; on timeout (or closing peers) just re-check flags
            if let Ok(batch) = self.rx.recv_timeout(Duration::from_micros(100)) {
                self.absorb(batch)?;
            }
        }
    }
}

/// The sharded search proper (`threads ≥ 2`). The `bool` is `true` when
/// the returned report is proved optimal, `false` when the budget
/// stopped the search and the report is the incumbent found so far.
fn hda_star(
    instance: &Instance,
    exact: ExactConfig,
    threads: usize,
    ctx: &SolveCtx,
) -> Result<(ExactReport, bool), SolveError> {
    let probe = Expander::new(instance, exact.prune, exact.astar);
    let key_words = probe.key_words();
    let init = probe.initial_key();
    let root_meta = probe.meta_scan(&init);
    let root_shard = StateArena::shard_of(&init, threads);

    let shared = Shared {
        threads,
        incumbent: Mutex::new((u64::MAX, NO_STATE)),
        incumbent_g: AtomicU64::new(u64::MAX),
        ub_cutoff: exact.seed_cutoff(),
        prune: exact.prune,
        sent: AtomicU64::new(0),
        recv: AtomicU64::new(0),
        idle: AtomicUsize::new(0),
        done: AtomicBool::new(false),
        stopped: AtomicBool::new(false),
        abort: AtomicBool::new(false),
        abort_err: Mutex::new(None),
        states_total: AtomicUsize::new(0),
        max_states: exact.max_states,
        expanded_total: AtomicU64::new(0),
    };
    let t0 = Instant::now();

    let mut txs: Vec<SyncSender<Batch>> = Vec::with_capacity(threads);
    let mut rxs: Vec<Option<Receiver<Batch>>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = std::sync::mpsc::sync_channel(CHANNEL_BATCHES);
        txs.push(tx);
        rxs.push(Some(rx));
    }

    let shards: Vec<(StateArena, NodeTable, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = rxs
            .iter_mut()
            .enumerate()
            .map(|(me, rx_slot)| {
                let rx = rx_slot.take().expect("receiver unclaimed");
                let txs = txs.clone();
                let shared = &shared;
                let init = &init;
                scope.spawn(move || {
                    let mut exp = Expander::new(instance, exact.prune, exact.astar);
                    let mut w = Worker {
                        me,
                        shards: threads,
                        key_words,
                        shared,
                        arena: StateArena::new(key_words),
                        nodes: NodeTable::new(),
                        heap: BinaryHeap::new(),
                        out: (0..threads).map(|_| Batch::new()).collect(),
                        txs,
                        rx,
                        #[cfg(debug_assertions)]
                        check: Expander::new(instance, exact.prune, exact.astar),
                        #[cfg(not(debug_assertions))]
                        _marker: std::marker::PhantomData,
                        popped: 0,
                        idle_flag: false,
                        key_buf: Vec::with_capacity(key_words),
                        ctx,
                        t0,
                        last_progress: t0,
                    };
                    if me == root_shard {
                        if let Err(e) = w.relax_local(
                            init,
                            0,
                            NO_STATE,
                            Move::Delete(NodeId::new(0)),
                            root_meta,
                        ) {
                            shared.record_error(e);
                        }
                    }
                    if let Err(e) = w.run(&mut exp) {
                        shared.record_error(e);
                    }
                    (w.arena, w.nodes, w.popped)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    if let Some(e) = shared.abort_err.lock().expect("abort lock").take() {
        return Err(e);
    }
    let stopped = shared.stopped.load(Ordering::SeqCst);
    let (best_g, best_id) = *shared.incumbent.lock().expect("incumbent lock");
    if best_id == NO_STATE {
        // a budget stop with no goal discovered yet has no incumbent to
        // return; the api layer degrades to its greedy seed
        return Err(if stopped {
            SolveError::Interrupted
        } else {
            SolveError::NoPebblingFound
        });
    }

    // walk the goal's parent chain across the collected shards
    let mut moves = Vec::new();
    let mut cur = best_id;
    loop {
        let (shard, local) = split_id(cur, threads as u32);
        let (prev, mv) = shards[shard as usize].1.parent[local as usize];
        if prev == NO_STATE {
            break;
        }
        moves.push(mv);
        cur = prev;
    }
    moves.reverse();
    let trace = Pebbling::from_moves(moves);
    let stats = trace.stats();
    let cost = Cost {
        transfers: stats.transfers(),
        computes: stats.computes,
    };
    debug_assert_eq!(cost.scaled(instance.model().epsilon()), best_g as u128);
    Ok((
        ExactReport {
            cost,
            trace,
            states_expanded: shards.iter().map(|s| s.2).sum(),
            states_seen: shards.iter().map(|s| s.0.len()).sum(),
        },
        !stopped,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use rbp_core::{engine, CostModel, ModelKind};
    use rbp_graph::{generate, DagBuilder};

    fn assert_equiv(inst: &Instance, threads: usize) {
        let seq = solve_exact(inst).unwrap();
        let par = solve_exact_parallel_with(
            inst,
            ParallelConfig {
                threads,
                ..ParallelConfig::default()
            },
        )
        .unwrap();
        let eps = inst.model().epsilon();
        assert_eq!(
            par.cost.scaled(eps),
            seq.cost.scaled(eps),
            "optimum diverged at {threads} threads on {inst:?}"
        );
        let sim = engine::simulate(inst, &par.trace).unwrap();
        assert_eq!(sim.cost, par.cost, "parallel trace must replay exactly");
        assert!(sim.peak_red <= inst.red_limit());
    }

    #[test]
    fn matches_sequential_across_models_and_threads() {
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            for _ in 0..3 {
                let dag = generate::gnp_dag(7, 0.35, 2, &mut rng);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind));
                for threads in [2, 3, 4] {
                    assert_equiv(&inst, threads);
                }
            }
        }
    }

    #[test]
    fn matches_sequential_under_conventions() {
        let mut rng = rand::thread_rng();
        for _ in 0..3 {
            let dag = generate::layered(3, 3, 2, &mut rng);
            let inst = Instance::new(dag.clone(), 3, CostModel::oneshot())
                .with_sink_convention(rbp_core::SinkConvention::RequireBlue);
            assert_equiv(&inst, 3);
            let inst = Instance::new(dag, 3, CostModel::oneshot())
                .with_source_convention(rbp_core::SourceConvention::InitiallyBlue);
            assert_equiv(&inst, 2);
        }
    }

    #[test]
    fn single_thread_takes_the_sequential_path() {
        let inst = Instance::new(generate::chain(8), 2, CostModel::oneshot());
        let rep = solve_exact_parallel_with(
            &inst,
            ParallelConfig {
                threads: 1,
                ..ParallelConfig::default()
            },
        )
        .unwrap();
        assert_eq!(rep.cost.transfers, 0);
    }

    #[test]
    fn default_config_resolves_host_parallelism() {
        let inst = Instance::new(generate::chain(6), 2, CostModel::base());
        assert!(ParallelConfig::default().threads >= 1);
        let rep = solve_exact_parallel(&inst).unwrap();
        assert_eq!(rep.cost.scaled(inst.model().epsilon()), 0);
    }

    #[test]
    fn zero_threads_is_a_structured_config_error() {
        let inst = Instance::new(generate::chain(6), 2, CostModel::base());
        let res = solve_exact_parallel_with(
            &inst,
            ParallelConfig {
                threads: 0,
                ..ParallelConfig::default()
            },
        );
        assert!(matches!(res, Err(SolveError::BadConfig { .. })));
    }

    #[test]
    fn positive_cost_instance_agrees() {
        // height-3 binary in-tree at R=3: forced spills under base
        let mut b = DagBuilder::new(15);
        for parent in 0..7 {
            b.add_edge(2 * parent + 1, parent);
            b.add_edge(2 * parent + 2, parent);
        }
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::base());
        for threads in [2, 4] {
            assert_equiv(&inst, threads);
        }
    }

    #[test]
    fn infeasible_instances_error_like_sequential() {
        let inst = Instance::new(generate::chain(3), 1, CostModel::oneshot());
        assert!(matches!(
            solve_exact_parallel_with(
                &inst,
                ParallelConfig {
                    threads: 2,
                    ..ParallelConfig::default()
                }
            ),
            Err(SolveError::Pebbling(_))
        ));
    }

    #[test]
    fn state_limit_propagates_from_workers() {
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 3, &mut rng);
        let inst = Instance::new(dag, 5, CostModel::oneshot());
        let res = solve_exact_parallel_with(
            &inst,
            ParallelConfig {
                threads: 2,
                exact: ExactConfig {
                    max_states: 10,
                    ..ExactConfig::default()
                },
                // a greedy seed could legitimately shrink the search
                // below the limit; keep the test deterministic
                seed_incumbent: false,
            },
        );
        assert_eq!(
            res.unwrap_err(),
            SolveError::StateLimitExceeded { limit: 10 }
        );
    }

    #[test]
    fn unpruned_parallel_matches_reference() {
        // prune=false disables the incumbent cutoffs; the sharded search
        // must still terminate by exhaustion and agree with the
        // brute-force reference
        let mut b = DagBuilder::new(5);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        b.add_edge(2, 4);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        let reference = crate::exact::solve_reference(&inst).unwrap();
        let par = solve_exact_parallel_with(
            &inst,
            ParallelConfig {
                threads: 3,
                exact: ExactConfig {
                    prune: false,
                    astar: false,
                    ..ExactConfig::default()
                },
                seed_incumbent: false,
            },
        )
        .unwrap();
        let eps = inst.model().epsilon();
        assert_eq!(par.cost.scaled(eps), reference.cost.scaled(eps));
    }
}

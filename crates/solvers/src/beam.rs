//! Beam search over first-computation orderings.
//!
//! Section 8 shows single-path greedy rules can be Θ̃(√n) from optimal;
//! the natural upgrade short of exact search is a *beam*: keep the `W`
//! cheapest partial schedules at every computation depth, expanding each
//! by every currently-enabled node. Width 1 with the most-red rule's
//! tie-breaking degenerates to greedy; growing widths trade time for
//! cost and can escape Theorem-4-style traps that fool every fixed rule.
//!
//! The acquisition mechanics per expansion mirror the greedy solver:
//! inputs are loaded (or sources computed on demand), dead values are
//! deleted for free, sinks are stored, live victims are evicted by
//! fewest-remaining-uses.

use crate::api::SolveCtx;
use crate::error::SolveError;
use crate::greedy::GreedyReport;
use crate::hash::FxHashMap;
use rbp_core::{bounds, engine, Instance, Move, Pebbling, SinkConvention, SourceConvention, State};
use rbp_graph::NodeId;

/// Beam-search configuration.
#[derive(Clone, Copy, Debug)]
pub struct BeamConfig {
    /// Number of partial schedules kept per depth (≥ 1).
    pub width: usize,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig { width: 8 }
    }
}

impl BeamConfig {
    /// Rejects degenerate values ([`SolveError::BadConfig`]). Run by
    /// every [`crate::api::Solver`] entry point before solving.
    pub fn validate(&self) -> Result<(), SolveError> {
        if self.width == 0 {
            return Err(SolveError::BadConfig {
                reason: "BeamConfig::width must be >= 1 (a zero-width beam keeps nothing)".into(),
            });
        }
        Ok(())
    }
}

#[derive(Clone)]
struct BeamNode {
    state: State,
    uses: Vec<u32>,
    pending: Vec<u32>,
    computed: Vec<bool>,
    trace: Pebbling,
    order: Vec<NodeId>,
    scaled: u128,
}

/// Runs beam search with the given width. Returns the cheapest complete
/// schedule found (engine-validated).
pub fn solve_beam(instance: &Instance, cfg: BeamConfig) -> Result<GreedyReport, SolveError> {
    solve_beam_budgeted(instance, cfg, &SolveCtx::default())
}

/// Budget-aware beam search used by the [`crate::api`] layer. The budget
/// is polled once per depth (a partial beam holds no valid pebbling, so
/// expiry is [`SolveError::Interrupted`], not a degraded solution);
/// "expansions" counts successor schedules generated.
pub(crate) fn solve_beam_budgeted(
    instance: &Instance,
    cfg: BeamConfig,
    ctx: &SolveCtx,
) -> Result<GreedyReport, SolveError> {
    cfg.validate()?;
    bounds::check_feasible(instance)?;
    let dag = instance.dag();
    let n = dag.n();
    let eps = instance.model().epsilon();
    let initially_blue = instance.source_convention() == SourceConvention::InitiallyBlue;

    let mut computed0 = vec![false; n];
    if initially_blue {
        for v in dag.sources() {
            computed0[v.index()] = true;
        }
    }
    let pending0: Vec<u32> = (0..n)
        .map(|v| {
            dag.preds(NodeId::new(v))
                .iter()
                .filter(|&&u| !dag.is_source(u))
                .count() as u32
        })
        .collect();
    let uses0: Vec<u32> = (0..n)
        .map(|v| dag.outdegree(NodeId::new(v)) as u32)
        .collect();
    // nodes the beam must schedule: non-sources, plus isolated
    // source-sinks handled in a final pass
    let total: usize = (0..n).filter(|&v| !dag.is_source(NodeId::new(v))).count();

    let mut beam = vec![BeamNode {
        state: State::initial(instance),
        uses: uses0,
        pending: pending0,
        computed: computed0,
        trace: Pebbling::new(),
        order: Vec::new(),
        scaled: 0,
    }];

    let budget_live = !ctx.budget.is_unlimited();
    let mut generated = 0u64;
    for _depth in 0..total {
        if budget_live && ctx.budget.exhausted(generated) {
            return Err(SolveError::Interrupted);
        }
        let mut successors: Vec<BeamNode> = Vec::with_capacity(beam.len() * 4);
        let mut seen: FxHashMap<Vec<u64>, u128> = FxHashMap::default();
        for node in &beam {
            for v in 0..n {
                let nv = NodeId::new(v);
                if node.computed[v] || dag.is_source(nv) || node.pending[v] != 0 {
                    continue;
                }
                let mut succ = node.clone();
                generated += 1;
                if expand(instance, &mut succ, nv).is_err() {
                    continue;
                }
                succ.scaled = {
                    let stats = succ.trace.stats();
                    rbp_core::Cost {
                        transfers: stats.transfers(),
                        computes: stats.computes,
                    }
                    .scaled(eps)
                };
                // dedup identical configurations, keep the cheapest
                let key: Vec<u64> = succ
                    .state
                    .red_set()
                    .words()
                    .iter()
                    .chain(succ.state.blue_set().words())
                    .chain(succ.state.computed_set().words())
                    .copied()
                    .collect();
                match seen.get(&key) {
                    Some(&best) if best <= succ.scaled => continue,
                    _ => {
                        seen.insert(key, succ.scaled);
                        successors.push(succ);
                    }
                }
            }
        }
        if successors.is_empty() {
            return Err(SolveError::NoPebblingFound);
        }
        successors.sort_by_key(|s| s.scaled);
        successors.truncate(cfg.width);
        beam = successors;
    }

    let mut best = beam
        .into_iter()
        .min_by_key(|b| b.scaled)
        .expect("beam nonempty");
    // isolated source-sinks still need pebbles
    if !initially_blue {
        for v in dag.nodes() {
            if dag.is_source(v) && dag.is_sink(v) && !best.computed[v.index()] {
                ensure_slot(instance, &mut best.state, &best.uses, &[], &mut best.trace)?;
                apply(instance, &mut best.state, &mut best.trace, Move::Compute(v))?;
                best.order.push(v);
            }
        }
    }
    // under RequireBlue, sinks that finished red must be written out
    if instance.sink_convention() == SinkConvention::RequireBlue {
        for v in dag.nodes() {
            if dag.is_sink(v) && best.state.is_red(v) {
                apply(instance, &mut best.state, &mut best.trace, Move::Store(v))?;
            }
        }
    }
    let report =
        engine::simulate(instance, &best.trace).map_err(|e| SolveError::Pebbling(e.error))?;
    Ok(GreedyReport {
        trace: best.trace,
        cost: report.cost,
        order: best.order,
    })
}

/// Computes `v` on the node's state: acquire inputs, evict as needed,
/// compute, update bookkeeping.
fn expand(instance: &Instance, node: &mut BeamNode, v: NodeId) -> Result<(), SolveError> {
    let dag = instance.dag();
    for &u in dag.preds(v) {
        if node.state.is_red(u) {
            continue;
        }
        ensure_slot(
            instance,
            &mut node.state,
            &node.uses,
            dag.preds(v),
            &mut node.trace,
        )?;
        let mv = if node.state.is_blue(u) {
            Move::Load(u)
        } else {
            Move::Compute(u) // on-demand source
        };
        apply(instance, &mut node.state, &mut node.trace, mv)?;
        if matches!(mv, Move::Compute(_)) {
            node.computed[u.index()] = true;
            node.order.push(u);
        }
    }
    ensure_slot(
        instance,
        &mut node.state,
        &node.uses,
        dag.preds(v),
        &mut node.trace,
    )?;
    apply(instance, &mut node.state, &mut node.trace, Move::Compute(v))?;
    node.computed[v.index()] = true;
    node.order.push(v);
    for &u in dag.preds(v) {
        node.uses[u.index()] -= 1;
    }
    for &w in dag.succs(v) {
        node.pending[w.index()] -= 1;
    }
    Ok(())
}

fn apply(
    instance: &Instance,
    state: &mut State,
    trace: &mut Pebbling,
    mv: Move,
) -> Result<(), SolveError> {
    state.apply(mv, instance).map_err(SolveError::Pebbling)?;
    trace.push(mv);
    Ok(())
}

fn ensure_slot(
    instance: &Instance,
    state: &mut State,
    uses: &[u32],
    pinned: &[NodeId],
    trace: &mut Pebbling,
) -> Result<(), SolveError> {
    let dag = instance.dag();
    while state.red_count() >= instance.red_limit() {
        let is_pinned = |x: usize| pinned.iter().any(|p| p.index() == x);
        let mut dead = None;
        let mut sink = None;
        let mut live: Option<(u32, usize)> = None;
        for x in state.red_set().iter() {
            if is_pinned(x) {
                continue;
            }
            if dag.is_sink(NodeId::new(x)) {
                sink.get_or_insert(x);
            } else if uses[x] == 0 {
                dead.get_or_insert(x);
            } else if live.is_none() || (uses[x], x) < live.unwrap() {
                live = Some((uses[x], x));
            }
        }
        let (victim, free) = if let Some(x) = dead {
            (x, instance.model().allows_delete())
        } else if let Some(x) = sink {
            (x, false)
        } else if let Some((_, x)) = live {
            (x, false)
        } else {
            unreachable!("eviction with everything pinned despite feasibility check")
        };
        let node = NodeId::new(victim);
        let mv = if free {
            Move::Delete(node)
        } else {
            Move::Store(node)
        };
        apply(instance, state, trace, mv)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use crate::greedy::solve_greedy;
    use rbp_core::CostModel;
    use rbp_graph::generate;

    #[test]
    fn beam_produces_valid_traces() {
        let mut rng = rand::thread_rng();
        for _ in 0..5 {
            let dag = generate::layered(4, 4, 3, &mut rng);
            let inst = Instance::new(dag, 5, CostModel::oneshot());
            let rep = solve_beam(&inst, BeamConfig { width: 4 }).unwrap();
            assert!(engine::simulate(&inst, &rep.trace).is_ok());
        }
    }

    #[test]
    fn wider_beam_never_loses_to_width_one() {
        let mut rng = rand::thread_rng();
        for _ in 0..5 {
            let dag = generate::gnp_dag(14, 0.3, 3, &mut rng);
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag, r, CostModel::oneshot());
            let eps = inst.model().epsilon();
            let w1 = solve_beam(&inst, BeamConfig { width: 1 }).unwrap();
            let w8 = solve_beam(&inst, BeamConfig { width: 8 }).unwrap();
            assert!(w8.cost.scaled(eps) <= w1.cost.scaled(eps));
        }
    }

    #[test]
    fn beam_brackets_between_exact_and_greedy() {
        let mut rng = rand::thread_rng();
        for _ in 0..5 {
            let dag = generate::gnp_dag(9, 0.35, 2, &mut rng);
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag, r, CostModel::oneshot());
            let eps = inst.model().epsilon();
            let exact = solve_exact(&inst).unwrap();
            let beam = solve_beam(&inst, BeamConfig { width: 16 }).unwrap();
            let greedy = solve_greedy(&inst).unwrap();
            assert!(exact.cost.scaled(eps) <= beam.cost.scaled(eps));
            // the beam explores a superset of any single greedy path's
            // diversity, but eviction details differ; allow parity
            assert!(beam.cost.scaled(eps) <= greedy.cost.scaled(eps) + 2);
        }
    }

    #[test]
    fn beam_valid_in_all_models() {
        let mut rng = rand::thread_rng();
        let dag = generate::layered(3, 4, 2, &mut rng);
        for kind in rbp_core::ModelKind::ALL {
            let inst = Instance::new(dag.clone(), 4, CostModel::of_kind(kind));
            let rep = solve_beam(&inst, BeamConfig { width: 4 }).unwrap();
            assert!(engine::simulate(&inst, &rep.trace).is_ok(), "{kind}");
        }
    }

    #[test]
    fn beam_infeasible_rejected() {
        let mut b = rbp_graph::DagBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, 3);
        }
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        assert!(matches!(
            solve_beam(&inst, BeamConfig::default()),
            Err(SolveError::Pebbling(_))
        ));
    }

    #[test]
    fn beam_handles_isolated_source_sinks() {
        let dag = rbp_graph::DagBuilder::new(3).build().unwrap(); // 3 isolated
        let inst = Instance::new(dag, 3, CostModel::oneshot());
        let rep = solve_beam(&inst, BeamConfig::default()).unwrap();
        assert_eq!(rep.order.len(), 3);
    }

    #[test]
    fn beam_satisfies_require_blue_sinks() {
        let mut b = rbp_graph::DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot())
            .with_sink_convention(SinkConvention::RequireBlue);
        let rep = solve_beam(&inst, BeamConfig::default()).unwrap();
        // the engine's completeness check enforces the blue sink; the
        // final store is the only required transfer
        assert!(engine::simulate(&inst, &rep.trace).is_ok());
        assert_eq!(rep.cost.transfers, 1);
    }
}

//! The unified solver interface: one trait, one result shape, one
//! budget/cancellation protocol for every solver in this crate.
//!
//! Papp & Wattenhofer's hardness results mean every solver here is
//! either exact-but-exponential or a heuristic upper bound, so real
//! callers mix them: seed an exact search with a greedy incumbent, fall
//! back to beam when the state space explodes, sweep opt(R) curves.
//! This module gives all of that one calling convention:
//!
//! - [`Solver`]: `solve(&self, &Instance, &SolveCtx) -> Result<Solution,
//!   SolveError>`, implemented by [`ExactSolver`],
//!   [`ParallelExactSolver`], [`GreedySolver`], [`BeamSolver`],
//!   [`PortfolioSolver`], and [`crate::visit::VisitOrderSolver`];
//! - [`Solution`]: the engine-validated [`Pebbling`] trace, its exact
//!   [`Cost`], a [`Quality`] provenance tag, and per-solver [`Stats`];
//! - [`SolveCtx`]: a [`Budget`] (wall-clock deadline, expansion cap,
//!   cooperative cancellation flag — checked inside the exact, parallel,
//!   and beam hot loops) plus an optional [`Progress`] observer.
//!
//! String specs (`"exact"`, `"exact-parallel:4"`, `"beam:256"`, …) map
//! to boxed solvers through [`crate::registry`].
//!
//! ## Graceful degradation
//! When a budget expires mid-search, the exact solvers do **not** error:
//! they return the best incumbent known at that point — the cheapest
//! goal configuration discovered, or failing that the greedy seed — as
//! [`Quality::UpperBound`] with a `lower_bound` from
//! [`bounds::best_lower_bound`]. Only a budgeted solve that holds no
//! incumbent at all (seeding disabled, no goal reached) reports
//! [`SolveError::Interrupted`]. The same degradation covers the
//! [`ExactConfig::max_states`] memory guard when a seed exists.
//!
//! Heuristic solvers ([`GreedySolver`], [`PortfolioSolver`]) are
//! single-pass and complete in microseconds; they run to completion
//! regardless of the budget. [`BeamSolver`] checks the budget per depth
//! but holds no valid partial pebbling, so an expired budget surfaces as
//! [`SolveError::Interrupted`] there.

use crate::beam::{solve_beam_budgeted, BeamConfig};
use crate::error::SolveError;
use crate::exact::{solve_exact_budgeted, ExactConfig};
use crate::greedy::{solve_greedy_with, GreedyConfig, GreedyReport};
use crate::parallel::{greedy_incumbent, solve_parallel_budgeted, ParallelConfig};
use crate::portfolio::{default_portfolio, solve_portfolio};
use rbp_core::{bounds, engine, Cost, Instance, Move, Pebbling};
use rbp_graph::NodeId;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// budget + context
// ---------------------------------------------------------------------

/// Resource limits for one solve. All limits are optional and combine
/// with "whichever trips first"; the default is unlimited.
///
/// The exact/parallel/beam hot loops poll the budget once per scheduling
/// quantum (a few hundred expansions), so expiry is honored within
/// microseconds-to-milliseconds, not per state.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_expansions: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// No limits (the default).
    pub fn none() -> Self {
        Budget::default()
    }

    /// Returns a copy with a wall-clock deadline `after` from now.
    pub fn with_deadline(&self, after: Duration) -> Self {
        self.with_deadline_at(Instant::now() + after)
    }

    /// Returns a copy with an absolute wall-clock deadline.
    pub fn with_deadline_at(&self, at: Instant) -> Self {
        let mut b = self.clone();
        b.deadline = Some(at);
        b
    }

    /// Returns a copy capping the number of states the search may expand
    /// (pop and generate successors for). This bounds *work*, unlike
    /// [`ExactConfig::max_states`] which bounds *memory* (interned
    /// states) and is a hard error.
    pub fn with_max_expansions(&self, n: u64) -> Self {
        let mut b = self.clone();
        b.max_expansions = Some(n);
        b
    }

    /// Returns a copy carrying a cooperative cancellation flag. Store
    /// `true` into the flag (from any thread) to stop the solve at its
    /// next budget poll.
    pub fn with_cancel(&self, flag: Arc<AtomicBool>) -> Self {
        let mut b = self.clone();
        b.cancel = Some(flag);
        b
    }

    /// The cancellation flag, if one was attached.
    pub fn cancel_flag(&self) -> Option<&Arc<AtomicBool>> {
        self.cancel.as_ref()
    }

    /// Whether this budget can never trip (fast-path check the hot loops
    /// use to skip the `Instant::now()` call entirely).
    #[inline]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_expansions.is_none() && self.cancel.is_none()
    }

    /// Whether the budget has tripped, given the number of states
    /// expanded so far.
    #[inline]
    pub fn exhausted(&self, expanded: u64) -> bool {
        if let Some(m) = self.max_expansions {
            if expanded >= m {
                return true;
            }
        }
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

/// A progress snapshot delivered to the [`SolveCtx`] observer.
///
/// Sequential solvers report their own counters; the parallel solver
/// reports the cross-shard aggregate for `states_expanded` and the
/// reporting shard's local `frontier`.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Wall-clock time since the search started.
    pub elapsed: Duration,
    /// States expanded so far.
    pub states_expanded: u64,
    /// Expansion throughput since the start.
    pub states_per_sec: u64,
    /// Open states queued in the (reporting shard's) frontier.
    pub frontier: usize,
    /// Best known upper bound on the optimal scaled cost, if any.
    pub incumbent: Option<u64>,
}

/// A progress observer: called from inside the solve (possibly from a
/// worker thread), so it must be `Sync` and should be cheap.
pub type ProgressFn<'a> = dyn Fn(&Progress) + Sync + 'a;

/// Per-solve context: the [`Budget`] plus an optional progress observer.
pub struct SolveCtx<'a> {
    /// Resource limits for this solve.
    pub budget: Budget,
    /// Observer invoked periodically with [`Progress`] snapshots.
    pub progress: Option<&'a ProgressFn<'a>>,
}

impl Default for SolveCtx<'_> {
    fn default() -> Self {
        SolveCtx {
            budget: Budget::none(),
            progress: None,
        }
    }
}

impl<'a> SolveCtx<'a> {
    /// A context with the given budget and no observer.
    pub fn new(budget: Budget) -> Self {
        SolveCtx {
            budget,
            progress: None,
        }
    }

    /// A context with a budget and a progress observer.
    pub fn with_progress(budget: Budget, progress: &'a ProgressFn<'a>) -> Self {
        SolveCtx {
            budget,
            progress: Some(progress),
        }
    }
}

impl fmt::Debug for SolveCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveCtx")
            .field("budget", &self.budget)
            .field("progress", &self.progress.map(|_| "<observer>"))
            .finish()
    }
}

// ---------------------------------------------------------------------
// solution
// ---------------------------------------------------------------------

/// Provenance of a [`Solution`]: what the reported cost means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quality {
    /// The cost is the exact optimum (proved by exhaustive search, or by
    /// a heuristic meeting the structural lower bound).
    Optimal,
    /// The cost is an upper bound; the optimum lies in
    /// `[lower_bound, cost]` (both scaled by the model's ε denominator).
    UpperBound {
        /// A proved lower bound on the optimal scaled cost
        /// ([`bounds::best_lower_bound`]).
        lower_bound: u128,
    },
    /// No pebbling exists (R ≤ Δ). Produced only by
    /// [`Solver::solve_lenient`]; plain [`Solver::solve`] reports
    /// infeasibility as [`SolveError::Pebbling`].
    Infeasible,
}

/// Structured per-solver statistics: a small ordered map of `u64`
/// counters (`"states_expanded"`, `"states_seen"`, `"threads"`,
/// `"width"`, …). One shape for every solver, so report code does not
/// need to know which solver produced a [`Solution`]. Keys are owned
/// strings so stats survive a round trip through the wire format
/// ([`crate::wire`]), where they arrive parsed, not `'static`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats(BTreeMap<String, u64>);

impl Stats {
    /// An empty stats map.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Sets one counter (overwriting).
    pub fn set(&mut self, key: impl Into<String>, value: u64) {
        self.0.insert(key.into(), value);
    }

    /// Reads one counter.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.0.get(key).copied()
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.0.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The one result shape every solver returns: a validated trace, its
/// engine-exact cost, provenance, and stats.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The concrete pebbling. Always replayed through
    /// [`engine::simulate`] before being returned (empty for
    /// [`Quality::Infeasible`]).
    pub trace: Pebbling,
    /// The trace's exact cost, as computed by the engine.
    pub cost: Cost,
    /// What the cost means.
    pub quality: Quality,
    /// Per-solver counters.
    pub stats: Stats,
}

impl Solution {
    /// Validates `trace` on the engine and wraps it. The stored cost is
    /// the engine's, so a solver can never report a cost its trace does
    /// not realize. A [`Quality::UpperBound`] whose `lower_bound`
    /// exceeds the engine cost is an impossible bracket and is rejected
    /// here with [`SolveError::BoundViolation`] — the invariant is
    /// enforced at construction, not trusted to each solver.
    pub(crate) fn validated(
        instance: &Instance,
        trace: Pebbling,
        quality: Quality,
        stats: Stats,
    ) -> Result<Solution, SolveError> {
        let sim = engine::simulate(instance, &trace).map_err(|e| SolveError::Pebbling(e.error))?;
        if let Quality::UpperBound { lower_bound } = quality {
            let scaled = sim.scaled_cost(instance);
            if lower_bound > scaled {
                return Err(SolveError::BoundViolation {
                    lower_bound,
                    cost: scaled,
                });
            }
        }
        Ok(Solution {
            trace,
            cost: sim.cost,
            quality,
            stats,
        })
    }

    /// The infeasible marker solution (empty trace, zero cost).
    pub fn infeasible() -> Solution {
        Solution {
            trace: Pebbling::new(),
            cost: Cost::ZERO,
            quality: Quality::Infeasible,
            stats: Stats::new(),
        }
    }

    /// Whether the cost is provably optimal.
    pub fn is_optimal(&self) -> bool {
        self.quality == Quality::Optimal
    }

    /// The scaled cost under the instance's model (the comparison key
    /// all solvers rank by). Multiprocessor instances weigh transfers
    /// and computes by their exact cost-vector weights.
    pub fn scaled_cost(&self, instance: &Instance) -> u128 {
        instance.scaled_cost(&self.cost)
    }

    /// States expanded, when the solver reports it.
    pub fn states_expanded(&self) -> Option<u64> {
        self.stats.get("states_expanded")
    }

    /// Distinct states interned, when the solver reports it.
    pub fn states_seen(&self) -> Option<u64> {
        self.stats.get("states_seen")
    }

    /// The order in which nodes were first computed, recovered from the
    /// trace (what `GreedyReport::order` used to carry).
    pub fn computation_order(&self) -> Vec<NodeId> {
        let mut seen: Vec<bool> = Vec::new();
        let mut order = Vec::new();
        for mv in self.trace.moves() {
            if let Move::Compute(v) = mv {
                if seen.len() <= v.index() {
                    seen.resize(v.index() + 1, false);
                }
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    order.push(*v);
                }
            }
        }
        order
    }
}

/// The [`Quality`] of a heuristic result: [`Quality::Optimal`] when the
/// cost meets the structural lower bound (then the heuristic *proved*
/// optimality), otherwise an upper bound carrying that lower bound.
pub(crate) fn upper_bound_quality(instance: &Instance, cost: Cost) -> Quality {
    let lb = instance.scaled_cost(&bounds::best_lower_bound(instance));
    let scaled = instance.scaled_cost(&cost);
    debug_assert!(
        lb <= scaled,
        "structural lower bound {lb} exceeds a realized cost {scaled} — \
         bounds::best_lower_bound is unsound"
    );
    if scaled == lb {
        Quality::Optimal
    } else {
        Quality::UpperBound { lower_bound: lb }
    }
}

// ---------------------------------------------------------------------
// the trait
// ---------------------------------------------------------------------

/// A pebbling solver behind one calling convention.
///
/// Implementations validate their configuration
/// ([`SolveError::BadConfig`] on degenerate values), check feasibility,
/// honor the [`SolveCtx`] budget, and return an engine-validated
/// [`Solution`].
pub trait Solver: Send + Sync {
    /// The solver's registry family name (`"exact"`, `"greedy"`, …).
    fn name(&self) -> &str;

    /// The full registry spec this solver answers to, arguments
    /// included (`"greedy:most-red-inputs/lru"`, `"exact-parallel:4"`).
    /// The string round-trips: feeding it back through
    /// [`crate::registry::solver`] yields an equivalently configured
    /// solver, so services and stats reports can record *exactly* which
    /// configuration produced a result. Defaults to [`Solver::name`]
    /// for argument-free solvers.
    fn spec(&self) -> String {
        self.name().to_string()
    }

    /// Solves the instance under the given context.
    fn solve(&self, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError>;

    /// Solves with an unlimited budget and no observer.
    fn solve_default(&self, instance: &Instance) -> Result<Solution, SolveError> {
        self.solve(instance, &SolveCtx::default())
    }

    /// Like [`Solver::solve`], but reports an infeasible instance as
    /// [`Quality::Infeasible`] instead of an error — the shape a service
    /// endpoint wants, where infeasibility is a payload, not a fault.
    fn solve_lenient(&self, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError> {
        match self.solve(instance, ctx) {
            Err(SolveError::Pebbling(_)) => Ok(Solution::infeasible()),
            other => other,
        }
    }

    /// Like [`Solver::solve_lenient`], but additionally contains solver
    /// panics: an unwind out of the solve is caught and surfaced as
    /// [`SolveError::Panicked`] instead of killing the calling thread.
    ///
    /// Unwind safety: every solver in this crate keeps its search state
    /// (arena, node tables, heaps, routing channels) local to the solve
    /// call, so an unwound solve cannot leave broken state visible to a
    /// later call — the `AssertUnwindSafe` below asserts exactly that
    /// per-job locality. Long-running hosts (the service worker pool)
    /// use this entry point so one poisoned job cannot strand a worker.
    fn solve_caught(&self, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        match catch_unwind(AssertUnwindSafe(|| self.solve_lenient(instance, ctx))) {
            Ok(result) => result,
            Err(payload) => Err(SolveError::Panicked {
                payload: panic_payload_to_string(payload),
            }),
        }
    }
}

/// Renders a caught panic payload for logs: the common `&str`/`String`
/// payloads verbatim, anything else as an opaque marker.
pub fn panic_payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------
// exact (sequential)
// ---------------------------------------------------------------------

/// The sequential exact solver ([`crate::exact`]) behind the [`Solver`]
/// trait: optimal pebbling via Dijkstra/A*, seeded with a greedy
/// incumbent by default, budget-aware with graceful degradation.
#[derive(Clone, Copy, Debug)]
pub struct ExactSolver {
    /// The search knobs.
    pub cfg: ExactConfig,
    /// Seed the incumbent bound (and the degradation fallback) from a
    /// cost-staged greedy portfolio before searching.
    pub seed_incumbent: bool,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            cfg: ExactConfig::default(),
            seed_incumbent: true,
        }
    }
}

impl ExactSolver {
    /// Default configuration (pruned, A*, greedy-seeded).
    pub fn new() -> Self {
        ExactSolver::default()
    }

    /// Custom [`ExactConfig`], still greedy-seeded.
    pub fn with_config(cfg: ExactConfig) -> Self {
        ExactSolver {
            cfg,
            seed_incumbent: true,
        }
    }

    /// Returns a copy with incumbent seeding disabled (deterministic
    /// search-effort comparisons; no degradation fallback).
    pub fn unseeded(&self) -> Self {
        ExactSolver {
            seed_incumbent: false,
            ..*self
        }
    }

    /// The brute-force reference: no pruning, no heuristic, no seed.
    /// Exponentially slower; only for cross-validation on tiny
    /// instances.
    pub fn reference() -> Self {
        ExactSolver {
            cfg: ExactConfig {
                max_states: 4_000_000,
                prune: false,
                astar: false,
                upper_bound: None,
            },
            seed_incumbent: false,
        }
    }
}

/// Shared exact-path plumbing: seed, search, degrade. `threads` only
/// labels the stats.
fn run_exact_family(
    instance: &Instance,
    mut cfg: ExactConfig,
    threads: usize,
    seed_incumbent: bool,
    ctx: &SolveCtx,
) -> Result<Solution, SolveError> {
    cfg.validate()?;
    bounds::check_feasible(instance)?;
    let seed: Option<(u64, GreedyReport)> = if seed_incumbent && cfg.prune {
        greedy_incumbent(instance)
    } else {
        None
    };
    if let Some((ub, _)) = &seed {
        cfg.upper_bound = Some(cfg.upper_bound.map_or(*ub, |b| b.min(*ub)));
    }
    let searched = if threads == 1 {
        solve_exact_budgeted(instance, cfg, ctx)
    } else {
        solve_parallel_budgeted(instance, cfg, threads, ctx)
    };
    match searched {
        Ok((report, optimal)) => {
            let mut stats = Stats::new();
            stats.set("states_expanded", report.states_expanded as u64);
            stats.set("states_seen", report.states_seen as u64);
            stats.set("threads", threads as u64);
            let quality = if optimal && instance.procs() <= 1 {
                Quality::Optimal
            } else if optimal {
                // the classic search only explores single-processor
                // schedules; on p > 1 the multiprocessor optimum can be
                // strictly cheaper, so the result is only an upper bound
                upper_bound_quality(instance, report.cost)
            } else {
                stats.set("degraded", 1);
                upper_bound_quality(instance, report.cost)
            };
            Solution::validated(instance, report.trace, quality, stats)
        }
        // budget expired (or the memory guard tripped) before any goal
        // was reached: fall back to the greedy incumbent's trace
        Err(SolveError::Interrupted) | Err(SolveError::StateLimitExceeded { .. })
            if seed.is_some() =>
        {
            let (_, rep) = seed.expect("guarded");
            let mut stats = Stats::new();
            stats.set("threads", threads as u64);
            stats.set("degraded", 1);
            // a seed that meets the lower bound genuinely is optimal
            let quality = upper_bound_quality(instance, rep.cost);
            Solution::validated(instance, rep.trace, quality, stats)
        }
        Err(e) => Err(e),
    }
}

impl Solver for ExactSolver {
    fn name(&self) -> &str {
        if self.cfg.prune || self.cfg.astar {
            "exact"
        } else {
            "reference"
        }
    }

    fn spec(&self) -> String {
        match (self.name(), self.seed_incumbent) {
            ("reference", _) => "reference".to_string(),
            (_, true) => "exact".to_string(),
            (_, false) => "exact:unseeded".to_string(),
        }
    }

    fn solve(&self, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError> {
        run_exact_family(instance, self.cfg, 1, self.seed_incumbent, ctx)
    }
}

// ---------------------------------------------------------------------
// exact (parallel)
// ---------------------------------------------------------------------

/// The hash-sharded parallel exact solver ([`crate::parallel`]) behind
/// the [`Solver`] trait. `threads == 1` routes to the sequential path
/// (still incumbent-seeded); the budget is polled once per worker
/// quantum, so cancellation stops the search within one batch quantum.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelExactSolver {
    /// Thread count, search knobs, and seeding policy.
    pub cfg: ParallelConfig,
}

impl ParallelExactSolver {
    /// All available cores, default search knobs.
    pub fn new() -> Self {
        ParallelExactSolver::default()
    }

    /// A fixed thread count (must be ≥ 1; validated at solve time).
    pub fn with_threads(threads: usize) -> Self {
        ParallelExactSolver {
            cfg: ParallelConfig {
                threads,
                ..ParallelConfig::default()
            },
        }
    }
}

impl Solver for ParallelExactSolver {
    fn name(&self) -> &str {
        "exact-parallel"
    }

    fn spec(&self) -> String {
        format!("exact-parallel:{}", self.cfg.threads)
    }

    fn solve(&self, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError> {
        self.cfg.validate()?;
        run_exact_family(
            instance,
            self.cfg.exact,
            self.cfg.threads,
            self.cfg.seed_incumbent,
            ctx,
        )
    }
}

// ---------------------------------------------------------------------
// heuristics
// ---------------------------------------------------------------------

/// Wraps a heuristic trace: validated, tagged as an upper bound (or
/// [`Quality::Optimal`] when it meets the structural lower bound).
fn heuristic_solution(
    instance: &Instance,
    report: GreedyReport,
    stats: Stats,
) -> Result<Solution, SolveError> {
    let quality = upper_bound_quality(instance, report.cost);
    Solution::validated(instance, report.trace, quality, stats)
}

/// One greedy rule × eviction policy ([`crate::greedy`]) behind the
/// [`Solver`] trait. Single-pass and microsecond-scale: runs to
/// completion regardless of the budget.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedySolver {
    /// Selection rule and eviction policy.
    pub cfg: GreedyConfig,
}

impl GreedySolver {
    /// The default rule (most-red-inputs + min-uses).
    pub fn new() -> Self {
        GreedySolver::default()
    }

    /// A specific greedy configuration.
    pub fn with_config(cfg: GreedyConfig) -> Self {
        GreedySolver { cfg }
    }
}

impl Solver for GreedySolver {
    fn name(&self) -> &str {
        "greedy"
    }

    fn spec(&self) -> String {
        format!("greedy:{}", self.cfg)
    }

    fn solve(&self, instance: &Instance, _ctx: &SolveCtx) -> Result<Solution, SolveError> {
        let rep = solve_greedy_with(instance, self.cfg)?;
        heuristic_solution(instance, rep, Stats::new())
    }
}

/// Beam search ([`crate::beam`]) behind the [`Solver`] trait. The budget
/// is checked once per depth; an expired budget is
/// [`SolveError::Interrupted`] (a partial beam holds no valid pebbling
/// to degrade to).
#[derive(Clone, Copy, Debug, Default)]
pub struct BeamSolver {
    /// Beam width.
    pub cfg: BeamConfig,
}

impl BeamSolver {
    /// Default width (8).
    pub fn new() -> Self {
        BeamSolver::default()
    }

    /// A specific width (must be ≥ 1; validated at solve time).
    pub fn with_width(width: usize) -> Self {
        BeamSolver {
            cfg: BeamConfig { width },
        }
    }
}

impl Solver for BeamSolver {
    fn name(&self) -> &str {
        "beam"
    }

    fn spec(&self) -> String {
        format!("beam:{}", self.cfg.width)
    }

    fn solve(&self, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError> {
        let rep = solve_beam_budgeted(instance, self.cfg, ctx)?;
        let mut stats = Stats::new();
        stats.set("width", self.cfg.width as u64);
        heuristic_solution(instance, rep, stats)
    }
}

/// Best-of-greedy portfolio ([`crate::portfolio`]) behind the [`Solver`]
/// trait: every configuration runs on the shared work-queue pool, the
/// cheapest valid pebbling wins.
#[derive(Clone, Debug)]
pub struct PortfolioSolver {
    /// The greedy configurations raced against each other.
    pub configs: Vec<GreedyConfig>,
}

impl Default for PortfolioSolver {
    fn default() -> Self {
        PortfolioSolver {
            configs: default_portfolio(),
        }
    }
}

impl PortfolioSolver {
    /// The default nine-member portfolio (3 rules × 3 deterministic
    /// eviction policies).
    pub fn new() -> Self {
        PortfolioSolver::default()
    }

    /// A custom portfolio (must be non-empty; validated at solve time).
    pub fn with_configs(configs: Vec<GreedyConfig>) -> Self {
        PortfolioSolver { configs }
    }
}

impl Solver for PortfolioSolver {
    fn name(&self) -> &str {
        "portfolio"
    }

    fn solve(&self, instance: &Instance, _ctx: &SolveCtx) -> Result<Solution, SolveError> {
        if self.configs.is_empty() {
            return Err(SolveError::BadConfig {
                reason: "portfolio has no configurations".into(),
            });
        }
        let (winner, rep) = solve_portfolio(instance, &self.configs)?;
        let mut stats = Stats::new();
        stats.set("portfolio_size", self.configs.len() as u64);
        let winner_index = self.configs.iter().position(|c| *c == winner).unwrap_or(0) as u64;
        stats.set("winner_index", winner_index);
        heuristic_solution(instance, rep, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::CostModel;
    use rbp_graph::{generate, DagBuilder};

    fn diamond() -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        Instance::new(b.build().unwrap(), 3, CostModel::oneshot())
    }

    #[test]
    fn exact_solver_reports_optimal_quality() {
        let sol = ExactSolver::new().solve_default(&diamond()).unwrap();
        assert!(sol.is_optimal());
        assert_eq!(sol.cost.transfers, 0);
        assert!(sol.states_expanded().unwrap() >= 1);
        assert_eq!(sol.stats.get("threads"), Some(1));
    }

    #[test]
    fn heuristics_report_upper_bound_or_proved_optimal() {
        let inst = diamond();
        let sol = GreedySolver::new().solve_default(&inst).unwrap();
        // cost 0 meets the trivial lower bound, so the greedy proof
        // upgrades to Optimal
        assert!(sol.is_optimal());
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 2, &mut rng);
        let inst = Instance::new(dag, 3, CostModel::oneshot());
        let sol = GreedySolver::new().solve_default(&inst).unwrap();
        match sol.quality {
            Quality::Optimal => {}
            Quality::UpperBound { lower_bound } => {
                assert!(lower_bound <= sol.scaled_cost(&inst));
            }
            Quality::Infeasible => panic!("feasible instance"),
        }
    }

    #[test]
    fn lenient_solve_maps_infeasibility_to_quality() {
        let inst = Instance::new(generate::chain(3), 1, CostModel::oneshot());
        let sol = ExactSolver::new()
            .solve_lenient(&inst, &SolveCtx::default())
            .unwrap();
        assert_eq!(sol.quality, Quality::Infeasible);
        assert!(matches!(
            ExactSolver::new().solve_default(&inst),
            Err(SolveError::Pebbling(_))
        ));
    }

    #[test]
    fn solve_caught_contains_panics_as_structured_errors() {
        struct Bomb;
        impl Solver for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn solve(&self, _: &Instance, _: &SolveCtx) -> Result<Solution, SolveError> {
                panic!("kaboom in the search");
            }
        }
        let err = Bomb
            .solve_caught(&diamond(), &SolveCtx::default())
            .unwrap_err();
        match err {
            SolveError::Panicked { payload } => assert_eq!(payload, "kaboom in the search"),
            other => panic!("{other:?}"),
        }
        // non-panicking solves pass through unchanged
        let sol = ExactSolver::new()
            .solve_caught(&diamond(), &SolveCtx::default())
            .unwrap();
        assert!(sol.is_optimal());
    }

    #[test]
    fn computation_order_matches_trace() {
        let inst = Instance::new(generate::chain(5), 2, CostModel::oneshot());
        let sol = GreedySolver::new().solve_default(&inst).unwrap();
        let order = sol.computation_order();
        assert_eq!(order.len(), 5);
        assert!(rbp_graph::is_topological_order(inst.dag(), &order));
    }

    #[test]
    fn pre_cancelled_budget_degrades_to_greedy_incumbent() {
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = SolveCtx::new(Budget::none().with_cancel(flag));
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 3, &mut rng);
        let inst = Instance::new(dag, 5, CostModel::oneshot());
        let sol = ExactSolver::new().solve(&inst, &ctx).unwrap();
        // must degrade, not error, and the fallback must be valid
        assert_eq!(sol.stats.get("degraded"), Some(1));
        assert!(engine::simulate(&inst, &sol.trace).is_ok());
    }

    #[test]
    fn interrupted_without_incumbent_is_an_error() {
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = SolveCtx::new(Budget::none().with_cancel(flag));
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 3, &mut rng);
        let inst = Instance::new(dag, 5, CostModel::oneshot());
        let res = ExactSolver::new().unseeded().solve(&inst, &ctx);
        assert_eq!(res.unwrap_err(), SolveError::Interrupted);
    }

    #[test]
    fn max_expansion_budget_is_honored() {
        let ctx = SolveCtx::new(Budget::none().with_max_expansions(8));
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 3, &mut rng);
        let inst = Instance::new(dag, 5, CostModel::oneshot());
        let sol = ExactSolver::new().solve(&inst, &ctx).unwrap();
        assert!(engine::simulate(&inst, &sol.trace).is_ok());
    }

    #[test]
    fn impossible_bound_bracket_rejected_at_construction() {
        // 0 -> 1, R = 2: computing both nodes costs 0 transfers
        let mut b = DagBuilder::new(2);
        b.add_edge(0, 1);
        let inst = Instance::new(b.build().unwrap(), 2, CostModel::oneshot());
        let mut trace = Pebbling::new();
        trace.compute(rbp_graph::NodeId::new(0));
        trace.compute(rbp_graph::NodeId::new(1));
        // a claimed lower bound of 7 on a cost-0 trace is an impossible
        // bracket and must be refused with the structured error
        let err = Solution::validated(
            &inst,
            trace.clone(),
            Quality::UpperBound { lower_bound: 7 },
            Stats::new(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SolveError::BoundViolation {
                lower_bound: 7,
                cost: 0
            }
        );
        // a consistent bracket still passes
        let ok = Solution::validated(
            &inst,
            trace,
            Quality::UpperBound { lower_bound: 0 },
            Stats::new(),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn progress_observer_sees_monotone_counters() {
        use std::sync::Mutex;
        let seen: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let observer = |p: &Progress| seen.lock().unwrap().push(p.states_expanded);
        let ctx = SolveCtx::with_progress(Budget::none(), &observer);
        // a height-3 binary in-tree at R=3 forces a real (but small)
        // search under base; whether the observer fires depends on the
        // progress interval — the contract under test is monotonicity
        // and that observing never corrupts the solve
        let mut b = DagBuilder::new(15);
        for parent in 0..7 {
            b.add_edge(2 * parent + 1, parent);
            b.add_edge(2 * parent + 2, parent);
        }
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::base());
        let sol = ExactSolver::new().unseeded().solve(&inst, &ctx).unwrap();
        assert!(sol.is_optimal());
        let seen = seen.into_inner().unwrap();
        assert!(seen.windows(2).all(|w| w[0] <= w[1]), "monotone progress");
    }
}

//! Parallel parameter sweeps: opt(R) tradeoff curves (Section 5) over
//! any [`Solver`].
//!
//! The per-R solves are independent, so [`sweep_r`] fans them out over
//! the shared work-queue pool ([`crate::pool`]): threads claim R-values
//! from an atomic next-index counter, so one expensive mid-range R
//! cannot serialize the rest of the sweep. Solvers dispatched this way
//! should be internally single-threaded and spawn-free — e.g.
//! [`ExactSolver::unseeded`][exact] (the *seeded* default escalates to
//! a greedy portfolio that fans out over this same pool, nesting
//! fan-outs), greedy, or beam. For internally parallel solvers use
//! [`sweep_r_serial`], which inverts the shape — points run one after
//! another and each solve fans out across its own worker shards. Mixing
//! both would oversubscribe the host.
//!
//! Every [`SweepPoint`] carries the full [`Solution`] (cost, quality,
//! per-solver stats) plus wall-clock time, so tradeoff experiments can
//! plot cost *and* how hard each point was to obtain.
//!
//! [exact]: crate::api::ExactSolver

use crate::api::{Solution, SolveCtx, Solver};
use crate::error::SolveError;
use rbp_core::{Cost, Instance};
use std::time::Duration;

/// One point of a tradeoff curve.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The red-pebble budget.
    pub r: usize,
    /// Result for this budget (a full [`Solution`], or the failure).
    pub result: Result<Solution, SolveError>,
    /// Wall-clock time spent solving this point.
    pub wall: Duration,
}

impl SweepPoint {
    /// The point's cost, when it solved.
    pub fn cost(&self) -> Option<Cost> {
        self.result.as_ref().ok().map(|s| s.cost)
    }

    /// States expanded to settle this point, when the solver reports it.
    pub fn states_expanded(&self) -> Option<u64> {
        self.result.as_ref().ok().and_then(|s| s.states_expanded())
    }
}

/// Solves `instance` at every R in `r_range` with `solver`, fanning the
/// points out over the work-queue pool, and returns them in
/// increasing-R order. Each point re-parameterizes the instance with R
/// (the DAG is shared, not copied) and solves with an unlimited budget;
/// use [`sweep_r_with`] to bound the whole sweep.
pub fn sweep_r(
    instance: &Instance,
    r_range: std::ops::RangeInclusive<usize>,
    solver: &dyn Solver,
) -> Vec<SweepPoint> {
    sweep_r_with(instance, r_range, solver, &SolveCtx::default())
}

/// [`sweep_r`] under a shared context: the budget (deadline,
/// cancellation) spans the *whole sweep*, so an expired deadline
/// degrades or stops every remaining point.
pub fn sweep_r_with(
    instance: &Instance,
    r_range: std::ops::RangeInclusive<usize>,
    solver: &dyn Solver,
    ctx: &SolveCtx,
) -> Vec<SweepPoint> {
    let rs: Vec<usize> = r_range.collect();
    crate::pool::run_indexed(rs.len(), |i| solve_point(instance, rs[i], solver, ctx))
}

/// Point-serial sweep for internally parallel solvers (e.g.
/// [`ParallelExactSolver`](crate::api::ParallelExactSolver)): points run
/// one after another and each solve fans out across its own threads.
/// That is the right split when individual solves dominate (few, large
/// instances) — point-level fan-out ([`sweep_r`]) wins when there are
/// many small points.
pub fn sweep_r_serial(
    instance: &Instance,
    r_range: std::ops::RangeInclusive<usize>,
    solver: &dyn Solver,
    ctx: &SolveCtx,
) -> Vec<SweepPoint> {
    r_range
        .map(|r| solve_point(instance, r, solver, ctx))
        .collect()
}

fn solve_point(instance: &Instance, r: usize, solver: &dyn Solver, ctx: &SolveCtx) -> SweepPoint {
    let inst = instance.with_red_limit(r);
    let t0 = std::time::Instant::now();
    let result = solver.solve(&inst, ctx);
    SweepPoint {
        r,
        result,
        wall: t0.elapsed(),
    }
}

/// Verifies the Section-5 staircase property on a curve: opt is
/// non-increasing in R and each extra pebble saves at most 2n transfers
/// (`opt(R−1) ≤ opt(R) + 2n`). Returns the first violating pair, if any.
pub fn check_tradeoff_laws(instance: &Instance, points: &[SweepPoint]) -> Option<(usize, usize)> {
    let eps = instance.model().epsilon();
    let slack = rbp_core::bounds::max_tradeoff_slope(instance) as u128 * eps.den() as u128;
    for w in points.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let (Ok(ca), Ok(cb)) = (&a.result, &b.result) else {
            continue;
        };
        let (sa, sb) = (ca.cost.scaled(eps), cb.cost.scaled(eps));
        // monotone: more pebbles never hurt
        if sb > sa {
            return Some((a.r, b.r));
        }
        // bounded slope (oneshot law; holds as stated only there)
        if instance.model().kind() == rbp_core::ModelKind::Oneshot && sa > sb + slack {
            return Some((a.r, b.r));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ExactSolver, GreedySolver, ParallelExactSolver};
    use rbp_core::CostModel;
    use rbp_graph::generate;

    #[test]
    fn sweep_covers_range_in_order() {
        let dag = generate::chain(6);
        let inst = Instance::new(dag, 2, CostModel::oneshot());
        let points = sweep_r(&inst, 2..=5, &GreedySolver::new());
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].r, 2);
        assert_eq!(points[3].r, 5);
        for p in &points {
            assert_eq!(p.cost().unwrap().transfers, 0, "chain free at R>=2");
            assert!(
                p.states_expanded().is_none(),
                "greedy reports no search effort"
            );
        }
    }

    #[test]
    fn sweep_reports_infeasible_points() {
        let dag = generate::chain(4);
        let inst = Instance::new(dag, 2, CostModel::oneshot());
        let points = sweep_r(&inst, 1..=2, &ExactSolver::new().unseeded());
        assert!(points[0].result.is_err(), "R=1 infeasible on a chain");
        assert!(points[1].result.is_ok());
    }

    #[test]
    fn exact_sweep_reports_solver_effort() {
        let dag = generate::chain(6);
        let inst = Instance::new(dag, 2, CostModel::oneshot());
        let solver = ExactSolver::new().unseeded();
        let points = sweep_r(&inst, 2..=4, &solver);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.result.is_ok());
            let states = p.states_expanded().expect("exact sweep records states");
            assert!(states > 0, "at least the root is expanded");
            // the per-point stats must agree with a direct solve
            let direct = solver.solve_default(&inst.with_red_limit(p.r)).unwrap();
            assert_eq!(Some(states), direct.states_expanded());
            assert!(p.result.as_ref().unwrap().is_optimal());
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        let dag = generate::chain(6);
        let inst = Instance::new(dag, 2, CostModel::nodel());
        let seq = sweep_r(&inst, 2..=4, &ExactSolver::new().unseeded());
        let par = sweep_r_serial(
            &inst,
            2..=4,
            &ParallelExactSolver::with_threads(2),
            &SolveCtx::default(),
        );
        assert_eq!(par.len(), seq.len());
        let eps = inst.model().epsilon();
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.r, s.r, "increasing-R order preserved");
            assert_eq!(p.cost().unwrap().scaled(eps), s.cost().unwrap().scaled(eps));
            assert!(p.states_expanded().is_some());
        }
    }

    #[test]
    fn tradeoff_laws_hold_on_small_join_dag() {
        let mut b = rbp_graph::DagBuilder::new(5);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        b.add_edge(2, 4);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        let points = sweep_r(&inst, 3..=5, &ExactSolver::new().unseeded());
        assert_eq!(check_tradeoff_laws(&inst, &points), None);
    }
}

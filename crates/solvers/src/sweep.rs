//! Parallel parameter sweeps: opt(R) tradeoff curves (Section 5).
//!
//! The per-R solves are independent, so they fan out over the shared
//! work-queue pool ([`crate::pool`]): threads claim R-values from an
//! atomic next-index counter, so one expensive mid-range R cannot
//! serialize the rest of the sweep. Solvers invoked through here stay
//! single-threaded and deterministic (use [`crate::parallel`] to
//! parallelize a single solve instead).
//!
//! Every [`SweepPoint`] carries the solver effort spent on it
//! (`states_expanded` where the solver reports it, plus wall-clock time),
//! so tradeoff experiments can plot cost *and* how hard each point was to
//! obtain. [`sweep_exact_r`] is the exact-solver entry point: it reuses a
//! single [`ExactConfig`] across the whole range.

use crate::error::SolveError;
use crate::exact::{solve_exact_with, ExactConfig};
use crate::parallel::{solve_exact_parallel_with, ParallelConfig};
use rbp_core::{Cost, Instance};
use std::time::Duration;

/// One point of a tradeoff curve.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The red-pebble budget.
    pub r: usize,
    /// Result for this budget (cost, or the failure).
    pub result: Result<Cost, SolveError>,
    /// States expanded to settle this point, when the solver reports it
    /// (the exact solver does; plain cost closures leave it `None`).
    pub states_expanded: Option<usize>,
    /// Wall-clock time spent solving this point.
    pub wall: Duration,
}

/// Computes `solver` over every R in `r_range`, in parallel, returning
/// points in increasing-R order. Per-point wall time is recorded;
/// `states_expanded` stays `None` (use [`sweep_exact_r`] for effort-aware
/// exact sweeps).
///
/// `solver` must be deterministic; it receives a per-thread clone of the
/// instance re-parameterized with R (the DAG is shared, not copied).
pub fn sweep_r<F>(
    instance: &Instance,
    r_range: std::ops::RangeInclusive<usize>,
    solver: F,
) -> Vec<SweepPoint>
where
    F: Fn(&Instance) -> Result<Cost, SolveError> + Sync,
{
    sweep_with(instance, r_range, |inst| (solver(inst), None))
}

/// Sweeps the exact solver over every R in `r_range` with one shared
/// configuration, recording per-point `states_expanded` and wall time.
pub fn sweep_exact_r(
    instance: &Instance,
    r_range: std::ops::RangeInclusive<usize>,
    cfg: ExactConfig,
) -> Vec<SweepPoint> {
    sweep_with(instance, r_range, move |inst| {
        match solve_exact_with(inst, cfg) {
            Ok(rep) => (Ok(rep.cost), Some(rep.states_expanded)),
            Err(e) => (Err(e), None),
        }
    })
}

/// Sweeps the *parallel* exact solver ([`solve_exact_parallel_with`])
/// over every R in `r_range`, in increasing-R order.
///
/// The parallelism shape is inverted relative to [`sweep_exact_r`]:
/// points run one after another and each solve fans out across
/// `cfg.threads` shards. That is the right split when individual solves
/// dominate (few, large instances) — point-level fan-out wins when there
/// are many small points. Mixing both would oversubscribe the host.
pub fn sweep_exact_parallel_r(
    instance: &Instance,
    r_range: std::ops::RangeInclusive<usize>,
    cfg: ParallelConfig,
) -> Vec<SweepPoint> {
    r_range
        .map(|r| {
            let inst = instance.with_red_limit(r);
            let t0 = std::time::Instant::now();
            let (result, states_expanded) = match solve_exact_parallel_with(&inst, cfg) {
                Ok(rep) => (Ok(rep.cost), Some(rep.states_expanded)),
                Err(e) => (Err(e), None),
            };
            SweepPoint {
                r,
                result,
                states_expanded,
                wall: t0.elapsed(),
            }
        })
        .collect()
}

/// Shared fan-out: runs `solver` per R on the work-queue pool
/// ([`crate::pool::run_indexed`]) and assembles timed points in
/// increasing-R order. Each thread claims the next unsolved R as soon as
/// it finishes its last one, so a single expensive mid-range R no longer
/// serializes the rest of the sweep behind it.
fn sweep_with<F>(
    instance: &Instance,
    r_range: std::ops::RangeInclusive<usize>,
    solver: F,
) -> Vec<SweepPoint>
where
    F: Fn(&Instance) -> (Result<Cost, SolveError>, Option<usize>) + Sync,
{
    let rs: Vec<usize> = r_range.collect();
    crate::pool::run_indexed(rs.len(), |i| {
        let r = rs[i];
        let inst = instance.with_red_limit(r);
        let t0 = std::time::Instant::now();
        let (result, states_expanded) = solver(&inst);
        SweepPoint {
            r,
            result,
            states_expanded,
            wall: t0.elapsed(),
        }
    })
}

/// Verifies the Section-5 staircase property on a curve: opt is
/// non-increasing in R and each extra pebble saves at most 2n transfers
/// (`opt(R−1) ≤ opt(R) + 2n`). Returns the first violating pair, if any.
pub fn check_tradeoff_laws(instance: &Instance, points: &[SweepPoint]) -> Option<(usize, usize)> {
    let eps = instance.model().epsilon();
    let slack = rbp_core::bounds::max_tradeoff_slope(instance) as u128 * eps.den() as u128;
    for w in points.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let (Ok(ca), Ok(cb)) = (&a.result, &b.result) else {
            continue;
        };
        let (sa, sb) = (ca.scaled(eps), cb.scaled(eps));
        // monotone: more pebbles never hurt
        if sb > sa {
            return Some((a.r, b.r));
        }
        // bounded slope (oneshot law; holds as stated only there)
        if instance.model().kind() == rbp_core::ModelKind::Oneshot && sa > sb + slack {
            return Some((a.r, b.r));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use rbp_core::CostModel;
    use rbp_graph::generate;

    #[test]
    fn sweep_covers_range_in_order() {
        let dag = generate::chain(6);
        let inst = Instance::new(dag, 2, CostModel::oneshot());
        let points = sweep_r(&inst, 2..=5, |i| solve_exact(i).map(|r| r.cost));
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].r, 2);
        assert_eq!(points[3].r, 5);
        for p in &points {
            assert_eq!(
                p.result.as_ref().unwrap().transfers,
                0,
                "chain free at R>=2"
            );
            assert!(
                p.states_expanded.is_none(),
                "plain closures report no effort"
            );
        }
    }

    #[test]
    fn sweep_reports_infeasible_points() {
        let dag = generate::chain(4);
        let inst = Instance::new(dag, 2, CostModel::oneshot());
        let points = sweep_r(&inst, 1..=2, |i| solve_exact(i).map(|r| r.cost));
        assert!(points[0].result.is_err(), "R=1 infeasible on a chain");
        assert!(points[1].result.is_ok());
    }

    #[test]
    fn exact_sweep_reports_solver_effort() {
        let dag = generate::chain(6);
        let inst = Instance::new(dag, 2, CostModel::oneshot());
        let points = sweep_exact_r(&inst, 2..=4, ExactConfig::default());
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.result.is_ok());
            let states = p.states_expanded.expect("exact sweep records states");
            assert!(states > 0, "at least the root is expanded");
            // the per-point stats must agree with a direct solve
            let direct = solve_exact(&inst.with_red_limit(p.r)).unwrap();
            assert_eq!(states, direct.states_expanded);
        }
    }

    #[test]
    fn exact_sweep_marks_infeasible_points_without_effort() {
        let dag = generate::chain(4);
        let inst = Instance::new(dag, 2, CostModel::oneshot());
        let points = sweep_exact_r(&inst, 1..=2, ExactConfig::default());
        assert!(points[0].result.is_err());
        assert!(points[0].states_expanded.is_none());
        assert!(points[1].states_expanded.is_some());
    }

    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        let dag = generate::chain(6);
        let inst = Instance::new(dag, 2, CostModel::nodel());
        let seq = sweep_exact_r(&inst, 2..=4, ExactConfig::default());
        let par = sweep_exact_parallel_r(
            &inst,
            2..=4,
            ParallelConfig {
                threads: 2,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(par.len(), seq.len());
        let eps = inst.model().epsilon();
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.r, s.r, "increasing-R order preserved");
            assert_eq!(
                p.result.as_ref().unwrap().scaled(eps),
                s.result.as_ref().unwrap().scaled(eps)
            );
            assert!(p.states_expanded.is_some());
        }
    }

    #[test]
    fn tradeoff_laws_hold_on_small_join_dag() {
        let mut b = rbp_graph::DagBuilder::new(5);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        b.add_edge(2, 4);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        let points = sweep_exact_r(&inst, 3..=5, ExactConfig::default());
        assert_eq!(check_tradeoff_laws(&inst, &points), None);
    }
}

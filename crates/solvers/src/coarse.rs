//! Hierarchical scale-out: the DAG-coarsening solver (`coarse[:K]`).
//!
//! [`CoarseSolver`] splits an instance into `K` acyclic groups
//! ([`rbp_graph::partition`]), solves each group's sub-instance
//! independently with any inner registry solver, and stitches the
//! per-group traces into one engine-validated global pebbling. Values
//! crossing a group boundary live in slow memory between groups: the
//! producing group leaves them blue, the consuming group loads them.
//! The result is a [`Quality::UpperBound`] whose `lower_bound` is the
//! structural floor ([`bounds::best_lower_bound`], which includes the
//! fractional relaxation) — or the inner solver's own quality when the
//! instance is delegated whole.
//!
//! ## Stitching invariant
//!
//! Groups are replayed in quotient topological order against one
//! global [`State`]. For every move of a group's sub-trace the global
//! trace receives a move with the *same red-count delta*, so a
//! sub-trace legal at red limit `R` stays legal globally:
//!
//! - moves on nodes private to the group pass through unchanged;
//! - `Compute` of an external input (only possible under
//!   `FreeCompute`) becomes a `Load` — the value was computed and
//!   stored by its home group, so recomputing it would double-compute
//!   under oneshot and is pointless elsewhere;
//! - `Delete` of an *interface* value (an external input, or a value
//!   later groups consume) becomes a `Store` when the value is red —
//!   its blue copy must survive for the later consumers — and is
//!   dropped when the copy being deleted is blue;
//! - at each group boundary every remaining red value is flushed:
//!   stored if a later group or the completion check still needs it
//!   (or the model forbids deletes), deleted otherwise. Each group
//!   therefore starts from an empty red set, which is exactly the
//!   footing its sub-solve assumed.
//!
//! By induction over the group order, every external input is blue
//! when its consuming group starts, so the rewritten loads are legal;
//! [`Solution::validated`] replays the stitched trace through the
//! engine as the final arbiter.

use crate::api::{upper_bound_quality, Solution, SolveCtx, Solver, Stats};
use crate::error::SolveError;
use crate::registry;
use rbp_core::bounds;
use rbp_core::{Instance, Move, Pebbling, State};
use rbp_graph::{partition, topological_order, DagBuilder, NodeId, Partition};

/// Default target group size when `K` is not given: `K = ⌈n / 12⌉`.
/// Twelve nodes keeps even exact inner solvers tractable per group
/// while leaving enough structure for the stitcher to exploit.
pub const DEFAULT_GROUP_SIZE: usize = 12;

/// Inner solver spec used when none is given. The portfolio is
/// microsecond-scale per group, so the coarse solve stays near-linear
/// in `n`; pass `coarse:K/exact` to spend exact search inside groups.
pub const DEFAULT_INNER: &str = "portfolio";

/// Configuration for [`CoarseSolver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoarseConfig {
    /// Number of groups; `None` sizes groups to [`DEFAULT_GROUP_SIZE`].
    pub k: Option<usize>,
    /// Registry spec of the inner per-group solver.
    pub inner: String,
}

impl Default for CoarseConfig {
    fn default() -> Self {
        CoarseConfig {
            k: None,
            inner: DEFAULT_INNER.to_string(),
        }
    }
}

/// The hierarchical coarsening solver (`coarse[:K[/INNER]]`).
pub struct CoarseSolver {
    /// The grouping and inner-solver configuration.
    pub cfg: CoarseConfig,
}

impl CoarseSolver {
    /// Default configuration: auto-sized `K`, portfolio inner.
    pub fn new() -> Self {
        CoarseSolver {
            cfg: CoarseConfig::default(),
        }
    }

    /// Fixed group count.
    pub fn with_k(k: usize) -> Self {
        CoarseSolver {
            cfg: CoarseConfig {
                k: Some(k),
                ..CoarseConfig::default()
            },
        }
    }
}

impl Default for CoarseSolver {
    fn default() -> Self {
        CoarseSolver::new()
    }
}

/// One group's sub-instance plus the local↔global node maps.
struct SubProblem {
    instance: Instance,
    /// local index → global node
    to_global: Vec<NodeId>,
}

/// Builds group `g`'s sub-instance: the group's nodes plus their
/// external inputs, with edges *into* the group only (external inputs
/// become sub-sources), under the original limit, model, and
/// conventions. Local node order follows the global topological order
/// so every edge is forward.
fn build_sub(instance: &Instance, part: &Partition, g: usize, topo_pos: &[usize]) -> SubProblem {
    let dag = instance.dag();
    let mut locals: Vec<NodeId> = part.external_inputs(dag, g);
    locals.extend_from_slice(part.group(g));
    locals.sort_by_key(|v| topo_pos[v.index()]);
    let mut local_of = vec![usize::MAX; dag.n()];
    for (i, &v) in locals.iter().enumerate() {
        local_of[v.index()] = i;
    }
    let mut b = DagBuilder::new(locals.len());
    for (i, &v) in locals.iter().enumerate() {
        b.set_label(NodeId::new(i), dag.label(v));
        if part.group_of(v) == g {
            for &p in dag.preds(v) {
                b.add_edge(local_of[p.index()], i);
            }
        }
    }
    let sub_dag = b
        .build()
        .expect("sub-DAG edges follow a topological order of an acyclic DAG");
    let instance = Instance::new(sub_dag, instance.red_limit(), instance.model())
        .with_source_convention(instance.source_convention())
        .with_sink_convention(instance.sink_convention());
    SubProblem {
        instance,
        to_global: locals,
    }
}

impl Solver for CoarseSolver {
    fn name(&self) -> &str {
        "coarse"
    }

    fn spec(&self) -> String {
        match (&self.cfg.k, self.cfg.inner.as_str()) {
            (None, DEFAULT_INNER) => "coarse".to_string(),
            (Some(k), DEFAULT_INNER) => format!("coarse:{k}"),
            (None, inner) => format!("coarse:auto/{inner}"),
            (Some(k), inner) => format!("coarse:{k}/{inner}"),
        }
    }

    fn solve(&self, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError> {
        bounds::check_feasible(instance)?;
        let inner = registry::solver(&self.cfg.inner)?;
        let n = instance.dag().n();
        let k = self
            .cfg
            .k
            .unwrap_or_else(|| n.div_ceil(DEFAULT_GROUP_SIZE))
            .max(1)
            .min(n.max(1));
        // Whole-instance delegation: one group means nothing to stitch
        // (this is what pins `coarse:1/exact` to the exact optimum),
        // and the stitcher builds single-processor schedules only, so
        // multiprocessor instances go to the inner solver untouched.
        if k <= 1 || instance.procs() > 1 || instance.mpp().is_some() {
            return inner.solve(instance, ctx);
        }

        let dag = instance.dag();
        let nodel = instance.model().kind() == rbp_core::ModelKind::NoDel;
        let part = partition::partition(dag, k);
        let order = topological_order(dag);
        let mut topo_pos = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            topo_pos[v.index()] = i;
        }
        // crossing[v]: some successor of v lives in a strictly later
        // group — v's value must be blue at every later group boundary
        let crossing: Vec<bool> = dag
            .nodes()
            .map(|v| {
                let gv = part.group_of(v);
                dag.succs(v).iter().any(|&w| part.group_of(w) > gv)
            })
            .collect();

        let mut trace = Pebbling::new();
        let mut gs = State::initial(instance);
        let mut stats = Stats::new();
        let mut cost = rbp_core::Cost::ZERO;
        let mut inner_optimal = 0u64;
        let mut rewrites = 0u64;
        let mut flush_stores = 0u64;
        let mut flush_deletes = 0u64;
        let push = |trace: &mut Pebbling, gs: &mut State, cost: &mut rbp_core::Cost, mv: Move| {
            let c = gs.apply(mv, instance).map_err(SolveError::Pebbling)?;
            cost.transfers += c.transfers;
            cost.computes += c.computes;
            trace.push(mv);
            Ok::<(), SolveError>(())
        };

        for g in 0..part.k() {
            let sub = build_sub(instance, &part, g, &topo_pos);
            let sol = inner.solve(&sub.instance, ctx)?;
            if sol.is_optimal() {
                inner_optimal += 1;
            }
            for &mv in sol.trace.moves() {
                let gv = sub.to_global[mv.node().index()];
                let interface = part.group_of(gv) < g || crossing[gv.index()];
                match mv {
                    Move::Compute(_) if part.group_of(gv) < g => {
                        // external input under FreeCompute: its home
                        // group already computed and stored it
                        rewrites += 1;
                        push(&mut trace, &mut gs, &mut cost, Move::Load(gv))?;
                    }
                    Move::Delete(_) if interface => {
                        if gs.is_red(gv) {
                            rewrites += 1;
                            push(&mut trace, &mut gs, &mut cost, Move::Store(gv))?;
                        }
                        // deleting the blue copy is dropped entirely:
                        // later groups still need it
                    }
                    Move::Load(_) => push(&mut trace, &mut gs, &mut cost, Move::Load(gv))?,
                    Move::Store(_) => push(&mut trace, &mut gs, &mut cost, Move::Store(gv))?,
                    Move::Compute(_) => push(&mut trace, &mut gs, &mut cost, Move::Compute(gv))?,
                    Move::Delete(_) => push(&mut trace, &mut gs, &mut cost, Move::Delete(gv))?,
                }
            }
            // flush: drain the red set so the next group starts from
            // the empty red footing its sub-solve assumed
            let reds: Vec<NodeId> = gs.red_set().iter().map(NodeId::new).collect();
            for u in reds {
                let needed = crossing[u.index()] || dag.is_sink(u);
                if needed || nodel {
                    flush_stores += 1;
                    push(&mut trace, &mut gs, &mut cost, Move::Store(u))?;
                } else {
                    flush_deletes += 1;
                    push(&mut trace, &mut gs, &mut cost, Move::Delete(u))?;
                }
            }
        }

        let quality = upper_bound_quality(instance, cost);
        stats.set("groups", part.k() as u64);
        stats.set("max_group_size", part.max_group_size() as u64);
        stats.set("cut_edges", part.cut_size(dag) as u64);
        stats.set("inner_optimal_groups", inner_optimal);
        stats.set("interface_rewrites", rewrites);
        stats.set("flush_stores", flush_stores);
        stats.set("flush_deletes", flush_deletes);
        Solution::validated(instance, trace, quality, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{certify, CostModel, SinkConvention, SourceConvention};
    use rbp_graph::generate;

    fn layered(seed: u64, l: usize, w: usize) -> rbp_graph::Dag {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        generate::layered(l, w, 3, &mut rng)
    }

    #[test]
    fn coarse_stitches_a_legal_trace_in_every_model() {
        for kind in rbp_core::ModelKind::ALL {
            for (src, sink) in [
                (SourceConvention::FreeCompute, SinkConvention::AnyPebble),
                (SourceConvention::InitiallyBlue, SinkConvention::RequireBlue),
            ] {
                let dag = layered(41, 5, 5);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind))
                    .with_source_convention(src)
                    .with_sink_convention(sink);
                let sol = CoarseSolver::with_k(4)
                    .solve_default(&inst)
                    .unwrap_or_else(|e| panic!("{kind} {src:?} {sink:?}: {e}"));
                // Solution::validated already replayed the trace; the
                // bracket must be honest
                if let crate::api::Quality::UpperBound { lower_bound } = sol.quality {
                    assert!(lower_bound <= sol.scaled_cost(&inst));
                }
                assert_eq!(sol.stats.get("groups"), Some(4));
            }
        }
    }

    #[test]
    fn coarse_k1_delegates_and_is_exact() {
        let dag = layered(7, 3, 3);
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, CostModel::oneshot());
        let coarse = CoarseSolver {
            cfg: CoarseConfig {
                k: Some(1),
                inner: "exact".to_string(),
            },
        };
        let sol = coarse.solve_default(&inst).unwrap();
        assert!(sol.is_optimal());
        let direct = crate::api::ExactSolver::new().solve_default(&inst).unwrap();
        assert_eq!(sol.scaled_cost(&inst), direct.scaled_cost(&inst));
    }

    #[test]
    fn coarse_upper_bound_brackets_the_exact_optimum() {
        let eps_insensitive = CostModel::oneshot();
        for seed in [1u64, 2, 3] {
            let dag = layered(seed, 4, 4);
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag, r, eps_insensitive)
                .with_source_convention(SourceConvention::InitiallyBlue)
                .with_sink_convention(SinkConvention::RequireBlue);
            let exact = crate::api::ExactSolver::new().solve_default(&inst).unwrap();
            let coarse = CoarseSolver::with_k(3).solve_default(&inst).unwrap();
            assert!(
                coarse.scaled_cost(&inst) >= exact.scaled_cost(&inst),
                "seed {seed}: coarse beat the optimum"
            );
            certify::certify(&inst, &coarse.trace).expect("stitched trace certifies");
        }
    }

    #[test]
    fn coarse_delegates_multiprocessor_instances() {
        let dag = generate::chain(8);
        let inst = Instance::new(dag, 2, CostModel::base()).with_procs(2);
        let coarse = CoarseSolver {
            cfg: CoarseConfig {
                k: Some(4),
                inner: "greedy@mpp".to_string(),
            },
        };
        let sol = coarse.solve_default(&inst).unwrap();
        assert!(sol.trace.has_proc_tags() || sol.cost.transfers > 0 || sol.cost.computes > 0);
    }

    #[test]
    fn spec_round_trips() {
        assert_eq!(CoarseSolver::new().spec(), "coarse");
        assert_eq!(CoarseSolver::with_k(6).spec(), "coarse:6");
        let s = CoarseSolver {
            cfg: CoarseConfig {
                k: Some(4),
                inner: "greedy".to_string(),
            },
        };
        assert_eq!(s.spec(), "coarse:4/greedy");
    }
}

//! The solution half of the versioned wire format: a line-oriented text
//! document carrying a [`Solution`] plus the registry spec that
//! produced it.
//!
//! The instance half lives in `rbp_core::io` (it only needs core
//! types); solutions live here because [`Solution`], [`Quality`], and
//! [`Stats`] are solver types. Together they are the payloads of the
//! `rbp-service` batch protocol: a client submits an instance document,
//! the server answers with a solution document.
//!
//! ## Grammar (line-oriented, `#` comments allowed)
//!
//! ```text
//! solution v1
//! spec <registry-spec>            # e.g. exact, greedy:most-red-inputs/lru
//! quality optimal | upper-bound <lower_bound> | infeasible
//! cost <transfers> <computes>
//! stat <key> <value>              # zero or more, one per counter
//! trace <len>                     # followed by exactly <len> move lines
//! load <v> | store <v> | compute <v> | delete <v>
//! end
//! ```
//!
//! Multiprocessor traces append the executing processor to each move
//! line as a `p<proc>` token (`load 3 p1`). The annotation is emitted
//! only when the trace carries a nonzero processor tag, so classic
//! single-processor documents are byte-identical to what they always
//! were; the parser accepts the token on any move line.
//!
//! A parsed solution is **as transmitted**: the cost and quality are
//! whatever the document claims, because validation needs the instance
//! the trace pebbles. Callers that hold the instance should replay
//! `solution.trace` through `rbp_core::engine::simulate` before
//! trusting the numbers — exactly what the service does on receipt.

use crate::api::{Quality, Solution, Stats};
use rbp_core::{Cost, Move, Pebbling};
use rbp_graph::NodeId;
use std::fmt::Write as _;

/// The version token [`write_solution`] emits and [`parse_solution`]
/// accepts.
pub const SOLUTION_VERSION: &str = "v1";

/// Ceiling on the move-vector preallocation taken from an untrusted
/// `trace <len>` declaration. Documents with genuinely longer traces
/// still parse (the vector grows move by move); a hostile length alone
/// can no longer reserve gigabytes up front.
const TRACE_PREALLOC_CAP: usize = 1 << 16;

/// A parsed solution document: the registry spec that (claims to have)
/// produced the solution, plus the solution itself.
#[derive(Clone, Debug)]
pub struct WireSolution {
    /// The registry spec string from the `spec` line.
    pub spec: String,
    /// The transmitted solution (unvalidated; see the module docs).
    pub solution: Solution,
}

/// Errors from [`parse_solution`]. Line numbers are 1-based document
/// coordinates (offset by `first_line` in [`parse_solution_at`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The first non-comment line must be `solution v1`.
    MissingHeader,
    /// The header names a version this parser does not speak.
    UnsupportedVersion {
        /// Line of the header.
        line: usize,
        /// The version token found.
        found: String,
    },
    /// A statement could not be parsed.
    UnexpectedToken {
        /// 1-based line number of the offending statement.
        line: usize,
        /// The token (or fragment) that was rejected.
        token: String,
        /// What the parser expected in its place.
        expected: &'static str,
    },
    /// A single-valued field appeared twice.
    DuplicateField {
        /// Line of the second occurrence.
        line: usize,
        /// The field name.
        field: &'static str,
    },
    /// A required field never appeared.
    MissingField {
        /// The field name.
        field: &'static str,
    },
    /// The document ended without the `end` terminator.
    MissingEnd,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing 'solution v1' header"),
            ParseError::UnsupportedVersion { line, found } => {
                write!(f, "line {line}: unsupported solution version '{found}'")
            }
            ParseError::UnexpectedToken {
                line,
                token,
                expected,
            } => write!(f, "line {line}: unexpected '{token}', expected {expected}"),
            ParseError::DuplicateField { line, field } => {
                write!(f, "line {line}: duplicate '{field}' field")
            }
            ParseError::MissingField { field } => write!(f, "missing required '{field}' field"),
            ParseError::MissingEnd => write!(f, "missing 'end' terminator"),
        }
    }
}

impl std::error::Error for ParseError {}

fn unexpected(line: usize, token: impl Into<String>, expected: &'static str) -> ParseError {
    ParseError::UnexpectedToken {
        line,
        token: token.into(),
        expected,
    }
}

/// Serializes a solution (and the spec that produced it) as a `solution
/// v1` document. Stable output: fixed field order, stats in key order,
/// moves in trace order.
pub fn write_solution(spec: &str, sol: &Solution) -> String {
    let mut out = String::with_capacity(64 + sol.trace.len() * 12 + sol.stats.len() * 24);
    let _ = writeln!(out, "solution {SOLUTION_VERSION}");
    let _ = writeln!(out, "spec {spec}");
    match sol.quality {
        Quality::Optimal => out.push_str("quality optimal\n"),
        Quality::UpperBound { lower_bound } => {
            let _ = writeln!(out, "quality upper-bound {lower_bound}");
        }
        Quality::Infeasible => out.push_str("quality infeasible\n"),
    }
    let _ = writeln!(out, "cost {} {}", sol.cost.transfers, sol.cost.computes);
    for (k, v) in sol.stats.iter() {
        let _ = writeln!(out, "stat {k} {v}");
    }
    let _ = writeln!(out, "trace {}", sol.trace.len());
    let tagged = sol.trace.has_proc_tags();
    for (i, mv) in sol.trace.moves().iter().enumerate() {
        let (kw, v) = match mv {
            Move::Load(v) => ("load", v),
            Move::Store(v) => ("store", v),
            Move::Compute(v) => ("compute", v),
            Move::Delete(v) => ("delete", v),
        };
        if tagged {
            let _ = writeln!(out, "{kw} {} p{}", v.index(), sol.trace.proc_of(i));
        } else {
            let _ = writeln!(out, "{kw} {}", v.index());
        }
    }
    out.push_str("end\n");
    out
}

/// Parses a `solution v1` document.
pub fn parse_solution(text: &str) -> Result<WireSolution, ParseError> {
    parse_solution_at(text, 1)
}

/// Like [`parse_solution`], for a document embedded in a larger stream:
/// `first_line` is the 1-based line number of the first line of `text`
/// in the enclosing document, and every reported error line is in
/// document coordinates.
pub fn parse_solution_at(text: &str, first_line: usize) -> Result<WireSolution, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, raw)| (first_line + i, raw.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (hline, header) = lines.next().ok_or(ParseError::MissingHeader)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("solution") {
        return Err(ParseError::MissingHeader);
    }
    let version = parts.next().unwrap_or("");
    if version != SOLUTION_VERSION {
        return Err(ParseError::UnsupportedVersion {
            line: hline,
            found: version.to_string(),
        });
    }

    let mut spec: Option<String> = None;
    let mut quality: Option<Quality> = None;
    let mut cost: Option<Cost> = None;
    let mut stats = Stats::new();
    let mut trace: Option<Pebbling> = None;
    let mut remaining_moves: usize = 0;
    let mut saw_end = false;

    for (lineno, line) in lines {
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("nonempty line");
        if remaining_moves > 0 {
            if !matches!(keyword, "load" | "store" | "compute" | "delete") {
                return Err(unexpected(
                    lineno,
                    keyword,
                    "a move line: 'load|store|compute|delete <node>' ('trace <len>' declared more moves)",
                ));
            }
            let v = parse_node(lineno, parts.next())?;
            let proc = parse_proc(lineno, parts.next())?;
            let t = trace.as_mut().expect("trace started");
            let mv = match keyword {
                "load" => Move::Load(v),
                "store" => Move::Store(v),
                "compute" => Move::Compute(v),
                "delete" => Move::Delete(v),
                _ => unreachable!(),
            };
            t.push_on(mv, proc);
            remaining_moves -= 1;
            continue;
        }
        match keyword {
            "spec" => {
                if spec.is_some() {
                    return Err(ParseError::DuplicateField {
                        line: lineno,
                        field: "spec",
                    });
                }
                let rest = line["spec".len()..].trim();
                if rest.is_empty() {
                    return Err(unexpected(lineno, line, "a registry spec after 'spec'"));
                }
                spec = Some(rest.to_string());
            }
            "quality" => {
                if quality.is_some() {
                    return Err(ParseError::DuplicateField {
                        line: lineno,
                        field: "quality",
                    });
                }
                quality = Some(match parts.next() {
                    Some("optimal") => Quality::Optimal,
                    Some("infeasible") => Quality::Infeasible,
                    Some("upper-bound") => {
                        let token = parts.next().unwrap_or("");
                        let lower_bound = token.parse().map_err(|_| {
                            unexpected(lineno, token, "a lower bound after 'upper-bound'")
                        })?;
                        Quality::UpperBound { lower_bound }
                    }
                    other => {
                        return Err(unexpected(
                            lineno,
                            other.unwrap_or(""),
                            "'optimal', 'upper-bound <lb>', or 'infeasible'",
                        ))
                    }
                });
            }
            "cost" => {
                if cost.is_some() {
                    return Err(ParseError::DuplicateField {
                        line: lineno,
                        field: "cost",
                    });
                }
                let t = parse_u64(lineno, parts.next(), "transfer count in 'cost <t> <c>'")?;
                let c = parse_u64(lineno, parts.next(), "compute count in 'cost <t> <c>'")?;
                cost = Some(Cost {
                    transfers: t,
                    computes: c,
                });
            }
            "stat" => {
                let key = parts
                    .next()
                    .ok_or_else(|| unexpected(lineno, line, "a key in 'stat <key> <value>'"))?;
                let value = parse_u64(lineno, parts.next(), "a value in 'stat <key> <value>'")?;
                stats.set(key, value);
            }
            "trace" => {
                if trace.is_some() {
                    return Err(ParseError::DuplicateField {
                        line: lineno,
                        field: "trace",
                    });
                }
                let len =
                    parse_u64(lineno, parts.next(), "a move count in 'trace <len>'")? as usize;
                // the declared length is untrusted wire input: clamp the
                // preallocation so `trace 99999999999` cannot abort the
                // process on an impossible reservation — the vector still
                // grows naturally if the moves actually arrive
                trace = Some(Pebbling::with_capacity(len.min(TRACE_PREALLOC_CAP)));
                remaining_moves = len;
            }
            "end" => {
                saw_end = true;
                break;
            }
            other => {
                return Err(unexpected(
                    lineno,
                    other,
                    "'spec', 'quality', 'cost', 'stat', 'trace', or 'end'",
                ))
            }
        }
    }

    if remaining_moves > 0 || !saw_end {
        return Err(ParseError::MissingEnd);
    }
    let spec = spec.ok_or(ParseError::MissingField { field: "spec" })?;
    let quality = quality.ok_or(ParseError::MissingField { field: "quality" })?;
    let cost = cost.ok_or(ParseError::MissingField { field: "cost" })?;
    let trace = trace.ok_or(ParseError::MissingField { field: "trace" })?;
    Ok(WireSolution {
        spec,
        solution: Solution {
            trace,
            cost,
            quality,
            stats,
        },
    })
}

fn parse_u64(line: usize, token: Option<&str>, expected: &'static str) -> Result<u64, ParseError> {
    let token = token.unwrap_or("");
    token.parse().map_err(|_| unexpected(line, token, expected))
}

fn parse_node(line: usize, token: Option<&str>) -> Result<NodeId, ParseError> {
    let token = token.unwrap_or("");
    let v: usize = token
        .parse()
        .map_err(|_| unexpected(line, token, "a node id in a move line"))?;
    Ok(NodeId::new(v))
}

/// The optional trailing `p<proc>` annotation of a move line. Absent
/// means processor 0 (a classic single-processor move).
fn parse_proc(line: usize, token: Option<&str>) -> Result<u16, ParseError> {
    match token {
        None => Ok(0),
        Some(t) => t
            .strip_prefix('p')
            .and_then(|d| d.parse().ok())
            .ok_or_else(|| unexpected(line, t, "a 'p<proc>' annotation after the node id")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use rbp_core::{engine, CostModel, Instance};
    use rbp_graph::DagBuilder;

    fn diamond() -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        Instance::new(b.build().unwrap(), 3, CostModel::oneshot())
    }

    #[test]
    fn solver_output_round_trips() {
        let inst = diamond();
        for spec in ["exact", "greedy:fewest-blue-inputs/lru", "beam:4"] {
            let sol = registry::solve(spec, &inst).unwrap();
            let text = write_solution(spec, &sol);
            let back = parse_solution(&text).unwrap();
            assert_eq!(back.spec, spec);
            assert_eq!(back.solution.quality, sol.quality);
            assert_eq!(back.solution.cost, sol.cost);
            assert_eq!(back.solution.stats, sol.stats);
            assert_eq!(back.solution.trace.moves(), sol.trace.moves());
            // the transmitted trace replays to the transmitted cost
            let sim = engine::simulate(&inst, &back.solution.trace).unwrap();
            assert_eq!(sim.cost, back.solution.cost);
            // stable serialization
            assert_eq!(write_solution(&back.spec, &back.solution), text);
        }
    }

    #[test]
    fn upper_bound_and_infeasible_round_trip() {
        let mut sol = Solution::infeasible();
        let text = write_solution("greedy", &sol);
        assert_eq!(
            parse_solution(&text).unwrap().solution.quality,
            Quality::Infeasible
        );
        sol.quality = Quality::UpperBound { lower_bound: 17 };
        let back = parse_solution(&write_solution("beam:8", &sol)).unwrap();
        assert_eq!(
            back.solution.quality,
            Quality::UpperBound { lower_bound: 17 }
        );
        assert_eq!(back.spec, "beam:8");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\nsolution v1\n\nspec exact\nquality optimal\n# mid\ncost 2 3\ntrace 1\ncompute 0\nend\n";
        let w = parse_solution(text).unwrap();
        assert_eq!(w.solution.cost.transfers, 2);
        assert_eq!(w.solution.trace.len(), 1);
    }

    #[test]
    fn header_and_version_checked() {
        assert_eq!(parse_solution("").unwrap_err(), ParseError::MissingHeader);
        assert_eq!(
            parse_solution("spec exact\n").unwrap_err(),
            ParseError::MissingHeader
        );
        assert_eq!(
            parse_solution("solution v7\nend\n").unwrap_err(),
            ParseError::UnsupportedVersion {
                line: 1,
                found: "v7".into()
            }
        );
    }

    #[test]
    fn structural_errors_located() {
        let text = "solution v1\nspec exact\nquality optimal\ncost 0 3\ntrace 2\ncompute 0\nend\n";
        // 'end' arrives while a move is still owed
        match parse_solution(text).unwrap_err() {
            ParseError::UnexpectedToken { line: 7, token, .. } => assert_eq!(token, "end"),
            other => panic!("{other:?}"),
        }
        // ...and a document that simply stops short is MissingEnd
        let text = "solution v1\nspec exact\nquality optimal\ncost 0 3\ntrace 2\ncompute 0\n";
        assert_eq!(parse_solution(text).unwrap_err(), ParseError::MissingEnd);
        let text = "solution v1\nspec exact\nquality perfect\ncost 0 3\ntrace 0\nend\n";
        match parse_solution(text).unwrap_err() {
            ParseError::UnexpectedToken { line: 3, token, .. } => assert_eq!(token, "perfect"),
            other => panic!("{other:?}"),
        }
        let text = "solution v1\nspec exact\nquality optimal\ntrace 0\nend\n";
        assert_eq!(
            parse_solution(text).unwrap_err(),
            ParseError::MissingField { field: "cost" }
        );
    }

    #[test]
    fn embedded_documents_report_document_lines() {
        let err = parse_solution_at("solution v1\nspec exact\nquality good\n", 10).unwrap_err();
        match err {
            ParseError::UnexpectedToken { line, .. } => assert_eq!(line, 12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hostile_trace_length_does_not_preallocate() {
        // a declared length in the billions must fail as a normal parse
        // error (moves owed at `end`), not abort on a huge reservation
        let text = "solution v1\nspec exact\nquality optimal\ncost 0 0\ntrace 99999999999\nend\n";
        match parse_solution(text).unwrap_err() {
            ParseError::UnexpectedToken { line: 6, token, .. } => assert_eq!(token, "end"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiprocessor_solutions_round_trip_with_proc_tags() {
        let inst = diamond().with_procs(2);
        let sol = registry::solve("exact@mpp:2", &inst).unwrap();
        let text = write_solution("exact@mpp:2", &sol);
        let back = parse_solution(&text).unwrap();
        assert_eq!(back.solution.trace, sol.trace, "processor tags survive");
        assert_eq!(back.solution.cost, sol.cost);
        assert_eq!(write_solution(&back.spec, &back.solution), text);
        // untagged solutions stay in the classic single-proc shape
        let classic = registry::solve("exact", &diamond()).unwrap();
        let text = write_solution("exact", &classic);
        assert!(!text.contains(" p"), "no annotation without tags:\n{text}");
        // explicit p0 annotations parse back to an untagged trace
        let text =
            "solution v1\nspec exact\nquality optimal\ncost 0 1\ntrace 1\ncompute 0 p0\nend\n";
        let w = parse_solution(text).unwrap();
        assert!(!w.solution.trace.has_proc_tags());
    }

    #[test]
    fn malformed_proc_annotations_rejected() {
        for bad in ["compute 0 q1", "compute 0 p", "compute 0 px", "compute 0 1"] {
            let text = format!(
                "solution v1\nspec exact\nquality optimal\ncost 0 1\ntrace 1\n{bad}\nend\n"
            );
            match parse_solution(&text).unwrap_err() {
                ParseError::UnexpectedToken { line: 6, .. } => {}
                other => panic!("{bad}: {other:?}"),
            }
        }
    }

    #[test]
    fn spec_with_spaces_is_rejected_cleanly() {
        // registry specs are single tokens today, but the parser takes
        // the whole rest of the line so future arg grammars survive
        let text = "solution v1\nspec greedy:most-red-inputs/random(3)\nquality optimal\ncost 0 0\ntrace 0\nend\n";
        assert_eq!(
            parse_solution(text).unwrap().spec,
            "greedy:most-red-inputs/random(3)"
        );
    }
}

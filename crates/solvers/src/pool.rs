//! A minimal work-stealing-free work queue for embarrassingly parallel
//! fan-out: `tasks` independent jobs, claimed one at a time from an
//! atomic next-index counter by at most `available_parallelism` threads.
//!
//! This replaces static contiguous chunking (where one expensive
//! mid-range task serializes its whole chunk behind it) for the R-sweeps
//! and the greedy portfolio: a thread that finishes a cheap task
//! immediately claims the next unclaimed one, so the makespan is bounded
//! by the longest *single* task, not the longest chunk.
//!
//! The calling thread participates as a worker, so `run_indexed` spawns
//! `min(available_parallelism, tasks) − 1` threads — zero on a
//! single-core host or for a single task, which keeps tiny fan-outs
//! (e.g. seeding an incumbent from a greedy portfolio before a
//! microsecond-scale exact solve) free of thread-spawn overhead.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A caught panic payload from one task.
type Payload = Box<dyn std::any::Any + Send>;

/// Runs `f(0..tasks)` across at most `available_parallelism` threads
/// (caller included) and returns the results in index order.
///
/// `f` is called exactly once per index, in an unspecified order and
/// possibly concurrently. A panic in `f` is contained per task: the
/// remaining tasks still run to completion (no half-claimed work, no
/// deadlocked collector), and the first panic payload is re-raised on
/// the calling thread afterwards — so callers still observe `f`'s
/// panics, but a poisoned task can never wedge its siblings. Tasks are
/// independent by contract, so an unwound task leaves no state a later
/// task could observe broken (the `AssertUnwindSafe` below).
pub fn run_indexed<T, F>(tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(tasks);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, Payload>)>();

    let worker = |tx: mpsc::Sender<(usize, Result<T, Payload>)>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= tasks {
            break;
        }
        let result = catch_unwind(AssertUnwindSafe(|| f(i)));
        let _ = tx.send((i, result.map_err(|p| p as Payload)));
    };

    std::thread::scope(|scope| {
        for _ in 1..threads {
            let tx = tx.clone();
            let worker = &worker;
            scope.spawn(move || worker(tx));
        }
        // the caller claims tasks too, then drops its sender so the
        // collector below sees the channel close once every worker is done
        worker(tx);
    });

    let mut out: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    let mut first_panic: Option<Payload> = None;
    for (i, v) in rx {
        debug_assert!(out[i].is_none(), "task {i} ran twice");
        match v {
            Ok(v) => out[i] = Some(v),
            Err(p) => {
                first_panic.get_or_insert(p);
            }
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    out.into_iter()
        .map(|v| v.expect("every task sends exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_single_task_edge_cases() {
        assert_eq!(run_indexed(0, |_| 0u8), Vec::<u8>::new());
        assert_eq!(run_indexed(1, |i| i + 100), vec![100]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_indexed(64, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn a_panicking_task_propagates_but_does_not_wedge_siblings() {
        let calls = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(16, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("task 3 bomb");
                }
                i
            })
        }));
        // the panic reaches the caller with its payload intact...
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task 3 bomb");
        // ...but only after every task ran (no half-claimed work left)
        assert_eq!(calls.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn uneven_task_costs_do_not_serialize() {
        // one slow task early in the range must not block later ones
        // from completing (this is a liveness smoke test: with static
        // chunking the sleep would add to every task behind it in-chunk)
        let t0 = std::time::Instant::now();
        let out = run_indexed(8, |i| {
            if i == 1 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        // total ≈ one sleep plus epsilon, never 8 sleeps
        assert!(t0.elapsed() < std::time::Duration::from_millis(240));
    }
}

//! A minimal work-stealing-free work queue for embarrassingly parallel
//! fan-out: `tasks` independent jobs, claimed one at a time from an
//! atomic next-index counter by at most `available_parallelism` threads.
//!
//! This replaces static contiguous chunking (where one expensive
//! mid-range task serializes its whole chunk behind it) for the R-sweeps
//! and the greedy portfolio: a thread that finishes a cheap task
//! immediately claims the next unclaimed one, so the makespan is bounded
//! by the longest *single* task, not the longest chunk.
//!
//! The calling thread participates as a worker, so `run_indexed` spawns
//! `min(available_parallelism, tasks) − 1` threads — zero on a
//! single-core host or for a single task, which keeps tiny fan-outs
//! (e.g. seeding an incumbent from a greedy portfolio before a
//! microsecond-scale exact solve) free of thread-spawn overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `f(0..tasks)` across at most `available_parallelism` threads
/// (caller included) and returns the results in index order.
///
/// `f` is called exactly once per index, in an unspecified order and
/// possibly concurrently; panics in `f` propagate to the caller.
pub fn run_indexed<T, F>(tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(tasks);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();

    let worker = |tx: mpsc::Sender<(usize, T)>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= tasks {
            break;
        }
        tx.send((i, f(i))).expect("collector outlives workers");
    };

    std::thread::scope(|scope| {
        for _ in 1..threads {
            let tx = tx.clone();
            let worker = &worker;
            scope.spawn(move || worker(tx));
        }
        // the caller claims tasks too, then drops its sender so the
        // collector below sees the channel close once every worker is done
        worker(tx);
    });

    let mut out: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    for (i, v) in rx {
        debug_assert!(out[i].is_none(), "task {i} ran twice");
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("every task sends exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_single_task_edge_cases() {
        assert_eq!(run_indexed(0, |_| 0u8), Vec::<u8>::new());
        assert_eq!(run_indexed(1, |i| i + 100), vec![100]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_indexed(64, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn uneven_task_costs_do_not_serialize() {
        // one slow task early in the range must not block later ones
        // from completing (this is a liveness smoke test: with static
        // chunking the sleep would add to every task behind it in-chunk)
        let t0 = std::time::Instant::now();
        let out = run_indexed(8, |i| {
            if i == 1 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        // total ≈ one sleep plus epsilon, never 8 sleeps
        assert!(t0.elapsed() < std::time::Duration::from_millis(240));
    }
}

//! Solver-level errors.

use rbp_core::PebblingError;
use std::fmt;

/// Why a solver could not produce a pebbling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The instance violates R ≥ Δ+1 (or another engine-level precondition).
    Pebbling(PebblingError),
    /// The exact solver's state budget was exhausted before the goal.
    StateLimitExceeded {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// The search space was exhausted without reaching the goal (possible
    /// under restricted conventions, e.g. unreachable sinks).
    NoPebblingFound,
    /// The given visit order violates a group dependency: the named group
    /// needs an input that is a target of a group not yet visited.
    OrderDependencyViolated {
        /// Index (into the group list) of the group whose visit failed.
        group: usize,
    },
    /// A solver configuration holds a degenerate value (zero threads,
    /// zero beam width, zero state budget, …). Raised by the `validate()`
    /// path every [`crate::api::Solver`] entry point runs before solving.
    BadConfig {
        /// What is wrong with the configuration.
        reason: String,
    },
    /// A registry spec string did not parse — unknown solver name or
    /// malformed arguments (see `crate::registry` for the grammar).
    BadSpec {
        /// The offending spec string.
        spec: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A solver tried to return [`crate::api::Quality::UpperBound`]
    /// whose claimed `lower_bound` exceeds the trace's actual cost —
    /// an impossible bracket (`lower_bound ≤ optimum ≤ cost` must
    /// hold). Enforced centrally at [`crate::api::Solution`]
    /// construction so no individual solver is trusted with the
    /// invariant. Both figures are scaled by the model's ε.
    BoundViolation {
        /// The claimed lower bound (scaled).
        lower_bound: u128,
        /// The trace's engine-computed cost (scaled).
        cost: u128,
    },
    /// The solve was stopped by its [`crate::api::Budget`] (deadline,
    /// cancellation, or expansion cap) before any incumbent existed to
    /// degrade to. Solvers that hold an incumbent return it as
    /// [`crate::api::Quality::UpperBound`] instead of this error.
    Interrupted,
    /// The solver panicked mid-solve and the panic was contained by
    /// [`crate::api::Solver::solve_caught`]. The per-job search state
    /// (arena, node table, heaps) died with the unwound stack, so the
    /// containing process stays healthy; `payload` is the stringified
    /// panic message for operator logs.
    Panicked {
        /// The panic payload, downcast to a string when possible.
        payload: String,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Pebbling(e) => write!(f, "{e}"),
            SolveError::StateLimitExceeded { limit } => {
                write!(f, "exact solver exceeded its state budget of {limit}")
            }
            SolveError::NoPebblingFound => write!(f, "search space exhausted without a pebbling"),
            SolveError::OrderDependencyViolated { group } => {
                write!(f, "visit order violates a dependency at group {group}")
            }
            SolveError::BadConfig { reason } => write!(f, "bad solver configuration: {reason}"),
            SolveError::BadSpec { spec, reason } => {
                write!(f, "bad solver spec '{spec}': {reason}")
            }
            SolveError::BoundViolation { lower_bound, cost } => {
                write!(
                    f,
                    "solver claimed lower bound {lower_bound} above its own cost {cost}"
                )
            }
            SolveError::Interrupted => {
                write!(
                    f,
                    "solve interrupted by its budget before any incumbent existed"
                )
            }
            SolveError::Panicked { payload } => {
                write!(f, "solver panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<PebblingError> for SolveError {
    fn from(e: PebblingError) -> Self {
        SolveError::Pebbling(e)
    }
}

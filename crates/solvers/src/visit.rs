//! Visit-order solvers for input-group DAGs.
//!
//! All of the paper's hardness constructions (Theorems 2–4) are built from
//! *input groups*: sets of nodes that all feed one or more *target* nodes,
//! with group sizes chosen so that computing a target requires every
//! available red pebble. The paper's analyses show that on such DAGs a
//! pebbling is characterized by the order in which the groups are visited;
//! the cost is then determined by which values must round-trip through
//! slow memory between visits.
//!
//! This module provides:
//! - [`GroupedDag`]: the group structure over a DAG, with dependencies
//!   derived from target-in-other-group membership;
//! - a deterministic scheduler ([`GroupedDag::emit`]) that turns a visit
//!   order into a concrete move trace (legal in all four models), spilling
//!   on demand — dead values are deleted for free, sinks are stored, live
//!   values are stored and reloaded;
//! - [`best_order`]: exact branch-and-bound over all dependency-respecting
//!   visit orders, scored by the scheduler's true (engine-identical) cost;
//! - [`held_karp`]: O(2^k·k²) DP over visit orders for pairwise
//!   transition-cost models, used by the reductions for larger instances
//!   and cross-validated against [`best_order`] in tests.

use crate::error::SolveError;
use rbp_core::{Cost, Instance, Move, Pebbling, State};
use rbp_graph::NodeId;

/// One input group: `inputs` all have edges to every node in `targets`
/// (the DAG itself is the source of truth; this is the schedule view).
#[derive(Clone, Debug)]
pub struct GroupSpec {
    /// The group members that must simultaneously hold red pebbles.
    pub inputs: Vec<NodeId>,
    /// The nodes computed while the group is held red.
    pub targets: Vec<NodeId>,
}

/// A DAG viewed as a collection of input groups.
#[derive(Clone, Debug)]
pub struct GroupedDag {
    groups: Vec<GroupSpec>,
    /// deps[g] = groups whose targets appear among g's inputs (must be
    /// visited before g).
    deps: Vec<Vec<usize>>,
    /// member_groups[node] = groups that list the node as an input.
    member_groups: Vec<Vec<u32>>,
}

impl GroupedDag {
    /// Builds the group view. `n_nodes` is the underlying DAG's node
    /// count; dependencies are derived from targets appearing as inputs
    /// of other groups.
    pub fn new(n_nodes: usize, groups: Vec<GroupSpec>) -> Self {
        let mut target_owner: Vec<Option<u32>> = vec![None; n_nodes];
        for (gi, g) in groups.iter().enumerate() {
            for &t in &g.targets {
                target_owner[t.index()] = Some(gi as u32);
            }
        }
        let mut member_groups: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
        for (gi, g) in groups.iter().enumerate() {
            for &u in &g.inputs {
                member_groups[u.index()].push(gi as u32);
                if let Some(owner) = target_owner[u.index()] {
                    if owner as usize != gi && !deps[gi].contains(&(owner as usize)) {
                        deps[gi].push(owner as usize);
                    }
                }
            }
        }
        GroupedDag {
            groups,
            deps,
            member_groups,
        }
    }

    /// The groups.
    pub fn groups(&self) -> &[GroupSpec] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Group dependency lists (indices of groups that must precede).
    pub fn deps(&self) -> &[Vec<usize>] {
        &self.deps
    }

    /// Whether `order` is a permutation of all groups respecting deps.
    pub fn is_valid_order(&self, order: &[usize]) -> bool {
        if order.len() != self.groups.len() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.groups.len()];
        for (i, &g) in order.iter().enumerate() {
            if g >= self.groups.len() || pos[g] != usize::MAX {
                return false;
            }
            pos[g] = i;
        }
        (0..self.groups.len()).all(|g| self.deps[g].iter().all(|&d| pos[d] < pos[g]))
    }

    /// Emits the concrete pebbling for a visit order, starting from the
    /// instance's initial configuration.
    pub fn emit(&self, instance: &Instance, order: &[usize]) -> Result<Pebbling, SolveError> {
        let mut state = State::initial(instance);
        let mut trace = Pebbling::new();
        self.emit_onto(instance, order, &mut state, &mut trace)?;
        Ok(trace)
    }

    /// Emits onto an existing state/trace (used after a construction's
    /// prologue, e.g. the H2C phase that computes the former sources).
    pub fn emit_onto(
        &self,
        instance: &Instance,
        order: &[usize],
        state: &mut State,
        trace: &mut Pebbling,
    ) -> Result<(), SolveError> {
        let mut uses = self.initial_uses();
        for (step, &g) in order.iter().enumerate() {
            let mut sink = |mv: Move| trace.push(mv);
            self.visit_group(instance, g, state, &mut uses, &mut sink)
                .map_err(|e| match e {
                    SolveError::OrderDependencyViolated { .. } => {
                        SolveError::OrderDependencyViolated { group: step }
                    }
                    other => other,
                })?;
        }
        Ok(())
    }

    fn initial_uses(&self) -> Vec<u32> {
        self.member_groups
            .iter()
            .map(|groups| groups.len() as u32)
            .collect()
    }

    /// Visits one group: makes all inputs red (loading, or computing
    /// sources first-time), computes its targets, and decrements input
    /// use-counts. Emits moves into `out` and returns the scaled cost
    /// delta. This is the single cost authority the searches share.
    fn visit_group(
        &self,
        instance: &Instance,
        g: usize,
        state: &mut State,
        uses: &mut [u32],
        out: &mut impl FnMut(Move),
    ) -> Result<u128, SolveError> {
        let dag = instance.dag();
        let mut scaled = 0u128;
        let spec = &self.groups[g];

        // acquire inputs
        for &u in &spec.inputs {
            if state.is_red(u) {
                continue;
            }
            scaled += self.ensure_slot(instance, state, uses, &spec.inputs, out)?;
            let recomputable_source = dag.is_source(u) && instance.model().allows_recompute();
            if state.is_blue(u) {
                // a blue *source* is recomputed in place of a load where
                // the model allows it (free in base/nodel, ε in compcost
                // — always at most the load's cost 1)
                let mv = if recomputable_source {
                    Move::Compute(u)
                } else {
                    Move::Load(u)
                };
                scaled += apply_move(instance, state, mv, out)?;
            } else if !state.is_computed(u) && dag.is_source(u) {
                scaled += apply_move(instance, state, Move::Compute(u), out)?;
            } else if state.is_computed(u) && recomputable_source {
                // base/compcost: a deleted source is recomputed cheaply
                scaled += apply_move(instance, state, Move::Compute(u), out)?;
            } else {
                // an uncomputed non-source input: its owning group was not
                // visited yet
                return Err(SolveError::OrderDependencyViolated { group: g });
            }
        }

        // compute targets (earlier targets of the same visit are evictable
        // unless they feed the next target — e.g. the chain of an expanded
        // CD ladder — so the pin set is inputs ∪ preds(target))
        let mut pinned: Vec<NodeId> = Vec::with_capacity(spec.inputs.len() + 2);
        for &t in &spec.targets {
            pinned.clear();
            pinned.extend_from_slice(&spec.inputs);
            for &p in dag.preds(t) {
                if !pinned.contains(&p) {
                    pinned.push(p);
                }
            }
            scaled += self.ensure_slot(instance, state, uses, &pinned, out)?;
            scaled += apply_move(instance, state, Move::Compute(t), out)?;
        }

        for &u in &spec.inputs {
            uses[u.index()] -= 1;
        }
        Ok(scaled)
    }

    /// Frees a red slot if needed. Victims in preference order:
    /// *disposable* values — dead non-sinks, plus sources the model can
    /// recompute cheaply — are deleted free (stored in nodel); then sinks
    /// (stored once, never reloaded); then live values with the fewest
    /// remaining group-uses (stored, reloaded later).
    fn ensure_slot(
        &self,
        instance: &Instance,
        state: &mut State,
        uses: &[u32],
        pinned: &[NodeId],
        out: &mut impl FnMut(Move),
    ) -> Result<u128, SolveError> {
        let eps = instance.model().epsilon();
        let mut scaled = 0u128;
        while state.red_count() >= instance.red_limit() {
            let dag = instance.dag();
            let is_pinned = |v: usize| pinned.iter().any(|p| p.index() == v);
            let mut dead: Option<usize> = None;
            let mut sink: Option<usize> = None;
            let mut live: Option<(u32, usize)> = None;
            for v in state.red_set().iter() {
                if is_pinned(v) {
                    continue;
                }
                let node = NodeId::new(v);
                let disposable = uses[v] == 0
                    || (dag.is_source(node)
                        && instance.model().allows_recompute()
                        && instance.model().allows_delete());
                if dag.is_sink(node) {
                    sink.get_or_insert(v);
                } else if disposable {
                    dead.get_or_insert(v);
                } else if live.is_none() || (uses[v], v) < live.unwrap() {
                    live = Some((uses[v], v));
                }
            }
            let (victim, dispose) = if let Some(v) = dead {
                (v, instance.model().allows_delete())
            } else if let Some(v) = sink {
                (v, false)
            } else if let Some((_, v)) = live {
                (v, false)
            } else {
                unreachable!("all red pebbles pinned; instance infeasible for this group");
            };
            let node = NodeId::new(victim);
            let mv = if dispose {
                Move::Delete(node)
            } else {
                Move::Store(node)
            };
            let c = state.apply(mv, instance).map_err(SolveError::Pebbling)?;
            out(mv);
            scaled += c.scaled(eps);
        }
        Ok(scaled)
    }
}

/// Applies one move, forwards it to the sink, and returns its scaled cost.
fn apply_move(
    instance: &Instance,
    state: &mut State,
    mv: Move,
    out: &mut impl FnMut(Move),
) -> Result<u128, SolveError> {
    let c = state.apply(mv, instance).map_err(SolveError::Pebbling)?;
    out(mv);
    Ok(c.scaled(instance.model().epsilon()))
}

/// Result of a visit-order search.
#[derive(Clone, Debug)]
pub struct OrderResult {
    /// The best order found.
    pub order: Vec<usize>,
    /// Its exact cost (engine-identical).
    pub cost: Cost,
    /// The concrete trace for that order.
    pub trace: Pebbling,
    /// Scaled cost (comparison key).
    pub scaled: u128,
}

/// Exhaustive branch-and-bound over all dependency-respecting visit
/// orders, scored with the scheduler's exact cost. Exponential in the
/// group count — intended for the reduction experiments' instance sizes
/// (≤ ~10 groups).
pub fn best_order(grouped: &GroupedDag, instance: &Instance) -> Result<OrderResult, SolveError> {
    best_order_from(grouped, instance, &State::initial(instance))
}

/// Like [`best_order`], but starting from a given configuration — used
/// after a construction prologue (e.g. the H2C phase that computes and
/// parks the former sources). The returned trace and cost cover only the
/// scheduled part, not the prologue.
pub fn best_order_from(
    grouped: &GroupedDag,
    instance: &Instance,
    initial: &State,
) -> Result<OrderResult, SolveError> {
    let k = grouped.len();
    if k == 0 {
        return Ok(OrderResult {
            order: Vec::new(),
            cost: Cost::ZERO,
            trace: Pebbling::new(),
            scaled: 0,
        });
    }
    let mut best_scaled = u128::MAX;
    let mut best_order_out: Option<Vec<usize>> = None;

    struct Frame {
        state: State,
        uses: Vec<u32>,
        visited: Vec<bool>,
        order: Vec<usize>,
        scaled: u128,
    }

    let mut stack = vec![Frame {
        state: initial.clone(),
        uses: grouped.initial_uses(),
        visited: vec![false; k],
        order: Vec::new(),
        scaled: 0,
    }];

    while let Some(frame) = stack.pop() {
        if frame.order.len() == k {
            if frame.scaled < best_scaled {
                best_scaled = frame.scaled;
                best_order_out = Some(frame.order.clone());
            }
            continue;
        }
        for g in 0..k {
            if frame.visited[g] {
                continue;
            }
            if !grouped.deps[g].iter().all(|&d| frame.visited[d]) {
                continue;
            }
            let mut state = frame.state.clone();
            let mut uses = frame.uses.clone();
            let mut discard = |_mv: Move| {};
            let delta = match grouped.visit_group(instance, g, &mut state, &mut uses, &mut discard)
            {
                Ok(d) => d,
                Err(SolveError::OrderDependencyViolated { .. }) => continue,
                Err(e) => return Err(e),
            };
            let scaled = frame.scaled + delta;
            if scaled >= best_scaled {
                continue; // bound: costs only grow
            }
            let mut visited = frame.visited.clone();
            visited[g] = true;
            let mut order = frame.order.clone();
            order.push(g);
            stack.push(Frame {
                state,
                uses,
                visited,
                order,
                scaled,
            });
        }
    }

    let order = best_order_out.ok_or(SolveError::NoPebblingFound)?;
    let mut state = initial.clone();
    let mut trace = Pebbling::new();
    grouped.emit_onto(instance, &order, &mut state, &mut trace)?;
    let stats = trace.stats();
    let cost = Cost {
        transfers: stats.transfers(),
        computes: stats.computes,
    };
    Ok(OrderResult {
        scaled: cost.scaled(instance.model().epsilon()),
        cost,
        order,
        trace,
    })
}

/// Held–Karp DP over visit orders for *pairwise* transition-cost models:
/// `trans(prev, next)` is the cost charged when `next` is visited right
/// after `prev` (`prev = None` for the first visit). Respects `deps`.
/// Returns the minimal total and an optimal order, or `None` if no valid
/// order exists. O(2^k · k²) time, O(2^k · k) memory — k ≤ 24 or so.
pub fn held_karp(
    k: usize,
    deps: &[Vec<usize>],
    trans: impl Fn(Option<usize>, usize) -> u64,
) -> Option<(u64, Vec<usize>)> {
    assert!(k <= 24, "held_karp is exponential; k = {k} too large");
    if k == 0 {
        return Some((0, Vec::new()));
    }
    let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
    let dep_masks: Vec<u32> = (0..k)
        .map(|g| deps[g].iter().fold(0u32, |m, &d| m | (1 << d)))
        .collect();
    let size = 1usize << k;
    let mut dp = vec![u64::MAX; size * k];
    let mut parent = vec![u8::MAX; size * k];
    for g in 0..k {
        if dep_masks[g] == 0 {
            dp[(1usize << g) * k + g] = trans(None, g);
        }
    }
    for mask in 1..=full {
        let m = mask as usize;
        for last in 0..k {
            let cur = dp[m * k + last];
            if cur == u64::MAX || mask & (1 << last) == 0 {
                continue;
            }
            for next in 0..k {
                if mask & (1 << next) != 0 {
                    continue;
                }
                // next's dependencies must be contained in mask
                if dep_masks[next] & !mask != 0 {
                    continue;
                }
                let nm = (mask | (1 << next)) as usize;
                let cand = cur.saturating_add(trans(Some(last), next));
                if cand < dp[nm * k + next] {
                    dp[nm * k + next] = cand;
                    parent[nm * k + next] = last as u8;
                }
            }
        }
    }
    let fm = full as usize;
    let (best_last, &best) = (0..k)
        .map(|g| (g, &dp[fm * k + g]))
        .min_by_key(|&(_, c)| *c)?;
    if best == u64::MAX {
        return None;
    }
    // reconstruct
    let mut order = Vec::with_capacity(k);
    let mut mask = full as usize;
    let mut last = best_last;
    loop {
        order.push(last);
        let p = parent[mask * k + last];
        let prev_mask = mask & !(1usize << last);
        if prev_mask == 0 {
            break;
        }
        mask = prev_mask;
        last = p as usize;
    }
    order.reverse();
    Some((best, order))
}

impl OrderResult {
    /// Collapses the visit-order result into the unified
    /// [`Solution`](crate::api::Solution)
    /// shape: the trace is engine-validated and tagged as an upper bound
    /// (optimal only among grouped schedules, which the
    /// [`Quality::Optimal`](crate::api::Quality::Optimal) upgrade
    /// detects when the cost meets the structural lower bound). The
    /// group order is retained in the trace; node-level order is
    /// recoverable via
    /// [`Solution::computation_order`](crate::api::Solution::computation_order).
    pub fn into_solution(self, instance: &Instance) -> Result<crate::api::Solution, SolveError> {
        let quality = crate::api::upper_bound_quality(instance, self.cost);
        crate::api::Solution::validated(instance, self.trace, quality, crate::api::Stats::new())
    }
}

/// A [`GroupedDag`]'s branch-and-bound visit-order search behind the
/// [`Solver`](crate::api::Solver) trait: the grouped structure is fixed
/// at construction, so any instance over the same DAG solves through the
/// one unified interface. The budget is ignored (the search is
/// exponential only in the *group* count, which the paper's
/// constructions keep ≤ ~10).
pub struct VisitOrderSolver {
    grouped: GroupedDag,
}

impl VisitOrderSolver {
    /// Wraps a grouped view of the DAG.
    pub fn new(grouped: GroupedDag) -> Self {
        VisitOrderSolver { grouped }
    }

    /// The underlying group structure.
    pub fn grouped(&self) -> &GroupedDag {
        &self.grouped
    }
}

impl crate::api::Solver for VisitOrderSolver {
    fn name(&self) -> &str {
        "visit-order"
    }

    fn solve(
        &self,
        instance: &Instance,
        _ctx: &crate::api::SolveCtx,
    ) -> Result<crate::api::Solution, SolveError> {
        let res = best_order(&self.grouped, instance)?;
        let mut sol = res.into_solution(instance)?;
        sol.stats.set("groups", self.grouped.len() as u64);
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::CostModel;
    use rbp_graph::DagBuilder;

    /// Two disjoint input groups of size 2 sharing one node, each with one
    /// target; R = 3.
    fn overlap_construction() -> (GroupedDag, Instance) {
        let mut b = DagBuilder::new(0);
        let a1 = b.add_node(); // group A: {a1, shared}
        let shared = b.add_node();
        let b1 = b.add_node(); // group B: {shared, b1}
        let ta = b.add_node();
        let tb = b.add_node();
        b.add_group_edges(&[a1, shared], ta);
        b.add_group_edges(&[shared, b1], tb);
        let dag = b.build().unwrap();
        let grouped = GroupedDag::new(
            dag.n(),
            vec![
                GroupSpec {
                    inputs: vec![a1, shared],
                    targets: vec![ta],
                },
                GroupSpec {
                    inputs: vec![shared, b1],
                    targets: vec![tb],
                },
            ],
        );
        (grouped, Instance::new(dag, 3, CostModel::oneshot()))
    }

    #[test]
    fn emit_produces_valid_trace() {
        let (grouped, inst) = overlap_construction();
        for order in [[0usize, 1], [1, 0]] {
            let trace = grouped.emit(&inst, &order).unwrap();
            let rep = rbp_core::simulate(&inst, &trace).unwrap();
            assert!(rep.peak_red <= 3);
        }
    }

    #[test]
    fn emit_cost_accounts_for_shared_nodes() {
        let (grouped, inst) = overlap_construction();
        // visiting consecutively: shared node stays red. Cost: ta must be
        // stored when B needs its slot (ta is a sink) → 1 transfer.
        let trace = grouped.emit(&inst, &[0, 1]).unwrap();
        let rep = rbp_core::simulate(&inst, &trace).unwrap();
        assert_eq!(rep.cost.transfers, 1);
    }

    #[test]
    fn best_order_matches_exhaustive_exact() {
        let (grouped, inst) = overlap_construction();
        let best = best_order(&grouped, &inst).unwrap();
        // cross-check against the unrestricted exact solver: visit-order
        // pebblings are optimal on input-group DAGs (paper, Sections 6–8)
        let exact = crate::exact::solve_exact(&inst).unwrap();
        assert_eq!(
            best.scaled,
            exact.cost.scaled(inst.model().epsilon()),
            "visit-order optimum diverges from true optimum"
        );
    }

    #[test]
    fn dependencies_derived_from_targets() {
        // group 1's input includes group 0's target
        let mut b = DagBuilder::new(0);
        let x = b.add_node();
        let t0 = b.add_node();
        let y = b.add_node();
        let t1 = b.add_node();
        b.add_group_edges(&[x], t0);
        b.add_group_edges(&[t0, y], t1);
        let dag = b.build().unwrap();
        let grouped = GroupedDag::new(
            dag.n(),
            vec![
                GroupSpec {
                    inputs: vec![x],
                    targets: vec![t0],
                },
                GroupSpec {
                    inputs: vec![t0, y],
                    targets: vec![t1],
                },
            ],
        );
        assert_eq!(grouped.deps()[1], vec![0]);
        assert!(grouped.is_valid_order(&[0, 1]));
        assert!(!grouped.is_valid_order(&[1, 0]));
        // emitting the invalid order fails
        let inst = Instance::new(dag, 3, CostModel::oneshot());
        assert!(matches!(
            grouped.emit(&inst, &[1, 0]),
            Err(SolveError::OrderDependencyViolated { .. })
        ));
        assert!(grouped.emit(&inst, &[0, 1]).is_ok());
    }

    #[test]
    fn held_karp_finds_cheapest_path_order() {
        // 3 groups, no deps; trans cost = |prev - next| with first free
        let (cost, order) = held_karp(3, &[vec![], vec![], vec![]], |prev, next| match prev {
            None => 0,
            Some(p) => (p as i64 - next as i64).unsigned_abs(),
        })
        .unwrap();
        assert_eq!(cost, 2, "monotone order 0,1,2 (or reverse) costs 1+1");
        assert!(order == vec![0, 1, 2] || order == vec![2, 1, 0]);
    }

    #[test]
    fn held_karp_respects_dependencies() {
        // 1 depends on 0; make 1-first nominally cheaper to tempt it
        let deps = vec![vec![], vec![0]];
        let (cost, order) = held_karp(2, &deps, |prev, next| match (prev, next) {
            (None, 1) => 0,
            (None, 0) => 5,
            _ => 1,
        })
        .unwrap();
        assert_eq!(order, vec![0, 1]);
        assert_eq!(cost, 6);
    }

    #[test]
    fn held_karp_detects_impossible_deps() {
        // circular dependency: no valid order
        let deps = vec![vec![1], vec![0]];
        assert!(held_karp(2, &deps, |_, _| 1).is_none());
    }

    #[test]
    fn held_karp_matches_best_order_on_construction() {
        let (grouped, inst) = overlap_construction();
        let best = best_order(&grouped, &inst).unwrap();
        // pairwise model: consecutive overlap saves 2 transfers per shared
        // node; derive transition costs by probing the scheduler
        let probe = |order: &[usize]| {
            let trace = grouped.emit(&inst, order).unwrap();
            rbp_core::simulate(&inst, &trace)
                .unwrap()
                .cost
                .scaled(inst.model().epsilon()) as u64
        };
        let c01 = probe(&[0, 1]);
        let c10 = probe(&[1, 0]);
        assert_eq!(best.scaled as u64, c01.min(c10));
    }
}

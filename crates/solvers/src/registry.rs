//! The solver registry: string specs to boxed [`Solver`]s.
//!
//! One stable naming scheme for every solver family, so experiment
//! harnesses, sweeps, CLIs, and services can select solvers from
//! configuration instead of linking against per-solver free functions.
//! A new solver family (e.g. the multiprocessor red-blue pebbling line)
//! slots in as one more [`Registry::register`] call, not a new API.
//!
//! ## Spec grammar
//!
//! ```text
//! spec := family [":" args]
//!
//! exact                         sequential exact (pruned, A*, greedy-seeded)
//! exact:unseeded                same, without the greedy incumbent seed
//! exact-parallel[:THREADS]      hash-sharded parallel exact; THREADS ≥ 1
//!                               (default: all cores)
//! reference                     brute-force exact (no pruning/heuristic/seed)
//! greedy[:RULE[/EVICT]]         one greedy configuration
//!     RULE  ∈ most-red-inputs | fewest-blue-inputs | highest-red-ratio
//!     EVICT ∈ min-uses | lru | fifo | random(SEED)
//! beam[:WIDTH]                  beam search; WIDTH ≥ 1 (default 8)
//! portfolio                     best of the nine greedy configurations
//! exact@mpp[:P]                 exact multiprocessor pebbling (Dijkstra over
//!                               the product state space); P ≥ 1 overrides the
//!                               instance's processor count
//! greedy@mpp[:P]                greedy multiprocessor list scheduling
//! coarse[:K[/INNER]]            hierarchical coarsening: partition into K
//!                               acyclic groups (default: ⌈n/12⌉; K may be
//!                               'auto'), solve each with INNER (any spec in
//!                               this grammar; default portfolio), stitch the
//!                               traces with boundary stores/loads
//! ```
//!
//! Degenerate numeric arguments (`exact-parallel:0`, `beam:0`) parse
//! but fail at solve time with [`SolveError::BadConfig`], mirroring the
//! programmatic API; malformed specs fail at parse time with
//! [`SolveError::BadSpec`].
//!
//! # Example
//! ```
//! use rbp_core::{CostModel, Instance};
//! use rbp_graph::DagBuilder;
//! use rbp_solvers::registry;
//!
//! let mut b = DagBuilder::new(3);
//! b.add_edge(0, 2);
//! b.add_edge(1, 2);
//! let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
//! let sol = registry::solve("exact", &inst).unwrap();
//! assert!(sol.is_optimal());
//! assert_eq!(sol.cost.transfers, 0);
//! ```

use crate::api::{
    BeamSolver, ExactSolver, GreedySolver, ParallelExactSolver, PortfolioSolver, Solution,
    SolveCtx, Solver,
};
use crate::beam::BeamConfig;
use crate::coarse::{CoarseConfig, CoarseSolver};
use crate::error::SolveError;
use crate::greedy::{EvictionPolicy, GreedyConfig, SelectionRule};
use crate::mpp::{ExactMppSolver, GreedyMppSolver};
use crate::parallel::ParallelConfig;
use rbp_core::Instance;

/// A factory turning optional spec arguments (the part after `:`) into
/// a boxed solver.
pub type SolverFactory =
    Box<dyn Fn(Option<&str>) -> Result<Box<dyn Solver>, SolveError> + Send + Sync>;

struct Entry {
    family: String,
    help: &'static str,
    factory: SolverFactory,
}

/// A mapping from spec families to solver factories. Construct with
/// [`Registry::with_builtins`] and extend with [`Registry::register`].
pub struct Registry {
    entries: Vec<Entry>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_builtins()
    }
}

impl Registry {
    /// An empty registry (no families).
    pub fn empty() -> Self {
        Registry {
            entries: Vec::new(),
        }
    }

    /// The built-in families listed in the module docs.
    pub fn with_builtins() -> Self {
        let mut r = Registry::empty();
        r.register(
            "exact",
            "sequential exact (pruned, A*, greedy-seeded)",
            |a| match a {
                None => Ok(Box::new(ExactSolver::new())),
                Some("unseeded") => Ok(Box::new(ExactSolver::new().unseeded())),
                Some(other) => Err(bad_args("exact", other, "expected no args or 'unseeded'")),
            },
        );
        r.register(
            "exact-parallel",
            "hash-sharded parallel exact; arg = thread count (default: all cores)",
            |a| {
                let cfg = match a {
                    None => ParallelConfig::default(),
                    Some(n) => {
                        let threads: usize = n.parse().map_err(|_| {
                            bad_args("exact-parallel", n, "thread count must be an integer")
                        })?;
                        ParallelConfig {
                            threads,
                            ..ParallelConfig::default()
                        }
                    }
                };
                Ok(Box::new(ParallelExactSolver { cfg }))
            },
        );
        r.register(
            "reference",
            "brute-force exact (no pruning, heuristic, or seed)",
            |a| match a {
                None => Ok(Box::new(ExactSolver::reference())),
                Some(other) => Err(bad_args("reference", other, "takes no arguments")),
            },
        );
        r.register(
            "greedy",
            "one greedy configuration; arg = RULE[/EVICT]",
            |a| {
                let cfg = match a {
                    None => GreedyConfig::default(),
                    Some(args) => parse_greedy_args(args)?,
                };
                Ok(Box::new(GreedySolver { cfg }))
            },
        );
        r.register("beam", "beam search; arg = width (default 8)", |a| {
            let cfg = match a {
                None => BeamConfig::default(),
                Some(w) => BeamConfig {
                    width: w
                        .parse()
                        .map_err(|_| bad_args("beam", w, "width must be an integer"))?,
                },
            };
            Ok(Box::new(BeamSolver { cfg }))
        });
        r.register(
            "portfolio",
            "best of the nine greedy configurations",
            |a| match a {
                None => Ok(Box::new(PortfolioSolver::new())),
                Some(other) => Err(bad_args("portfolio", other, "takes no arguments")),
            },
        );
        r.register(
            "exact@mpp",
            "exact multiprocessor pebbling; arg = processor count (default: the instance's)",
            |a| {
                Ok(Box::new(ExactMppSolver {
                    procs: parse_procs("exact@mpp", a)?,
                    cfg: Default::default(),
                }))
            },
        );
        r.register(
            "greedy@mpp",
            "greedy multiprocessor list scheduling; arg = processor count (default: the instance's)",
            |a| {
                Ok(Box::new(GreedyMppSolver {
                    procs: parse_procs("greedy@mpp", a)?,
                }))
            },
        );
        r.register(
            "coarse",
            "hierarchical coarsening; arg = K[/INNER] (K ≥ 1 or 'auto', INNER any spec)",
            |a| {
                Ok(Box::new(CoarseSolver {
                    cfg: parse_coarse_args(a)?,
                }))
            },
        );
        r
    }

    /// Registers (or replaces) a family.
    pub fn register(
        &mut self,
        family: &str,
        help: &'static str,
        factory: impl Fn(Option<&str>) -> Result<Box<dyn Solver>, SolveError> + Send + Sync + 'static,
    ) {
        self.entries.retain(|e| e.family != family);
        self.entries.push(Entry {
            family: family.to_string(),
            help,
            factory: Box::new(factory),
        });
    }

    /// Parses a spec into a boxed solver.
    pub fn parse(&self, spec: &str) -> Result<Box<dyn Solver>, SolveError> {
        let (family, args) = match spec.split_once(':') {
            Some((f, a)) => (f, Some(a)),
            None => (spec, None),
        };
        let entry = self
            .entries
            .iter()
            .find(|e| e.family == family)
            .ok_or_else(|| SolveError::BadSpec {
                spec: spec.to_string(),
                reason: format!(
                    "unknown solver family '{family}'; known: {}",
                    self.entries
                        .iter()
                        .map(|e| e.family.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            })?;
        (entry.factory)(args)
    }

    /// `(family, help)` pairs, in registration order.
    pub fn families(&self) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.entries.iter().map(|e| (e.family.as_str(), e.help))
    }
}

fn bad_args(family: &str, args: &str, reason: &str) -> SolveError {
    SolveError::BadSpec {
        spec: format!("{family}:{args}"),
        reason: reason.to_string(),
    }
}

fn parse_procs(family: &'static str, a: Option<&str>) -> Result<Option<u32>, SolveError> {
    match a {
        None => Ok(None),
        Some(p) => {
            let procs: u32 = p
                .parse()
                .map_err(|_| bad_args(family, p, "processor count must be an integer"))?;
            if procs == 0 {
                return Err(bad_args(family, p, "processor count must be >= 1"));
            }
            Ok(Some(procs))
        }
    }
}

fn parse_coarse_args(a: Option<&str>) -> Result<CoarseConfig, SolveError> {
    let Some(args) = a else {
        return Ok(CoarseConfig::default());
    };
    let (k_s, inner_s) = match args.split_once('/') {
        Some((k, inner)) => (k, Some(inner)),
        None => (args, None),
    };
    let k = match k_s {
        "auto" => None,
        other => {
            let k: usize = other.parse().map_err(|_| {
                bad_args("coarse", other, "group count must be an integer or 'auto'")
            })?;
            if k == 0 {
                return Err(bad_args("coarse", other, "group count must be >= 1"));
            }
            Some(k)
        }
    };
    let inner = match inner_s {
        None => CoarseConfig::default().inner,
        Some(spec) => {
            // eager validation: a bad inner spec should fail at parse
            // time, like every other malformed spec
            Registry::with_builtins().parse(spec)?;
            spec.to_string()
        }
    };
    Ok(CoarseConfig { k, inner })
}

fn parse_greedy_args(args: &str) -> Result<GreedyConfig, SolveError> {
    let (rule_s, evict_s) = match args.split_once('/') {
        Some((r, e)) => (r, Some(e)),
        None => (args, None),
    };
    let rule = match rule_s {
        "most-red-inputs" => SelectionRule::MostRedInputs,
        "fewest-blue-inputs" => SelectionRule::FewestBlueInputs,
        "highest-red-ratio" => SelectionRule::HighestRedRatio,
        other => {
            return Err(bad_args(
                "greedy",
                other,
                "rule must be most-red-inputs | fewest-blue-inputs | highest-red-ratio",
            ))
        }
    };
    let eviction = match evict_s {
        None => GreedyConfig::default().eviction,
        Some("min-uses") => EvictionPolicy::MinUses,
        Some("lru") => EvictionPolicy::Lru,
        Some("fifo") => EvictionPolicy::Fifo,
        Some(e) if e.starts_with("random(") && e.ends_with(')') => {
            let seed = e["random(".len()..e.len() - 1]
                .parse()
                .map_err(|_| bad_args("greedy", e, "random eviction seed must be an integer"))?;
            EvictionPolicy::Random(seed)
        }
        Some(other) => {
            return Err(bad_args(
                "greedy",
                other,
                "eviction must be min-uses | lru | fifo | random(SEED)",
            ))
        }
    };
    Ok(GreedyConfig { rule, eviction })
}

/// Parses `spec` against the built-in registry.
pub fn solver(spec: &str) -> Result<Box<dyn Solver>, SolveError> {
    Registry::with_builtins().parse(spec)
}

/// Parses `spec` and solves `instance` with an unlimited budget.
pub fn solve(spec: &str, instance: &Instance) -> Result<Solution, SolveError> {
    solver(spec)?.solve(instance, &SolveCtx::default())
}

/// Parses `spec` and solves `instance` under `ctx`.
pub fn solve_with(spec: &str, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError> {
    solver(spec)?.solve(instance, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_graph::{generate, DagBuilder};

    fn diamond() -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        Instance::new(b.build().unwrap(), 3, CostModel::oneshot())
    }

    #[test]
    fn every_builtin_family_parses_and_solves() {
        let inst = diamond();
        for spec in [
            "exact",
            "exact:unseeded",
            "exact-parallel",
            "exact-parallel:2",
            "reference",
            "greedy",
            "greedy:most-red-inputs",
            "greedy:fewest-blue-inputs/lru",
            "greedy:highest-red-ratio/fifo",
            "greedy:most-red-inputs/random(7)",
            "beam",
            "beam:4",
            "portfolio",
            "exact@mpp",
            "exact@mpp:2",
            "greedy@mpp",
            "greedy@mpp:2",
            "coarse",
            "coarse:1/exact",
            "coarse:auto/greedy",
        ] {
            let sol = solve(spec, &inst).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(sol.cost.transfers, 0, "{spec}");
        }
    }

    #[test]
    fn solver_specs_round_trip_through_the_registry() {
        // spec → solver → .spec() → solver must be a fixed point after
        // one normalization step (defaults become explicit: `beam` →
        // `beam:8`, `exact-parallel` → `exact-parallel:<cores>`).
        for spec in [
            "exact",
            "exact:unseeded",
            "exact-parallel",
            "exact-parallel:2",
            "reference",
            "greedy",
            "greedy:most-red-inputs",
            "greedy:fewest-blue-inputs/lru",
            "greedy:highest-red-ratio/fifo",
            "greedy:most-red-inputs/random(7)",
            "beam",
            "beam:4",
            "portfolio",
            "exact@mpp",
            "exact@mpp:2",
            "greedy@mpp",
            "greedy@mpp:4",
            "coarse",
            "coarse:4",
            "coarse:4/greedy",
            "coarse:auto/exact",
        ] {
            let canonical = solver(spec).unwrap().spec();
            let reparsed = solver(&canonical)
                .unwrap_or_else(|e| panic!("{spec} -> {canonical}: {e}"))
                .spec();
            assert_eq!(reparsed, canonical, "canonical specs are fixed points");
        }
        // explicit arguments survive verbatim
        assert_eq!(solver("beam:4").unwrap().spec(), "beam:4");
        assert_eq!(
            solver("exact-parallel:2").unwrap().spec(),
            "exact-parallel:2"
        );
        assert_eq!(
            solver("greedy:fewest-blue-inputs/lru").unwrap().spec(),
            "greedy:fewest-blue-inputs/lru"
        );
        assert_eq!(
            solver("greedy").unwrap().spec(),
            "greedy:most-red-inputs/min-uses",
            "defaults are spelled out"
        );
    }

    #[test]
    fn unknown_family_error_names_the_token() {
        let err = solver("exat").err().expect("unknown family is rejected");
        match &err {
            SolveError::BadSpec { reason, .. } => {
                assert!(reason.contains("'exat'"), "{reason}");
                assert!(reason.contains("exact"), "lists known families: {reason}");
            }
            other => panic!("{other:?}"),
        }
        let err = solver("greedy:topo").err().expect("bad rule is rejected");
        match &err {
            SolveError::BadSpec { spec, .. } => assert!(spec.contains("topo"), "{spec}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_specs_are_bad_spec_errors() {
        for spec in [
            "exat",
            "exact:fast",
            "exact-parallel:many",
            "beam:wide",
            "greedy:topo",
            "greedy:most-red-inputs/arc",
            "portfolio:3",
            "exact@mpp:zero",
            "exact@mpp:0",
            "greedy@mpp:-1",
            "coarse:0",
            "coarse:two",
            "coarse:4/exat",
            "coarse:4/greedy:topo",
        ] {
            assert!(
                matches!(solver(spec), Err(SolveError::BadSpec { .. })),
                "{spec} should be rejected at parse time"
            );
        }
    }

    #[test]
    fn degenerate_numeric_args_fail_at_solve_time() {
        let inst = diamond();
        for spec in ["exact-parallel:0", "beam:0"] {
            let s = solver(spec).expect("parses");
            assert!(
                matches!(s.solve_default(&inst), Err(SolveError::BadConfig { .. })),
                "{spec} should be a BadConfig at solve time"
            );
        }
    }

    #[test]
    fn custom_families_can_be_registered() {
        let mut r = Registry::with_builtins();
        r.register("always-greedy", "test stub", |_| {
            Ok(Box::new(GreedySolver::new()))
        });
        let s = r.parse("always-greedy").unwrap();
        assert_eq!(s.name(), "greedy");
        assert!(r.families().any(|(f, _)| f == "always-greedy"));
    }

    #[test]
    fn registry_solvers_agree_with_each_other() {
        let mut rng = rand::thread_rng();
        for _ in 0..3 {
            let dag = generate::gnp_dag(7, 0.35, 2, &mut rng);
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag, r, CostModel::oneshot());
            let exact = solve("exact", &inst).unwrap();
            let par = solve("exact-parallel:2", &inst).unwrap();
            let reference = solve("reference", &inst).unwrap();
            assert_eq!(exact.scaled_cost(&inst), reference.scaled_cost(&inst));
            assert_eq!(exact.scaled_cost(&inst), par.scaled_cost(&inst));
            let greedy = solve("greedy", &inst).unwrap();
            assert!(exact.scaled_cost(&inst) <= greedy.scaled_cost(&inst));
        }
    }
}

//! # rbp-solvers
//!
//! Solvers for red-blue pebble games, unified behind one interface.
//!
//! ## The `Solver` trait and the registry
//!
//! Every solver implements [`api::Solver`] — `solve(&self, &Instance,
//! &SolveCtx) -> Result<Solution, SolveError>` — and every solver is
//! addressable by a string spec through [`registry`]:
//!
//! ```
//! use rbp_core::{CostModel, Instance};
//! use rbp_graph::DagBuilder;
//! use rbp_solvers::api::{Budget, SolveCtx, Solver};
//! use rbp_solvers::registry;
//!
//! let mut b = DagBuilder::new(3);
//! b.add_edge(0, 2);
//! b.add_edge(1, 2);
//! let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
//!
//! // spec-string dispatch…
//! let sol = registry::solve("exact", &inst).unwrap();
//! assert!(sol.is_optimal());
//!
//! // …or the same solver under a budget: on expiry the exact solvers
//! // return their best incumbent as Quality::UpperBound, not an error
//! let solver = registry::solver("exact-parallel:2").unwrap();
//! let ctx = SolveCtx::new(Budget::none().with_deadline(std::time::Duration::from_secs(5)));
//! let sol = solver.solve(&inst, &ctx).unwrap();
//! assert_eq!(sol.cost.transfers, 0);
//! ```
//!
//! [`api::Solution`] carries the engine-validated trace, its exact
//! cost, a [`api::Quality`] provenance tag (`Optimal` /
//! `UpperBound { lower_bound }` / `Infeasible`), and structured
//! [`api::Stats`] — one shape replacing the old per-solver
//! `ExactReport`/`GreedyReport`/`OrderResult` zoo (those remain as the
//! internal carrier types). Solutions serialize over the wire through
//! [`wire`], the solution half of the versioned instance/solution text
//! format the `rbp-service` batch server speaks.
//!
//! ## Solver families
//!
//! - [`exact`]: optimal pebbling via Dijkstra/A* over configurations,
//!   with per-model optimality-preserving pruning, incumbent-bound
//!   pruning, and an unpruned reference mode for cross-validation;
//! - [`parallel`]: the hash-sharded parallel exact search (HDA*) over
//!   the same configuration graph, seeded with a greedy incumbent;
//! - [`expand`]: the move generator both exact solvers share;
//! - [`greedy`]: the three natural greedy rules of Section 8 with
//!   pluggable eviction policies;
//! - [`mpp`]: multiprocessor pebbling — exact Dijkstra over the
//!   product state space of `p` private memories plus a greedy list
//!   scheduler (`exact@mpp[:P]` / `greedy@mpp[:P]`);
//! - [`beam`]: beam search over first-computation orderings;
//! - [`portfolio`]: parallel best-of-greedy (also the incumbent seed);
//! - [`coarse`]: hierarchical scale-out — partition the DAG into K
//!   acyclic groups ([`rbp_graph::partition`]), solve each with any
//!   inner registry spec, stitch the traces through blue interface
//!   values, and report a fractional-lower-bound bracket
//!   (`coarse[:K[/INNER]]`);
//! - [`visit`]: visit-order solvers for the paper's input-group
//!   constructions (deterministic scheduler, exhaustive
//!   branch-and-bound, Held–Karp DP);
//! - [`sweep`]: opt(R) tradeoff curves (Section 5) over any
//!   [`api::Solver`], fanned out over the [`pool`] work queue.
//!
//! Every solver returns a concrete [`rbp_core::Pebbling`] trace whose
//! cost is produced by the validating engine — [`api::Solution`] replays
//! the trace before returning it, so a solver can never report a cost
//! its trace does not realize.

pub mod api;
pub mod arena;
pub mod beam;
pub mod coarse;
pub mod error;
pub mod exact;
pub mod expand;
pub mod greedy;
pub mod hash;
pub mod mpp;
pub mod parallel;
pub mod pool;
pub mod portfolio;
pub mod registry;
pub mod sweep;
pub mod visit;
pub mod wire;

pub use api::{
    panic_payload_to_string, BeamSolver, Budget, ExactSolver, GreedySolver, ParallelExactSolver,
    PortfolioSolver, Progress, Quality, Solution, SolveCtx, Solver, Stats,
};
pub use arena::{global_id, split_id, NodeTable, StateArena, NO_STATE};
pub use beam::BeamConfig;
pub use coarse::{CoarseConfig, CoarseSolver};
pub use error::SolveError;
pub use exact::{ExactConfig, ExactReport};
pub use expand::{Expander, Meta};
pub use greedy::{EvictionPolicy, GreedyConfig, GreedyReport, SelectionRule};
pub use mpp::{
    solve_exact_mpp, solve_greedy_mpp, ExactMppSolver, GreedyMppSolver, MppExactReport,
    MppGreedyReport,
};
pub use parallel::ParallelConfig;
pub use portfolio::default_portfolio;
pub use registry::Registry;
pub use sweep::{check_tradeoff_laws, sweep_r, sweep_r_serial, sweep_r_with, SweepPoint};
pub use visit::{
    best_order, best_order_from, held_karp, GroupSpec, GroupedDag, OrderResult, VisitOrderSolver,
};
pub use wire::{parse_solution, write_solution, WireSolution};

//! # rbp-solvers
//!
//! Solvers for red-blue pebble games:
//!
//! - [`exact`]: optimal pebbling via Dijkstra/A* over configurations, with
//!   per-model optimality-preserving pruning, incumbent-bound pruning,
//!   and an unpruned reference mode for cross-validation;
//! - [`parallel`]: the hash-sharded parallel exact search (HDA*) over the
//!   same configuration graph, seeded with a greedy incumbent;
//! - [`expand`]: the move generator both exact solvers share;
//! - [`greedy`]: the three natural greedy rules of Section 8 with
//!   pluggable eviction policies;
//! - [`visit`]: visit-order solvers for the paper's input-group
//!   constructions (deterministic scheduler, exhaustive branch-and-bound,
//!   Held–Karp DP);
//! - [`sweep`]: parallel opt(R) tradeoff curves (Section 5), fanned out
//!   over the [`pool`] work queue;
//! - [`portfolio`]: parallel best-of-greedy (also the incumbent seed).
//!
//! Every solver returns a concrete [`rbp_core::Pebbling`] trace whose cost
//! is produced (or re-checked in tests) by the validating engine.

pub mod arena;
pub mod beam;
pub mod error;
pub mod exact;
pub mod expand;
pub mod greedy;
pub mod hash;
pub mod parallel;
pub mod pool;
pub mod portfolio;
pub mod sweep;
pub mod visit;

pub use arena::{global_id, split_id, NodeTable, StateArena, NO_STATE};
pub use beam::{solve_beam, BeamConfig};
pub use error::SolveError;
pub use exact::{solve_exact, solve_exact_with, solve_reference, ExactConfig, ExactReport};
pub use expand::{Expander, Meta};
pub use greedy::{
    solve_greedy, solve_greedy_with, EvictionPolicy, GreedyConfig, GreedyReport, SelectionRule,
};
pub use parallel::{solve_exact_parallel, solve_exact_parallel_with, ParallelConfig};
pub use portfolio::{default_portfolio, solve_portfolio};
pub use sweep::{check_tradeoff_laws, sweep_exact_parallel_r, sweep_exact_r, sweep_r, SweepPoint};
pub use visit::{best_order, best_order_from, held_karp, GroupSpec, GroupedDag, OrderResult};

//! Property tests across the solver suite: agreement, ordering, and
//! trace validity on random instances.

use proptest::prelude::*;
use rbp_core::{engine, CostModel, Instance, ModelKind};
use rbp_graph::DagBuilder;
use rbp_solvers::api::{ExactSolver, GreedySolver, ParallelExactSolver, Solver};
use rbp_solvers::{
    best_order, registry, EvictionPolicy, ExactConfig, GreedyConfig, GroupSpec, GroupedDag,
    SelectionRule, StateArena,
};

/// Random layered DAGs: `layers` layers of `width` nodes, each non-source
/// node wired to 1–2 nodes of the previous layer (deterministic in the
/// proptest-drawn edge choices, unlike `generate::layered`'s rng).
fn arb_layered() -> impl Strategy<Value = rbp_graph::Dag> {
    (2usize..=3, 2usize..=3).prop_flat_map(|(layers, width)| {
        let slots = (layers - 1) * width * 2;
        proptest::collection::vec(0usize..width, slots).prop_map(move |picks| {
            let mut b = DagBuilder::new(layers * width);
            let mut k = 0;
            for layer in 1..layers {
                for i in 0..width {
                    let dst = layer * width + i;
                    let mut srcs = [picks[k], picks[k + 1]];
                    k += 2;
                    srcs.sort_unstable();
                    b.add_edge((layer - 1) * width + srcs[0], dst);
                    if srcs[1] != srcs[0] {
                        b.add_edge((layer - 1) * width + srcs[1], dst);
                    }
                }
            }
            b.build().unwrap()
        })
    })
}

fn arb_dag(max_n: usize) -> impl Strategy<Value = rbp_graph::Dag> {
    (3..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::weighted(0.35), pairs).prop_map(move |coins| {
            let mut b = DagBuilder::new(n);
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if coins[idx] {
                        b.add_edge(i, j);
                    }
                    idx += 1;
                }
            }
            b.build().unwrap()
        })
    })
}

/// Random input-group constructions: `g` groups over a shared pool of
/// source nodes, each with one target.
fn arb_grouped(max_groups: usize) -> impl Strategy<Value = (rbp_graph::Dag, GroupedDag, usize)> {
    (2..=max_groups, 3usize..=5).prop_flat_map(|(g, k)| {
        proptest::collection::vec(proptest::collection::vec(0usize..(2 * k), k), g).prop_map(
            move |memberships| {
                // normalize each group's members (dedup + deterministic pad)
                let member_sets: Vec<Vec<usize>> = memberships
                    .iter()
                    .map(|members| {
                        let mut inputs = members.clone();
                        inputs.sort_unstable();
                        inputs.dedup();
                        let mut fill = 0;
                        while inputs.len() < k {
                            if !inputs.contains(&fill) {
                                inputs.push(fill);
                            }
                            fill += 1;
                        }
                        inputs.truncate(k);
                        inputs
                    })
                    .collect();
                // materialize only the pool nodes actually used, so the
                // DAG has no isolated (never-pebbled) sources
                let mut used: Vec<usize> = member_sets.iter().flatten().copied().collect();
                used.sort_unstable();
                used.dedup();
                let remap = |x: usize| used.binary_search(&x).unwrap();
                let mut b = DagBuilder::new(used.len());
                let mut groups = Vec::new();
                for inputs in &member_sets {
                    let t = b.add_node();
                    let input_ids: Vec<rbp_graph::NodeId> = inputs
                        .iter()
                        .map(|&i| rbp_graph::NodeId::new(remap(i)))
                        .collect();
                    for &u in &input_ids {
                        b.add_edge_ids(u, t);
                    }
                    groups.push(GroupSpec {
                        inputs: input_ids,
                        targets: vec![t],
                    });
                }
                let dag = b.build().unwrap();
                let grouped = GroupedDag::new(dag.n(), groups);
                (dag, grouped, k + 1)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every greedy configuration yields a valid trace whose engine cost
    /// equals the reported cost, in every model.
    #[test]
    fn greedy_matrix_always_validates(dag in arb_dag(10), kind in 0usize..4) {
        let model = CostModel::of_kind(ModelKind::ALL[kind]);
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, model);
        for rule in SelectionRule::ALL {
            for eviction in EvictionPolicy::DETERMINISTIC {
                let rep = GreedySolver::with_config(GreedyConfig { rule, eviction })
                    .solve_default(&inst)
                    .unwrap();
                let sim = engine::simulate(&inst, &rep.trace).unwrap();
                prop_assert_eq!(sim.cost, rep.cost);
            }
        }
    }

    /// Beam width 1 is never beaten by greedy by more than the eviction
    /// slack, and the exact optimum lower-bounds everything.
    #[test]
    fn solver_ordering(dag in arb_dag(8)) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, CostModel::oneshot());
        let eps = inst.model().epsilon();
        let exact = registry::solve("exact", &inst).unwrap().cost.scaled(eps);
        let beam = registry::solve("beam:12", &inst).unwrap().cost.scaled(eps);
        prop_assert!(exact <= beam);
    }

    /// The visit-order scheduler always emits valid traces for valid
    /// orders on random grouped constructions, and best_order's reported
    /// cost is engine-exact.
    #[test]
    fn scheduler_validity_on_random_groups((dag, grouped, r) in arb_grouped(5)) {
        let inst = Instance::new(dag, r, CostModel::oneshot());
        // identity order is valid when it respects deps (these random
        // constructions have source-only inputs, so always valid)
        let order: Vec<usize> = (0..grouped.len()).collect();
        prop_assert!(grouped.is_valid_order(&order));
        let trace = grouped.emit(&inst, &order).unwrap();
        let rep = engine::simulate(&inst, &trace).unwrap();
        prop_assert!(rep.peak_red <= r);

        let best = best_order(&grouped, &inst).unwrap();
        let sim = engine::simulate(&inst, &best.trace).unwrap();
        prop_assert_eq!(sim.cost.scaled(inst.model().epsilon()), best.scaled);
        // best is no worse than the identity order
        prop_assert!(best.scaled <= rep.cost.scaled(inst.model().epsilon()));
    }

    /// Interning a shuffled stream of random keys (with repetitions)
    /// yields ids that are stable across re-interns and recover the
    /// exact key bytes, matching a `HashMap` reference model.
    #[test]
    fn arena_interning_is_stable_and_roundtrips(
        key_words in 1usize..4,
        raw_keys in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 3), 1..40),
        picks in proptest::collection::vec(any::<usize>(), 0..200),
    ) {
        let mut arena = StateArena::with_capacity(key_words, 4);
        let mut reference: std::collections::HashMap<Vec<u64>, u32> =
            std::collections::HashMap::new();
        // deterministic shuffled stream: index into raw_keys by `picks`,
        // then a full pass so every key appears at least once
        let stream = picks
            .iter()
            .map(|&p| p % raw_keys.len())
            .chain(0..raw_keys.len());
        for idx in stream {
            let key = &raw_keys[idx][..key_words];
            let (id, fresh) = arena.intern(key);
            match reference.get(key) {
                Some(&expect) => {
                    prop_assert!(!fresh, "re-intern must not be fresh");
                    prop_assert_eq!(id, expect, "id changed across interns");
                }
                None => {
                    prop_assert!(fresh, "first intern must be fresh");
                    prop_assert_eq!(id as usize, reference.len(), "ids must be dense");
                    reference.insert(key.to_vec(), id);
                }
            }
            prop_assert_eq!(arena.key(id), key, "round-trip key recovery");
        }
        prop_assert_eq!(arena.len(), reference.len());
        // every key still recoverable after all growth
        for (key, &id) in &reference {
            prop_assert_eq!(arena.key(id), &key[..]);
        }
    }

    /// The parallel solver finds the sequential optimum on random
    /// layered DAGs at every thread count, in every model, and its trace
    /// replays through the validating engine.
    #[test]
    fn parallel_matches_sequential_on_layered_dags(
        dag in arb_layered(),
        kind in 0usize..4,
    ) {
        let model = CostModel::of_kind(ModelKind::ALL[kind]);
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, model);
        let eps = inst.model().epsilon();
        let seq = registry::solve("exact", &inst).unwrap();
        for threads in [1usize, 2, 4] {
            let par = ParallelExactSolver::with_threads(threads)
                .solve_default(&inst)
                .unwrap();
            prop_assert_eq!(
                par.cost.scaled(eps),
                seq.cost.scaled(eps),
                "threads={} diverged", threads
            );
            let sim = engine::simulate(&inst, &par.trace).unwrap();
            prop_assert_eq!(sim.cost, par.cost);
            prop_assert!(sim.peak_red <= inst.red_limit());
        }
    }

    /// Incumbent-bound pruning never changes the sequential optimum —
    /// for any valid upper bound, including the exactly-tight one.
    #[test]
    fn incumbent_pruning_preserves_sequential_optimum(
        dag in arb_layered(),
        kind in 0usize..4,
        slack in 0u64..3,
    ) {
        let model = CostModel::of_kind(ModelKind::ALL[kind]);
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, model);
        let eps = inst.model().epsilon();
        // unseeded on both sides: the property under test is the explicit
        // upper_bound seed, not the greedy incumbent
        let plain = ExactSolver::new().unseeded().solve_default(&inst).unwrap();
        let opt = plain.cost.scaled(eps) as u64;
        let seeded = ExactSolver::with_config(ExactConfig {
            upper_bound: Some(opt + slack),
            ..ExactConfig::default()
        })
        .unseeded()
        .solve_default(&inst)
        .unwrap();
        prop_assert_eq!(seeded.cost.scaled(eps), opt as u128);
        prop_assert!(seeded.states_seen() <= plain.states_seen());
        let sim = engine::simulate(&inst, &seeded.trace).unwrap();
        prop_assert_eq!(sim.cost, seeded.cost);
    }

    /// Group visits in any order cost at least the free lower bound and
    /// at most the canonical upper bound.
    #[test]
    fn scheduler_cost_brackets((dag, grouped, r) in arb_grouped(4)) {
        let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
        let order: Vec<usize> = (0..grouped.len()).collect();
        let trace = grouped.emit(&inst, &order).unwrap();
        let rep = engine::simulate(&inst, &trace).unwrap();
        let ub = rbp_core::bounds::universal_upper_bound(&inst);
        prop_assert!(rep.cost.transfers <= ub.transfers);
    }
}

//! Theorem 3: no δ < 2 approximation for oneshot pebbling unless Vertex
//! Cover is δ-approximable (Section 7, Figures 6–7, Appendix A.3).
//!
//! For each node `a` of G, two input groups of size k share k−N *common*
//! source nodes: the first-level group V_{a,1} (with N−1 targets
//! t_{a,1,b}, one per other node b) and the second-level group V_{a,2}
//! (with one target t_{a,2}). For each edge (a,b), the target t_{a,1,b}
//! is an *input* of V_{b,2}, forcing V_{a,1} to be visited before
//! V_{b,2}.
//!
//! Visiting V_{a,1} and V_{a,2} consecutively lets the k−N common nodes
//! stay red in between (cost 0); otherwise each takes a blue round trip
//! (cost 2 each). The dependency structure makes the *consecutively
//! visited* node set an independent set of G, so the optimal pebbling
//! cost is 2k′·|VC₀| + O(N²) — the pebbling cost measures the minimum
//! vertex cover, and any δ-approximation for pebbling yields one for
//! Vertex Cover.

use rbp_core::{CostModel, Instance};
use rbp_graph::{BitSet, Graph, NodeId};
use rbp_solvers::{best_order, GroupSpec, GroupedDag, OrderResult, SolveError};

/// The compiled Theorem-3 reduction.
pub struct VcReduction {
    /// The source graph G.
    pub graph: Graph,
    /// Group view: group 2a = V_{a,1}, group 2a+1 = V_{a,2}.
    pub grouped: GroupedDag,
    /// The construction DAG.
    pub dag: rbp_graph::Dag,
    /// Group size k.
    pub k: usize,
    /// Common nodes per node of G: k′ = k − N.
    pub k_prime: usize,
    /// First-level targets: `t1[a][x]` for the x-th other node.
    pub t1: Vec<Vec<NodeId>>,
    /// Second-level targets per node.
    pub t2: Vec<NodeId>,
}

/// Compiles G with group size `k` (paper: k = ω(N²); pick k ≥ N² + N so
/// the O(N²) bookkeeping terms cannot outweigh one 2k′ round trip).
pub fn encode(graph: Graph, k: usize) -> VcReduction {
    let n = graph.n();
    assert!(n >= 2, "reduction needs at least two nodes");
    assert!(k > n, "k must exceed N so that k' = k - N >= 1");
    let k_prime = k - n;
    let mut b = rbp_graph::DagBuilder::new(0);

    // per node: common sources
    let commons: Vec<Vec<NodeId>> = (0..n)
        .map(|a| {
            (0..k_prime)
                .map(|x| b.add_labeled_node(format!("c{a}_{x}")))
                .collect()
        })
        .collect();
    // first-level targets t_{a,1,b}
    let t1: Vec<Vec<NodeId>> = (0..n)
        .map(|a| {
            (0..n)
                .filter(|&x| x != a)
                .map(|x| b.add_labeled_node(format!("t1_{a}_{x}")))
                .collect()
        })
        .collect();
    // maps (a, b) -> the target of V_{a,1} corresponding to b
    let t1_of = |a: usize, bb: usize| -> NodeId {
        let idx = if bb < a { bb } else { bb - 1 };
        t1[a][idx]
    };
    let t2: Vec<NodeId> = (0..n)
        .map(|a| b.add_labeled_node(format!("t2_{a}")))
        .collect();

    let mut groups: Vec<GroupSpec> = Vec::with_capacity(2 * n);
    for a in 0..n {
        // V_{a,1}: commons + fillers to k; targets: all t_{a,1,b}
        let mut in1 = commons[a].clone();
        while in1.len() < k {
            in1.push(b.add_labeled_node(format!("f1_{a}_{}", in1.len())));
        }
        let targets1: Vec<NodeId> = (0..n).filter(|&x| x != a).map(|x| t1_of(a, x)).collect();
        for &t in &targets1 {
            for &u in &in1 {
                b.add_edge_ids(u, t);
            }
        }
        groups.push(GroupSpec {
            inputs: in1,
            targets: targets1,
        });

        // V_{a,2}: commons + neighbor targets + fillers; target t_{a,2}
        let mut in2 = commons[a].clone();
        for bb in 0..n {
            if graph.has_edge(a, bb) {
                in2.push(t1_of(bb, a));
            }
        }
        while in2.len() < k {
            in2.push(b.add_labeled_node(format!("f2_{a}_{}", in2.len())));
        }
        assert_eq!(in2.len(), k, "degree exceeds N?");
        for &u in &in2 {
            b.add_edge_ids(u, t2[a]);
        }
        groups.push(GroupSpec {
            inputs: in2,
            targets: vec![t2[a]],
        });
    }
    let dag = b.build().expect("reduction DAG is acyclic");
    let grouped = GroupedDag::new(dag.n(), groups);
    VcReduction {
        graph,
        grouped,
        dag,
        k,
        k_prime,
        t1,
        t2,
    }
}

impl VcReduction {
    /// The red budget R = k+1 (the minimum: Δ = k).
    pub fn red_limit(&self) -> usize {
        self.k + 1
    }

    /// Group id of V_{a,1}.
    pub fn first(&self, a: usize) -> usize {
        2 * a
    }

    /// Group id of V_{a,2}.
    pub fn second(&self, a: usize) -> usize {
        2 * a + 1
    }

    /// The pebbling instance (Theorem 3 concerns the oneshot model; other
    /// models are accepted for the exploratory experiments of Section 7's
    /// closing discussion).
    pub fn instance(&self, model: CostModel) -> Instance {
        Instance::new(self.dag.clone(), self.red_limit(), model)
    }

    /// Decodes a group-visit order into a vertex cover: node `a` joins
    /// the cover iff its two groups were *not* visited consecutively.
    /// The dependency structure guarantees the complement is independent,
    /// so the result is always a cover for complete visit orders.
    pub fn decode(&self, order: &[usize]) -> BitSet {
        let n = self.graph.n();
        let mut pos = vec![usize::MAX; 2 * n];
        for (i, &g) in order.iter().enumerate() {
            pos[g] = i;
        }
        let mut cover = BitSet::new(n);
        for a in 0..n {
            let (p1, p2) = (pos[self.first(a)], pos[self.second(a)]);
            let consecutive = p1 != usize::MAX && p2 != usize::MAX && p1.abs_diff(p2) == 1;
            if !consecutive {
                cover.insert(a);
            }
        }
        cover
    }

    /// The paper's constructive strategy for a given cover: first-level
    /// groups of the cover, then both groups of each independent-set node
    /// consecutively, then second-level groups of the cover.
    pub fn order_for_cover(&self, cover: &BitSet) -> Vec<usize> {
        let n = self.graph.n();
        let mut order = Vec::with_capacity(2 * n);
        for a in 0..n {
            if cover.contains(a) {
                order.push(self.first(a));
            }
        }
        for a in 0..n {
            if !cover.contains(a) {
                order.push(self.first(a));
                order.push(self.second(a));
            }
        }
        for a in 0..n {
            if cover.contains(a) {
                order.push(self.second(a));
            }
        }
        order
    }

    /// Solves the reduction exactly over visit orders (exponential in
    /// 2N; intended for N ≤ 5).
    pub fn solve(&self, model: CostModel) -> Result<OrderResult, SolveError> {
        let inst = self.instance(model);
        best_order(&self.grouped, &inst)
    }

    /// The dominant cost term for a cover of size `c` in oneshot:
    /// 2k′ per non-consecutive node.
    pub fn commons_toll(&self, cover_size: usize) -> u64 {
        2 * self.k_prime as u64 * cover_size as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cover;
    use rbp_core::engine;

    fn small_red(g: Graph) -> VcReduction {
        let n = g.n();
        encode(g, n * n + n)
    }

    #[test]
    fn structure() {
        let g = Graph::path(3); // N=3, edges (0,1),(1,2)
        let red = small_red(g);
        assert_eq!(red.k, 12);
        assert_eq!(red.k_prime, 9);
        assert_eq!(red.grouped.len(), 6);
        assert_eq!(red.dag.max_indegree(), red.k);
        // dependency: V_{1,2} needs V_{0,1} (edge 0-1)
        assert!(red.grouped.deps()[red.second(1)].contains(&red.first(0)));
        // no dependency between non-neighbors 0 and 2
        assert!(!red.grouped.deps()[red.second(2)].contains(&red.first(0)));
    }

    #[test]
    fn cover_order_valid_and_decodes_back() {
        let g = Graph::path(3);
        let red = small_red(g);
        let cover = vertex_cover::min_vertex_cover(&red.graph); // {1}
        let order = red.order_for_cover(&cover);
        assert!(red.grouped.is_valid_order(&order));
        let decoded = red.decode(&order);
        assert_eq!(decoded, cover);
    }

    #[test]
    fn order_for_cover_emits_valid_trace_with_expected_toll() {
        let g = Graph::path(3);
        let red = small_red(g);
        let inst = red.instance(CostModel::oneshot());
        let cover = vertex_cover::min_vertex_cover(&red.graph);
        let order = red.order_for_cover(&cover);
        let trace = red.grouped.emit(&inst, &order).unwrap();
        let rep = engine::simulate(&inst, &trace).unwrap();
        let toll = red.commons_toll(cover.len());
        assert!(rep.cost.transfers >= toll);
        // the O(N^2) slack: generous bound 4N^2
        let slack = 4 * (red.graph.n() as u64).pow(2);
        assert!(
            rep.cost.transfers <= toll + slack,
            "cost {} exceeds toll {} + slack {}",
            rep.cost.transfers,
            toll,
            slack
        );
    }

    #[test]
    fn optimal_pebbling_recovers_minimum_cover() {
        for g in [
            Graph::path(3),
            Graph::star(4),
            Graph::cycle(4),
            Graph::from_edges(4, &[(0, 1), (2, 3)]),
        ] {
            let truth = vertex_cover::min_vertex_cover(&g).len();
            let red = small_red(g);
            let inst = red.instance(CostModel::oneshot());
            let best = best_order(&red.grouped, &inst).unwrap();
            let decoded = red.decode(&best.order);
            assert!(
                red.graph.is_vertex_cover(&decoded),
                "decoded set is not a cover"
            );
            assert_eq!(
                decoded.len(),
                truth,
                "optimal pebbling decodes a non-minimum cover"
            );
        }
    }

    #[test]
    fn pebbling_cost_tracks_cover_size() {
        // K3: |VC| = 2; path(3): |VC| = 1 — the cost gap must be ~2k'
        let red_cheap = small_red(Graph::path(3));
        let red_costly = small_red(Graph::complete(3));
        let c_cheap = best_order(
            &red_cheap.grouped,
            &red_cheap.instance(CostModel::oneshot()),
        )
        .unwrap()
        .cost
        .transfers;
        let c_costly = best_order(
            &red_costly.grouped,
            &red_costly.instance(CostModel::oneshot()),
        )
        .unwrap()
        .cost
        .transfers;
        let gap = c_costly as i64 - c_cheap as i64;
        let expected = red_cheap.commons_toll(1) as i64; // one more cover node
        assert!(
            (gap - expected).abs() <= 2 * 9, // small-term slack
            "gap {gap} far from 2k' = {expected}"
        );
    }

    #[test]
    fn consecutive_set_is_always_independent() {
        // structural guarantee behind the decode: adjacent nodes cannot
        // both be visited consecutively
        let g = Graph::complete(3);
        let red = small_red(g);
        let inst = red.instance(CostModel::oneshot());
        let best = best_order(&red.grouped, &inst).unwrap();
        let cover = red.decode(&best.order);
        let mut consecutive = BitSet::full(red.graph.n());
        consecutive.difference_with(&cover);
        assert!(red.graph.is_independent_set(&consecutive));
    }

    #[test]
    fn greedy_pebbling_induces_a_valid_but_possibly_larger_cover() {
        let g = Graph::cycle(4);
        let red = small_red(g);
        let inst = red.instance(CostModel::oneshot());
        let rep = rbp_solvers::registry::solve("greedy", &inst).unwrap();
        // recover group visits from target first-computations
        let visits = visits_of(&red, &rep.computation_order());
        let cover = red.decode(&visits);
        assert!(red.graph.is_vertex_cover(&cover));
        let opt = vertex_cover::min_vertex_cover(&red.graph).len();
        assert!(cover.len() >= opt);
    }

    fn visits_of(red: &VcReduction, comp_order: &[NodeId]) -> Vec<usize> {
        let mut owner = std::collections::HashMap::new();
        for (gi, g) in red.grouped.groups().iter().enumerate() {
            for &t in &g.targets {
                owner.insert(t, gi);
            }
        }
        let mut seen = vec![false; red.grouped.len()];
        let mut visits = Vec::new();
        for v in comp_order {
            if let Some(&g) = owner.get(v) {
                if !seen[g] {
                    seen[g] = true;
                    visits.push(g);
                }
            }
        }
        visits
    }
}

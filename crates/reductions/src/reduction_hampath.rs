//! Theorem 2: NP-hardness of Pebbling via reduction from Hamiltonian
//! Path (Section 6, Figure 5).
//!
//! For a graph G on N nodes and M edges, build one input group per node:
//! the group of `a` holds a *contact node* v_{a,b} for every other node
//! `b`, and for every edge (a,b) the two corresponding contacts are
//! merged into one shared node. Each group feeds one sink target t_a;
//! R = N.
//!
//! A pebbling must visit the N groups in some order π; between
//! consecutive visits the red pebbles migrate, and a merged contact
//! saves transfers exactly when its two groups are adjacent *in π*. The
//! pebbling cost is therefore an affine function of the number of
//! non-adjacent consecutive pairs in π, and the minimum cost hits the
//! threshold iff G has a Hamiltonian path.
//!
//! Exact per-model costs under this crate's scheduler (which differ from
//! the paper's headline constants only by bookkeeping conventions; the
//! *correspondence* — threshold hit iff Hamiltonian — is identical and is
//! what the tests verify end-to-end):
//!
//! - `oneshot`:  cost(π) = (2M − N + 1) + 2·nonadj(π)
//! - `nodel`:    cost(π) = (N−1)² + nonadj(π)
//! - `base`/`compcost`: an H2C prologue makes every contact costly to
//!   recompute; cost(π) = prologue + (N(N−1) − M) + 2(M − N + 1) + (N−1)
//!   + 2·nonadj(π) transfers (+ ε per compute in compcost).

use crate::hampath;
use rbp_core::{CostModel, Instance, ModelKind, Pebbling, State};
use rbp_gadgets::h2c::{self, H2c, H2cConfig};
use rbp_graph::{Graph, NodeId};
use rbp_solvers::{best_order_from, held_karp, GroupSpec, GroupedDag, SolveError};

/// The compiled reduction.
pub struct HamPathReduction {
    /// The source graph G.
    pub graph: Graph,
    /// Group view: group `a` (index a) is node a's input group.
    pub grouped: GroupedDag,
    /// The plain construction DAG (used by oneshot and nodel).
    pub dag: rbp_graph::Dag,
    /// Sink target t_a per node of G.
    pub targets: Vec<NodeId>,
    n: usize,
    m: usize,
}

/// A solved reduction instance.
pub struct ReductionSolution {
    /// Scaled total cost (prologue included where applicable).
    pub scaled: u128,
    /// Scaled cost of the H2C prologue alone (0 for oneshot/nodel).
    pub prologue_scaled: u128,
    /// The optimal group-visit order = node visit permutation of G.
    pub order: Vec<usize>,
    /// The full engine-validated trace (prologue + schedule).
    pub trace: Pebbling,
    /// The instance the trace was validated against.
    pub instance: Instance,
}

impl ReductionSolution {
    /// Scaled cost of the schedule phase (comparable to
    /// [`HamPathReduction::scaled_schedule_threshold`]).
    pub fn schedule_scaled(&self) -> u128 {
        self.scaled - self.prologue_scaled
    }
}

/// Compiles G into the Theorem-2 pebbling construction. Requires N ≥ 2.
///
/// # Example
/// ```
/// use rbp_core::CostModel;
/// use rbp_graph::Graph;
/// use rbp_reductions::reduction_hampath::encode;
///
/// // a path graph is Hamiltonian: the optimal pebbling hits the threshold
/// let red = encode(Graph::path(5));
/// let model = CostModel::oneshot();
/// let (cost, order) = red.solve_dp(model);
/// assert_eq!(cost, red.scaled_schedule_threshold(model));
/// // ... and the visit order *is* a Hamiltonian path
/// assert!(red.decode(&order).is_some());
/// ```
#[allow(clippy::needless_range_loop)] // contact[a][b] mirrors the paper notation
pub fn encode(graph: Graph) -> HamPathReduction {
    let n = graph.n();
    assert!(n >= 2, "reduction needs at least two nodes");
    let m = graph.m();
    let mut b = rbp_graph::DagBuilder::new(0);
    // contact[a][b]: the contact node in group a for node b
    let mut contact: Vec<Vec<Option<NodeId>>> = vec![vec![None; n]; n];
    for a in 0..n {
        for bb in 0..n {
            if a == bb {
                continue;
            }
            if graph.has_edge(a, bb) && contact[bb][a].is_some() {
                // merged with the already-created twin
                contact[a][bb] = contact[bb][a];
            } else {
                contact[a][bb] = Some(b.add_labeled_node(format!("v{a}_{bb}")));
            }
        }
    }
    let targets: Vec<NodeId> = (0..n)
        .map(|a| b.add_labeled_node(format!("t{a}")))
        .collect();
    let mut groups = Vec::with_capacity(n);
    for a in 0..n {
        let inputs: Vec<NodeId> = (0..n)
            .filter(|&x| x != a)
            .map(|x| contact[a][x].unwrap())
            .collect();
        for &u in &inputs {
            b.add_edge_ids(u, targets[a]);
        }
        groups.push(GroupSpec {
            inputs,
            targets: vec![targets[a]],
        });
    }
    let dag = b.build().expect("reduction DAG is acyclic");
    let grouped = GroupedDag::new(dag.n(), groups);
    HamPathReduction {
        graph,
        grouped,
        dag,
        targets,
        n,
        m,
    }
}

impl HamPathReduction {
    /// N (also the red-pebble budget).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The red budget R = N (the minimum, since Δ = N−1).
    pub fn red_limit(&self) -> usize {
        self.n
    }

    /// The pebbling instance for the given model. base/compcost get the
    /// H2C-augmented DAG (requires N ≥ 4); oneshot/nodel the plain one.
    pub fn instance(&self, model: CostModel) -> (Instance, Option<H2c>) {
        match model.kind() {
            ModelKind::Oneshot | ModelKind::NoDel => {
                (Instance::new(self.dag.clone(), self.n, model), None)
            }
            ModelKind::Base | ModelKind::CompCost => {
                assert!(self.n >= 4, "H2C variant needs N >= 4");
                let aug = h2c::attach(&self.dag, H2cConfig::standard(self.n));
                (Instance::new(aug.dag.clone(), self.n, model), Some(aug))
            }
        }
    }

    /// Number of non-adjacent consecutive pairs in a visit permutation.
    pub fn nonadjacent_pairs(&self, order: &[usize]) -> usize {
        order
            .windows(2)
            .filter(|w| !self.graph.has_edge(w[0], w[1]))
            .count()
    }

    /// Exact scaled cost of the scheduler's pebbling for a permutation
    /// with `nonadj` non-adjacent consecutive pairs (excluding the H2C
    /// prologue, whose measured cost is added by [`Self::solve`]).
    pub fn scaled_schedule_cost(&self, model: CostModel, nonadj: usize) -> u128 {
        // Signed intermediates: the M−(N−1) term goes negative on graphs
        // sparser than a tree. For any realizable permutation the total is
        // non-negative (nonadj ≥ N−1−M there); the nonadj = 0 *threshold*
        // may be negative for such graphs, which is fine — it is then an
        // unreachable floor and the decision correctly comes out "no".
        let (n, m) = (self.n as i128, self.m as i128);
        let nonadj = nonadj as i128;
        let den = model.epsilon().den() as i128;
        let num = model.epsilon().num() as i128;
        let scaled: i128 = match model.kind() {
            ModelKind::Oneshot => (2 * m + 1 - n) + 2 * nonadj,
            ModelKind::NoDel => (n - 1) * (n - 1) + nonadj,
            ModelKind::Base | ModelKind::CompCost => {
                let contacts = n * (n - 1) - m;
                let transfers = contacts + 2 * (m + 1 - n) + (n - 1) + 2 * nonadj;
                // schedule-phase computes: the N targets
                transfers * den + n * num
            }
        };
        scaled.max(0) as u128
    }

    /// The decision threshold: minimal possible cost, achieved iff G has
    /// a Hamiltonian path (prologue excluded; see [`Self::solve`]).
    pub fn scaled_schedule_threshold(&self, model: CostModel) -> u128 {
        self.scaled_schedule_cost(model, 0)
    }

    /// Solves the reduction exactly: exhaustive branch-and-bound over
    /// visit orders, scored by the true scheduler cost, prologue
    /// included. Feasible for N ≤ ~8.
    pub fn solve(&self, model: CostModel) -> Result<ReductionSolution, SolveError> {
        let (instance, aug) = self.instance(model);
        let (mut trace, state, prologue_scaled) = match &aug {
            Some(h) => {
                let (trace, state) = h.prologue_trace(&instance)?;
                let rep = rbp_core::simulate_prefix(&instance, &trace)
                    .map_err(|e| SolveError::Pebbling(e.error))?;
                let scaled = rep.cost.scaled(model.epsilon());
                (trace, state, scaled)
            }
            None => (Pebbling::new(), State::initial(&instance), 0),
        };
        let result = best_order_from(&self.grouped, &instance, &state)?;
        trace.extend(&result.trace);
        // end-to-end validation of the combined trace
        let rep =
            rbp_core::simulate(&instance, &trace).map_err(|e| SolveError::Pebbling(e.error))?;
        let scaled = rep.cost.scaled(model.epsilon());
        debug_assert_eq!(scaled, prologue_scaled + result.scaled);
        Ok(ReductionSolution {
            scaled,
            prologue_scaled,
            order: result.order,
            trace,
            instance,
        })
    }

    /// Held–Karp DP over visit orders using the closed-form pairwise
    /// costs — polynomial-space-free but O(2^N·N²), good to N ≈ 20.
    /// Returns the scaled schedule cost (no prologue) and an optimal
    /// order.
    pub fn solve_dp(&self, model: CostModel) -> (u128, Vec<usize>) {
        let penalty: u64 = match model.kind() {
            ModelKind::Oneshot => 2,
            ModelKind::NoDel => 1,
            ModelKind::Base | ModelKind::CompCost => 2 * model.epsilon().den(),
        };
        let deps = vec![Vec::new(); self.n];
        let (extra, order) = held_karp(self.n, &deps, |prev, next| match prev {
            None => 0,
            Some(p) => {
                if self.graph.has_edge(p, next) {
                    0
                } else {
                    penalty
                }
            }
        })
        .expect("dependency-free order always exists");
        let nonadj_scaled = extra as u128;
        (self.scaled_schedule_threshold(model) + nonadj_scaled, order)
    }

    /// Decides Hamiltonicity through the pebbling lens: does the optimal
    /// pebbling cost reach the threshold?
    pub fn decides_hamiltonian(&self, model: CostModel) -> Result<bool, SolveError> {
        let sol = self.solve(model)?;
        Ok(sol.schedule_scaled() <= self.scaled_schedule_threshold(model))
    }

    /// Decodes an optimal visit order into a Hamiltonian path of G, if
    /// the order is fully adjacent.
    pub fn decode(&self, order: &[usize]) -> Option<Vec<usize>> {
        if self.nonadjacent_pairs(order) == 0 && hampath::is_hamiltonian_path(&self.graph, order) {
            Some(order.to_vec())
        } else {
            None
        }
    }

    /// The Appendix-B constant-degree variant: every input group expanded
    /// into a CD ladder of `layers` layers. Pebble with R = N+1. The
    /// maximal indegree drops from N−1 to 2 while the visit-order cost
    /// structure (and hence the NP-hardness reduction) is preserved —
    /// exactly (oneshot) or up to a π-independent constant (nodel).
    pub fn constant_degree(&self, layers: usize) -> rbp_gadgets::cd::ConstantDegree {
        rbp_gadgets::cd::expand_to_constant_degree(&self.dag, &self.grouped, layers)
    }

    /// Red budget for the constant-degree variant: R+1 = N+1.
    pub fn constant_degree_red_limit(&self) -> usize {
        self.n + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_permutations(n: usize) -> Vec<Vec<usize>> {
        let mut perms = vec![vec![]];
        for _ in 0..n {
            let mut next = Vec::new();
            for p in perms {
                for v in 0..n {
                    if !p.contains(&v) {
                        let mut q = p.clone();
                        q.push(v);
                        next.push(q);
                    }
                }
            }
            perms = next;
        }
        perms
    }

    #[test]
    fn structure() {
        let g = Graph::path(4); // N=4, M=3
        let red = encode(g);
        // contacts: N(N-1) - M = 9, targets: 4
        assert_eq!(red.dag.n(), 9 + 4);
        assert_eq!(red.dag.max_indegree(), 3);
        assert_eq!(red.dag.sinks().len(), 4);
        assert_eq!(red.red_limit(), 4);
        // merged contact shared by adjacent groups
        let shared: Vec<_> = red.grouped.groups()[0]
            .inputs
            .iter()
            .filter(|u| red.grouped.groups()[1].inputs.contains(u))
            .collect();
        assert_eq!(shared.len(), 1, "edge (0,1) merges exactly one contact");
    }

    #[test]
    fn formula_matches_scheduler_for_every_permutation() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let red = encode(g);
        for model in [CostModel::oneshot(), CostModel::nodel()] {
            let (inst, _) = red.instance(model);
            for perm in all_permutations(4) {
                let trace = red.grouped.emit(&inst, &perm).unwrap();
                let rep = rbp_core::simulate(&inst, &trace).unwrap();
                assert_eq!(
                    rep.cost.scaled(model.epsilon()),
                    red.scaled_schedule_cost(model, red.nonadjacent_pairs(&perm)),
                    "formula broken for {model} at {perm:?}"
                );
            }
        }
    }

    #[test]
    fn formula_matches_scheduler_h2c_models() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let red = encode(g);
        for model in [CostModel::base(), CostModel::compcost()] {
            let (inst, aug) = red.instance(model);
            let h = aug.unwrap();
            for perm in all_permutations(4).into_iter().step_by(3) {
                let (mut trace, state) = h.prologue_trace(&inst).unwrap();
                let prologue_scaled = rbp_core::simulate_prefix(&inst, &trace)
                    .unwrap()
                    .cost
                    .scaled(model.epsilon());
                let mut st = state.clone();
                let mut tail = Pebbling::new();
                red.grouped
                    .emit_onto(&inst, &perm, &mut st, &mut tail)
                    .unwrap();
                trace.extend(&tail);
                let rep = rbp_core::simulate(&inst, &trace).unwrap();
                assert_eq!(
                    rep.cost.scaled(model.epsilon()) - prologue_scaled,
                    red.scaled_schedule_cost(model, red.nonadjacent_pairs(&perm)),
                    "H2C formula broken for {model} at {perm:?}"
                );
            }
        }
    }

    #[test]
    fn decision_matches_ground_truth_all_models() {
        let cases: Vec<(Graph, &str)> = vec![
            (Graph::path(4), "path4"),
            (Graph::star(4), "star4"),
            (Graph::cycle(4), "cycle4"),
            (Graph::complete(4), "k4"),
            (Graph::from_edges(4, &[(0, 1), (2, 3)]), "two-edges"),
            (Graph::complete_bipartite(1, 3), "k13"),
        ];
        for (g, name) in cases {
            let truth = hampath::has_hamiltonian_path(&g);
            let red = encode(g);
            for kind in ModelKind::ALL {
                let model = CostModel::of_kind(kind);
                let decided = red.decides_hamiltonian(model).unwrap();
                assert_eq!(
                    decided, truth,
                    "reduction decision wrong for {name} in {model}"
                );
            }
        }
    }

    #[test]
    fn decode_recovers_a_real_hamiltonian_path() {
        let g = Graph::petersen();
        // Petersen is too big for exhaustive search; use the DP
        let red = encode(g);
        let (scaled, order) = red.solve_dp(CostModel::oneshot());
        assert_eq!(scaled, red.scaled_schedule_threshold(CostModel::oneshot()));
        let path = red.decode(&order).expect("Petersen has a Hamiltonian path");
        assert!(hampath::is_hamiltonian_path(&red.graph, &path));
    }

    #[test]
    fn dp_matches_exhaustive() {
        let mut rng = rand::thread_rng();
        for _ in 0..5 {
            let g = Graph::gnp(5, 0.5, &mut rng);
            let red = encode(g);
            for model in [CostModel::oneshot(), CostModel::nodel()] {
                let sol = red.solve(model).unwrap();
                let (dp_scaled, _) = red.solve_dp(model);
                assert_eq!(sol.scaled, dp_scaled, "DP diverges from exhaustive");
            }
        }
    }

    #[test]
    fn visit_order_optimum_matches_unrestricted_exact_solver() {
        // the key soundness check: on tiny instances the visit-order
        // optimum equals the true optimal pebbling cost
        for g in [Graph::path(3), Graph::from_edges(3, &[(0, 1)])] {
            let red = encode(g);
            let model = CostModel::oneshot();
            let (inst, _) = red.instance(model);
            let sol = red.solve(model).unwrap();
            let exact = rbp_solvers::registry::solve("exact", &inst).unwrap();
            assert_eq!(
                sol.scaled,
                exact.cost.scaled(model.epsilon()),
                "visit-order optimum is not the true optimum"
            );
        }
    }

    #[test]
    fn constant_degree_variant_has_indegree_two() {
        let red = encode(Graph::path(4));
        let cd = red.constant_degree(3);
        assert_eq!(cd.dag.max_indegree(), 2, "Appendix B: Δ = O(1)");
        // chain nodes appended after the original ids
        assert!(cd.dag.n() > red.dag.n());
    }

    #[test]
    fn constant_degree_preserves_oneshot_costs_exactly() {
        // Appendix B.1: the ladder walk is free in oneshot, so every
        // permutation costs exactly what it costs unexpanded
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let red = encode(g);
        let cd = red.constant_degree(2);
        let model = CostModel::oneshot();
        let plain_inst = red.instance(model).0;
        let cd_inst = Instance::new(cd.dag.clone(), red.constant_degree_red_limit(), model);
        for perm in all_permutations(4) {
            let plain =
                rbp_core::simulate(&plain_inst, &red.grouped.emit(&plain_inst, &perm).unwrap())
                    .unwrap()
                    .cost;
            let expanded = rbp_core::simulate(&cd_inst, &cd.grouped.emit(&cd_inst, &perm).unwrap())
                .unwrap()
                .cost;
            assert_eq!(
                plain.transfers, expanded.transfers,
                "CD expansion changed the cost of {perm:?}"
            );
        }
    }

    #[test]
    fn constant_degree_nodel_offset_is_permutation_independent() {
        // Appendix B.1: in nodel every chain node is stored once — a
        // constant offset, so decisions are preserved
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let red = encode(g);
        let cd = red.constant_degree(2);
        let model = CostModel::nodel();
        let plain_inst = red.instance(model).0;
        let cd_inst = Instance::new(cd.dag.clone(), red.constant_degree_red_limit(), model);
        let mut offset: Option<u64> = None;
        for perm in all_permutations(4) {
            let plain =
                rbp_core::simulate(&plain_inst, &red.grouped.emit(&plain_inst, &perm).unwrap())
                    .unwrap()
                    .cost
                    .transfers;
            let expanded = rbp_core::simulate(&cd_inst, &cd.grouped.emit(&cd_inst, &perm).unwrap())
                .unwrap()
                .cost
                .transfers;
            let d = expanded - plain;
            match offset {
                None => offset = Some(d),
                Some(o) => assert_eq!(o, d, "offset varies with permutation {perm:?}"),
            }
        }
    }

    #[test]
    fn constant_degree_reduction_still_decides() {
        for (g, truth) in [
            (Graph::path(4), true),
            (Graph::star(4), false),
            (Graph::cycle(4), true),
        ] {
            let red = encode(g);
            let cd = red.constant_degree(2);
            let model = CostModel::oneshot();
            let inst = Instance::new(cd.dag.clone(), red.constant_degree_red_limit(), model);
            let best = rbp_solvers::best_order(&cd.grouped, &inst).unwrap();
            let decided = best.scaled <= red.scaled_schedule_threshold(model);
            assert_eq!(decided, truth, "constant-degree reduction broke");
        }
    }

    #[test]
    fn planted_instances_decode_round_trip() {
        let mut rng = rand::thread_rng();
        for _ in 0..3 {
            let g = hampath::planted_instance(6, 3, &mut rng);
            let red = encode(g);
            let (scaled, order) = red.solve_dp(CostModel::oneshot());
            assert_eq!(scaled, red.scaled_schedule_threshold(CostModel::oneshot()));
            assert!(red.decode(&order).is_some());
        }
    }
}

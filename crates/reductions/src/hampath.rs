//! Exact Hamiltonian Path solving (the NP-hard source problem of
//! Theorem 2) via Held–Karp bitmask DP, plus instance generators.

use rbp_graph::Graph;

/// Finds a Hamiltonian path in `g` (any endpoints), or `None`.
/// O(2^n · n²) time — intended for reduction ground truth, n ≤ 20.
pub fn hamiltonian_path(g: &Graph) -> Option<Vec<usize>> {
    let n = g.n();
    if n == 0 {
        return Some(Vec::new());
    }
    if n == 1 {
        return Some(vec![0]);
    }
    assert!(n <= 20, "bitmask DP limited to 20 nodes");
    let full: u32 = (1u32 << n) - 1;
    // reach[mask] : bitset over "last" nodes for which a path covering
    // exactly `mask` and ending at `last` exists
    let mut reach = vec![0u32; 1usize << n];
    for v in 0..n {
        reach[1usize << v] = 1 << v;
    }
    for mask in 1..=full {
        let r = reach[mask as usize];
        if r == 0 {
            continue;
        }
        let mut lasts = r;
        while lasts != 0 {
            let last = lasts.trailing_zeros() as usize;
            lasts &= lasts - 1;
            let mut nbrs = g.neighbors(last).words()[0] as u32 & !mask;
            while nbrs != 0 {
                let nxt = nbrs.trailing_zeros() as usize;
                nbrs &= nbrs - 1;
                reach[(mask | (1 << nxt)) as usize] |= 1 << nxt;
            }
        }
    }
    if reach[full as usize] == 0 {
        return None;
    }
    // reconstruct backwards
    let mut path = Vec::with_capacity(n);
    let mut mask = full;
    let mut last = reach[full as usize].trailing_zeros() as usize;
    path.push(last);
    while mask.count_ones() > 1 {
        let prev_mask = mask & !(1u32 << last);
        let candidates = reach[prev_mask as usize] & (g.neighbors(last).words()[0] as u32);
        debug_assert!(candidates != 0, "DP table inconsistent");
        let prev = candidates.trailing_zeros() as usize;
        path.push(prev);
        mask = prev_mask;
        last = prev;
    }
    path.reverse();
    Some(path)
}

/// Whether `g` has a Hamiltonian path.
pub fn has_hamiltonian_path(g: &Graph) -> bool {
    hamiltonian_path(g).is_some()
}

/// Checks that `path` is a Hamiltonian path of `g`.
pub fn is_hamiltonian_path(g: &Graph, path: &[usize]) -> bool {
    if path.len() != g.n() {
        return false;
    }
    let mut seen = vec![false; g.n()];
    for &v in path {
        if v >= g.n() || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    path.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

/// A graph that contains a planted Hamiltonian path (a random permutation
/// chained together) plus `extra_edges` random additional edges.
pub fn planted_instance<R: rand::Rng>(n: usize, extra_edges: usize, rng: &mut R) -> Graph {
    use rand::seq::SliceRandom;
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    let mut g = Graph::new(n);
    for w in perm.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra_edges && guard < 100 * extra_edges + 100 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && g.add_edge(u, v) {
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_graph_is_hamiltonian() {
        let g = Graph::path(6);
        let p = hamiltonian_path(&g).unwrap();
        assert!(is_hamiltonian_path(&g, &p));
    }

    #[test]
    fn star_is_not_hamiltonian_beyond_three() {
        assert!(has_hamiltonian_path(&Graph::star(3)));
        assert!(!has_hamiltonian_path(&Graph::star(4)));
        assert!(!has_hamiltonian_path(&Graph::star(6)));
    }

    #[test]
    fn complete_and_cycle_are_hamiltonian() {
        assert!(has_hamiltonian_path(&Graph::complete(5)));
        assert!(has_hamiltonian_path(&Graph::cycle(7)));
    }

    #[test]
    fn disconnected_graph_is_not_hamiltonian() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!has_hamiltonian_path(&g));
    }

    #[test]
    fn petersen_has_hamiltonian_path() {
        // classic: no Hamiltonian cycle, but a Hamiltonian path exists
        let g = Graph::petersen();
        let p = hamiltonian_path(&g).unwrap();
        assert!(is_hamiltonian_path(&g, &p));
    }

    #[test]
    fn unbalanced_bipartite_is_not_hamiltonian() {
        // K_{1,3}: any path alternates sides
        assert!(!has_hamiltonian_path(&Graph::complete_bipartite(1, 3)));
        assert!(has_hamiltonian_path(&Graph::complete_bipartite(2, 3)));
        assert!(!has_hamiltonian_path(&Graph::complete_bipartite(2, 4)));
    }

    #[test]
    fn planted_instances_always_hamiltonian() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let g = planted_instance(8, 4, &mut rng);
            assert!(has_hamiltonian_path(&g));
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(has_hamiltonian_path(&Graph::new(0)));
        assert!(has_hamiltonian_path(&Graph::new(1)));
        assert!(!has_hamiltonian_path(&Graph::new(2)), "two isolated nodes");
    }

    #[test]
    fn validator_rejects_bad_paths() {
        let g = Graph::path(4);
        assert!(!is_hamiltonian_path(&g, &[0, 1, 2])); // too short
        assert!(!is_hamiltonian_path(&g, &[0, 1, 1, 2])); // repeat
        assert!(!is_hamiltonian_path(&g, &[0, 2, 1, 3])); // non-edge
        assert!(is_hamiltonian_path(&g, &[3, 2, 1, 0])); // reverse ok
    }
}

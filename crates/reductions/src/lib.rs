//! # rbp-reductions
//!
//! The paper's hardness reductions, together with exact solvers for the
//! classical source problems used as ground truth:
//!
//! - [`hampath`]: Hamiltonian Path (Held–Karp bitmask DP);
//! - [`vertex_cover`]: minimum Vertex Cover (branch-and-bound), the
//!   maximal-matching 2-approximation, greedy, and independent-set
//!   duality;
//! - [`reduction_hampath`]: Theorem 2 — Pebbling is NP-hard in all four
//!   models, via input groups with merged contact nodes (Fig. 5);
//! - [`reduction_vc`]: Theorem 3 — no δ < 2 approximation for oneshot
//!   pebbling unless Vertex Cover is likewise approximable (Figs. 6–7).
//!
//! Every reduction is *executable*: it compiles the source instance into
//! a pebbling instance, solves it with real solvers, decodes the
//! pebbling back into a certificate, and the tests compare against the
//! classical solvers end-to-end.

pub mod hampath;
pub mod reduction_hampath;
pub mod reduction_vc;
pub mod vertex_cover;

pub use reduction_hampath::{encode as encode_hampath, HamPathReduction};
pub use reduction_vc::{encode as encode_vc, VcReduction};

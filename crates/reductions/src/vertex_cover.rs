//! Vertex Cover solvers (the source problem of Theorem 3): exact
//! branch-and-bound, the classical maximal-matching 2-approximation, and
//! a max-degree greedy — plus independent-set duality helpers.

use rbp_graph::{BitSet, Graph};

/// Exact minimum vertex cover via branch-and-bound on an uncovered edge:
/// either endpoint must join the cover. Exponential; fine for reduction
/// ground truth (n ≤ ~30 on sparse graphs).
pub fn min_vertex_cover(g: &Graph) -> BitSet {
    let mut best = BitSet::full(g.n());
    let mut current = BitSet::new(g.n());
    branch(g, &mut current, &mut best);
    best
}

fn branch(g: &Graph, current: &mut BitSet, best: &mut BitSet) {
    if current.len() >= best.len() {
        return; // bound
    }
    // find an uncovered edge
    let uncovered = g
        .edges()
        .iter()
        .find(|&&(u, v)| !current.contains(u) && !current.contains(v));
    let Some(&(u, v)) = uncovered else {
        // full cover, strictly smaller than best by the bound above
        *best = current.clone();
        return;
    };
    for pick in [u, v] {
        current.insert(pick);
        branch(g, current, best);
        current.remove(pick);
    }
}

/// The classical 2-approximation: take both endpoints of a maximal
/// matching. |cover| ≤ 2·|VC₀|.
pub fn two_approx_cover(g: &Graph) -> BitSet {
    let mut cover = BitSet::new(g.n());
    for &(u, v) in g.edges() {
        if !cover.contains(u) && !cover.contains(v) {
            cover.insert(u);
            cover.insert(v);
        }
    }
    cover
}

/// Max-degree greedy cover (no constant-factor guarantee; ln-n in
/// general) — an extra baseline for the inapproximability experiment.
pub fn greedy_cover(g: &Graph) -> BitSet {
    let mut cover = BitSet::new(g.n());
    let mut covered = vec![false; g.edges().len()];
    loop {
        // degree over uncovered edges
        let mut deg = vec![0usize; g.n()];
        let mut any = false;
        for (ei, &(u, v)) in g.edges().iter().enumerate() {
            if !covered[ei] {
                deg[u] += 1;
                deg[v] += 1;
                any = true;
            }
        }
        if !any {
            return cover;
        }
        let v = (0..g.n()).max_by_key(|&v| deg[v]).expect("nonempty");
        cover.insert(v);
        for (ei, &(a, b)) in g.edges().iter().enumerate() {
            if a == v || b == v {
                covered[ei] = true;
            }
        }
    }
}

/// Maximum independent set via VC duality: complement of the minimum
/// cover.
pub fn max_independent_set(g: &Graph) -> BitSet {
    let mut is = BitSet::full(g.n());
    is.difference_with(&min_vertex_cover(g));
    is
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_cover_size() {
        // C5 needs ⌈5/2⌉ = 3
        let g = Graph::cycle(5);
        let c = min_vertex_cover(&g);
        assert_eq!(c.len(), 3);
        assert!(g.is_vertex_cover(&c));
    }

    #[test]
    fn path_cover_size() {
        // P4 (4 nodes, 3 edges) needs 2... actually ⌊4/2⌋ = 2? A path
        // a-b-c-d is covered by {b, c}: size 2.
        let g = Graph::path(4);
        assert_eq!(min_vertex_cover(&g).len(), 2);
    }

    #[test]
    fn star_cover_is_center() {
        let g = Graph::star(7);
        let c = min_vertex_cover(&g);
        assert_eq!(c.len(), 1);
        assert!(c.contains(0));
    }

    #[test]
    fn complete_graph_cover() {
        let g = Graph::complete(5);
        assert_eq!(min_vertex_cover(&g).len(), 4);
    }

    #[test]
    fn empty_graph_needs_nothing() {
        let g = Graph::new(5);
        assert_eq!(min_vertex_cover(&g).len(), 0);
    }

    #[test]
    fn two_approx_is_valid_and_within_factor() {
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            let g = Graph::gnp(10, 0.4, &mut rng);
            let exact = min_vertex_cover(&g);
            let approx = two_approx_cover(&g);
            assert!(g.is_vertex_cover(&approx));
            assert!(approx.len() <= 2 * exact.len().max(1));
        }
    }

    #[test]
    fn greedy_cover_is_valid() {
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            let g = Graph::gnp(12, 0.3, &mut rng);
            assert!(g.is_vertex_cover(&greedy_cover(&g)));
        }
    }

    #[test]
    fn independent_set_duality() {
        let g = Graph::cycle(6);
        let is = max_independent_set(&g);
        assert!(g.is_independent_set(&is));
        assert_eq!(is.len(), 3);
        assert_eq!(is.len() + min_vertex_cover(&g).len(), g.n());
    }

    #[test]
    fn exact_beats_or_ties_heuristics() {
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            let g = Graph::gnp(9, 0.5, &mut rng);
            let exact = min_vertex_cover(&g).len();
            assert!(exact <= two_approx_cover(&g).len());
            assert!(exact <= greedy_cover(&g).len());
        }
    }
}

//! Property tests for the game engine: state invariants under random
//! legal move sequences, cost accounting consistency, and analysis
//! agreement.

use proptest::prelude::*;
use rbp_core::{analysis, engine, CostModel, Instance, ModelKind, Move, Pebbling, State};
use rbp_graph::{DagBuilder, NodeId};

fn arb_model() -> impl Strategy<Value = CostModel> {
    prop_oneof![
        Just(CostModel::base()),
        Just(CostModel::oneshot()),
        Just(CostModel::nodel()),
        Just(CostModel::compcost()),
    ]
}

fn arb_dag(max_n: usize) -> impl Strategy<Value = rbp_graph::Dag> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::weighted(0.35), pairs).prop_map(move |coins| {
            let mut b = DagBuilder::new(n);
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if coins[idx] {
                        b.add_edge(i, j);
                    }
                    idx += 1;
                }
            }
            b.build().unwrap()
        })
    })
}

/// Drives a state with a pseudo-random walk of *legal* moves, checking
/// the structural invariants after each step.
fn random_legal_walk(inst: &Instance, steps: usize, seed: u64) -> (State, Pebbling) {
    let mut state = State::initial(inst);
    let mut trace = Pebbling::new();
    let n = inst.dag().n();
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for _ in 0..steps {
        // enumerate all legal moves, pick one pseudo-randomly
        let mut legal: Vec<Move> = Vec::new();
        for i in 0..n {
            let v = NodeId::new(i);
            for mv in [
                Move::Load(v),
                Move::Store(v),
                Move::Compute(v),
                Move::Delete(v),
            ] {
                if state.is_legal(mv, inst) {
                    legal.push(mv);
                }
            }
        }
        if legal.is_empty() {
            break;
        }
        let mv = legal[(next() % legal.len() as u64) as usize];
        state.apply(mv, inst).unwrap();
        trace.push(mv);
    }
    (state, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Invariants under arbitrary legal play: red/blue disjoint, red
    /// count within budget, pebbles only on computed nodes.
    #[test]
    fn invariants_hold_under_random_play(
        dag in arb_dag(8),
        model in arb_model(),
        seed in any::<u64>(),
    ) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, model);
        let (state, trace) = random_legal_walk(&inst, 60, seed);
        // disjoint pebbles
        prop_assert!(state.red_set().is_disjoint(state.blue_set()));
        // budget respected
        prop_assert!(state.red_count() <= r);
        prop_assert_eq!(state.red_count(), state.red_set().len());
        // pebbles imply computed
        for v in state.red_set().iter() {
            prop_assert!(state.is_computed(NodeId::new(v)));
        }
        for v in state.blue_set().iter() {
            prop_assert!(state.is_computed(NodeId::new(v)));
        }
        // the trace replays to the same state and cost
        let rep = engine::simulate_prefix(&inst, &trace).unwrap();
        prop_assert_eq!(rep.final_state, state);
        // cost accounting matches trace statistics
        let stats = trace.stats();
        prop_assert_eq!(rep.cost.transfers, stats.transfers());
        prop_assert_eq!(rep.cost.computes, stats.computes);
    }

    /// The analysis module agrees with the engine on peak occupancy and
    /// per-node totals.
    #[test]
    fn analysis_matches_engine(
        dag in arb_dag(8),
        model in arb_model(),
        seed in any::<u64>(),
    ) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, model);
        let (_, trace) = random_legal_walk(&inst, 40, seed);
        let rep = engine::simulate_prefix(&inst, &trace).unwrap();
        let a = analysis::analyze(&inst, &trace);
        prop_assert_eq!(a.peak_red, rep.peak_red);
        prop_assert_eq!(a.len, trace.len());
        let loads: u32 = a.traffic.iter().map(|t| t.loads).sum();
        let stores: u32 = a.traffic.iter().map(|t| t.stores).sum();
        prop_assert_eq!((loads + stores) as u64, rep.cost.transfers);
    }

    /// Oneshot never computes a node twice even under adversarial play.
    #[test]
    fn oneshot_single_compute_invariant(dag in arb_dag(8), seed in any::<u64>()) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, CostModel::oneshot());
        let (_, trace) = random_legal_walk(&inst, 80, seed);
        let mut counts = std::collections::HashMap::new();
        for mv in trace.moves() {
            if let Move::Compute(v) = mv {
                *counts.entry(*v).or_insert(0u32) += 1;
            }
        }
        for (_, c) in counts {
            prop_assert_eq!(c, 1);
        }
    }

    /// NoDel never shrinks the pebbled set.
    #[test]
    fn nodel_pebbles_are_monotone(dag in arb_dag(8), seed in any::<u64>()) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag.clone(), r, CostModel::nodel());
        let mut state = State::initial(&inst);
        let (_, trace) = random_legal_walk(&inst, 50, seed);
        let mut prev = 0usize;
        for &mv in trace.moves() {
            state.apply(mv, &inst).unwrap();
            let pebbled = state.red_set().len() + state.blue_set().len();
            prop_assert!(pebbled >= prev);
            prev = pebbled;
        }
    }

    /// `is_legal` is a pure predicate that agrees with `apply` on every
    /// move, for random reachable states, all four models, and both
    /// source conventions.
    #[test]
    fn is_legal_agrees_with_apply(
        dag in arb_dag(8),
        model in arb_model(),
        blue_sources in any::<bool>(),
        steps in 0usize..50,
        seed in any::<u64>(),
    ) {
        let r = dag.max_indegree() + 1;
        let mut inst = Instance::new(dag, r, model);
        if blue_sources {
            inst = inst.with_source_convention(rbp_core::SourceConvention::InitiallyBlue);
        }
        let (state, _) = random_legal_walk(&inst, steps, seed);
        for i in 0..inst.dag().n() {
            let v = NodeId::new(i);
            for mv in [
                Move::Load(v),
                Move::Store(v),
                Move::Compute(v),
                Move::Delete(v),
            ] {
                let mut probe = state.clone();
                prop_assert_eq!(
                    state.is_legal(mv, &inst),
                    probe.apply(mv, &inst).is_ok(),
                    "is_legal disagrees with apply on {:?}",
                    mv
                );
            }
        }
    }

    /// Scaled-cost comparison never disagrees with exact rational totals.
    #[test]
    fn scaled_cost_orders_like_rationals(
        t1 in 0u64..500, c1 in 0u64..500,
        t2 in 0u64..500, c2 in 0u64..500,
    ) {
        let eps = rbp_core::Ratio::new(1, 100);
        let a = rbp_core::Cost { transfers: t1, computes: c1 };
        let b = rbp_core::Cost { transfers: t2, computes: c2 };
        let by_scaled = a.scaled(eps).cmp(&b.scaled(eps));
        let by_total = a.total(eps).cmp(&b.total(eps));
        prop_assert_eq!(by_scaled, by_total);
    }
}

/// A fixed-model check that every error variant is reachable through the
/// public API (failure-injection coverage).
#[test]
fn all_error_variants_reachable() {
    use rbp_core::PebblingError as E;
    let mut b = DagBuilder::new(2);
    b.add_edge(0, 1);
    let dag = b.build().unwrap();
    let v0 = NodeId::new(0);
    let v1 = NodeId::new(1);

    let oneshot = Instance::new(dag.clone(), 2, CostModel::oneshot());
    let mut s = State::initial(&oneshot);
    assert!(matches!(
        s.apply(Move::Load(v0), &oneshot),
        Err(E::LoadNotBlue { .. })
    ));
    assert!(matches!(
        s.apply(Move::Store(v0), &oneshot),
        Err(E::StoreNotRed { .. })
    ));
    assert!(matches!(
        s.apply(Move::Delete(v0), &oneshot),
        Err(E::DeleteEmpty { .. })
    ));
    assert!(matches!(
        s.apply(Move::Compute(v1), &oneshot),
        Err(E::InputNotRed { .. })
    ));
    s.apply(Move::Compute(v0), &oneshot).unwrap();
    assert!(matches!(
        s.apply(Move::Compute(v0), &oneshot),
        Err(E::ComputeOnRed { .. })
    ));
    s.apply(Move::Delete(v0), &oneshot).unwrap();
    assert!(matches!(
        s.apply(Move::Compute(v0), &oneshot),
        Err(E::RecomputeForbidden { .. })
    ));

    let tight = Instance::new(dag.clone(), 1, CostModel::base());
    let mut s2 = State::initial(&tight);
    s2.apply(Move::Compute(v0), &tight).unwrap();
    assert!(matches!(
        s2.apply(Move::Compute(v1), &tight),
        Err(E::RedLimitExceeded { .. })
    ));

    let nodel = Instance::new(dag.clone(), 2, CostModel::nodel());
    let mut s3 = State::initial(&nodel);
    s3.apply(Move::Compute(v0), &nodel).unwrap();
    assert!(matches!(
        s3.apply(Move::Delete(v0), &nodel),
        Err(E::DeleteForbidden { .. })
    ));

    let blue_start = Instance::new(dag, 2, CostModel::base())
        .with_source_convention(rbp_core::SourceConvention::InitiallyBlue);
    let mut s4 = State::initial(&blue_start);
    assert!(matches!(
        s4.apply(Move::Compute(v0), &blue_start),
        Err(E::SourceNotComputable { .. })
    ));

    // Incomplete + Infeasible via the engine/bounds layer
    let oneshot2 = Instance::new(
        {
            let mut b = DagBuilder::new(2);
            b.add_edge(0, 1);
            b.build().unwrap()
        },
        2,
        CostModel::oneshot(),
    );
    let err = engine::simulate(&oneshot2, &Pebbling::new()).unwrap_err();
    assert!(matches!(err.error, E::Incomplete { .. }));
    let infeasible = oneshot2.with_red_limit(1);
    assert!(matches!(
        rbp_core::bounds::check_feasible(&infeasible),
        Err(E::Infeasible { .. })
    ));
    let _ = ModelKind::ALL;
}

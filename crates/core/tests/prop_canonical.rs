//! Property tests for [`Instance::canonical_key`] and the instance wire
//! format: relabeling invariance (when refinement individualizes),
//! parameter separation, and serialize/parse round trips.

use proptest::prelude::*;
use rbp_core::{io, CostModel, Instance, SinkConvention, SourceConvention};
use rbp_graph::{Dag, DagBuilder};

fn arb_model() -> impl Strategy<Value = CostModel> {
    prop_oneof![
        Just(CostModel::base()),
        Just(CostModel::oneshot()),
        Just(CostModel::nodel()),
        Just(CostModel::compcost()),
    ]
}

/// Upper-triangular coin-flip DAGs (the prop_engine strategy).
fn arb_dag(max_n: usize) -> impl Strategy<Value = Dag> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::weighted(0.4), pairs).prop_map(move |coins| {
            let mut b = DagBuilder::new(n);
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if coins[idx] {
                        b.add_edge(i, j);
                    }
                    idx += 1;
                }
            }
            b.build().unwrap()
        })
    })
}

/// Rebuilds `dag` under the node permutation `perm` (old id → new id),
/// preserving labels.
fn relabel(dag: &Dag, perm: &[usize]) -> Dag {
    let mut b = DagBuilder::new(dag.n());
    for (u, v) in dag.edges() {
        b.add_edge(perm[u.index()], perm[v.index()]);
    }
    b.build().expect("a permuted DAG is still a DAG")
}

/// A deterministic permutation of `0..n` from a seed (Fisher–Yates over
/// an xorshift stream).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let j = (seed % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    /// Isomorphic relabelings collide whenever the key claims
    /// relabeling invariance (and the claim itself is iso-invariant).
    #[test]
    fn relabelings_collide_when_canonical(
        dag in arb_dag(9),
        model in arb_model(),
        seed in any::<u64>(),
    ) {
        let r = dag.max_indegree() + 2;
        let perm = permutation(dag.n(), seed | 1);
        let relabeled = relabel(&dag, &perm);
        let a = Instance::new(dag, r, model).canonical_key();
        let b = Instance::new(relabeled, r, model).canonical_key();
        prop_assert_eq!(
            a.is_relabeling_invariant(),
            b.is_relabeling_invariant(),
            "discreteness of refinement is itself an isomorphism invariant"
        );
        if a.is_relabeling_invariant() {
            prop_assert_eq!(a, b, "canonical keys must ignore node labeling");
        }
    }

    /// Distinct red budgets and distinct models never collide on the
    /// same DAG.
    #[test]
    fn parameters_separate_keys(dag in arb_dag(8), seed in any::<u64>()) {
        let r = dag.max_indegree() + 2;
        let inst = Instance::new(dag, r, CostModel::base());
        let key = inst.canonical_key();
        prop_assert_ne!(key, inst.with_red_limit(r + 1 + (seed % 3) as usize).canonical_key());
        for other in [CostModel::oneshot(), CostModel::nodel(), CostModel::compcost()] {
            prop_assert_ne!(key, inst.with_model(other).canonical_key());
        }
    }

    /// The wire format round-trips any instance, and the round-tripped
    /// copy keys identically (the service's cache contract: a submitted
    /// document hits the same cache slot as the in-process instance).
    #[test]
    fn wire_round_trip_preserves_instance_and_key(
        dag in arb_dag(8),
        model in arb_model(),
        blue_sources in any::<bool>(),
        blue_sinks in any::<bool>(),
    ) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, model)
            .with_source_convention(if blue_sources {
                SourceConvention::InitiallyBlue
            } else {
                SourceConvention::FreeCompute
            })
            .with_sink_convention(if blue_sinks {
                SinkConvention::RequireBlue
            } else {
                SinkConvention::AnyPebble
            });
        let text = io::write_instance(&inst);
        let back = io::parse_instance(&text).expect("own output must parse");
        prop_assert!(io::same_instance(&inst, &back));
        prop_assert_eq!(inst.canonical_key(), back.canonical_key());
        // stable serialization
        prop_assert_eq!(io::write_instance(&back), text);
    }
}

//! Property tests for [`Instance::canonical_key`] and the instance wire
//! format: relabeling invariance (when refinement individualizes),
//! parameter separation, and serialize/parse round trips.

use proptest::prelude::*;
use rbp_core::{io, CostModel, Instance, SinkConvention, SourceConvention};
use rbp_graph::{Dag, DagBuilder};

fn arb_model() -> impl Strategy<Value = CostModel> {
    prop_oneof![
        Just(CostModel::base()),
        Just(CostModel::oneshot()),
        Just(CostModel::nodel()),
        Just(CostModel::compcost()),
    ]
}

/// Upper-triangular coin-flip DAGs (the prop_engine strategy).
fn arb_dag(max_n: usize) -> impl Strategy<Value = Dag> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::weighted(0.4), pairs).prop_map(move |coins| {
            let mut b = DagBuilder::new(n);
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if coins[idx] {
                        b.add_edge(i, j);
                    }
                    idx += 1;
                }
            }
            b.build().unwrap()
        })
    })
}

/// Rebuilds `dag` under the node permutation `perm` (old id → new id),
/// preserving labels.
fn relabel(dag: &Dag, perm: &[usize]) -> Dag {
    let mut b = DagBuilder::new(dag.n());
    for (u, v) in dag.edges() {
        b.add_edge(perm[u.index()], perm[v.index()]);
    }
    b.build().expect("a permuted DAG is still a DAG")
}

/// A deterministic permutation of `0..n` from a seed (Fisher–Yates over
/// an xorshift stream).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let j = (seed % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// All permutations of `0..n` (Heap's algorithm); callers keep n ≤ 6.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn heap(k: usize, arr: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(arr.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, arr, out);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut out = Vec::new();
    heap(n, &mut (0..n).collect::<Vec<_>>(), &mut out);
    out
}

/// Ground-truth DAG isomorphism by brute force over all node
/// permutations — viable exactly because the anti-collision tests stay
/// at n ≤ 6 (≤ 720 candidates).
fn is_isomorphic(a: &Dag, b: &Dag) -> bool {
    if a.n() != b.n() || a.num_edges() != b.num_edges() {
        return false;
    }
    let eb: std::collections::HashSet<(usize, usize)> =
        b.edges().map(|(u, v)| (u.index(), v.index())).collect();
    let ea: Vec<(usize, usize)> = a.edges().map(|(u, v)| (u.index(), v.index())).collect();
    permutations(a.n())
        .iter()
        .any(|perm| ea.iter().all(|&(u, v)| eb.contains(&(perm[u], perm[v]))))
}

/// Exhaustive anti-collision smoke: over *every* DAG on 2–4 nodes
/// (all upper-triangular edge masks), two instances share a canonical
/// key only if their DAGs are isomorphic. Complements the
/// relabeling-collision property with the opposite direction.
#[test]
fn exhaustive_small_dags_collide_only_when_isomorphic() {
    let mut all: Vec<(Dag, rbp_core::CanonicalKey)> = Vec::new();
    for n in 2..=4usize {
        let pairs = n * (n - 1) / 2;
        for mask in 0u32..(1 << pairs) {
            let mut b = DagBuilder::new(n);
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if mask & (1 << idx) != 0 {
                        b.add_edge(i, j);
                    }
                    idx += 1;
                }
            }
            let dag = b.build().unwrap();
            let key = Instance::new(dag.clone(), dag.max_indegree() + 1, CostModel::base())
                .canonical_key();
            all.push((dag, key));
        }
    }
    for (i, (da, ka)) in all.iter().enumerate() {
        for (db, kb) in &all[i + 1..] {
            if ka == kb {
                assert!(
                    is_isomorphic(da, db),
                    "canonical-key collision on non-isomorphic DAGs:\n{da:?}\n{db:?}"
                );
            }
        }
    }
}

proptest! {
    /// Random-pair anti-collision smoke at n ≤ 6: whenever two sampled
    /// instances share a key, brute-force isomorphism must confirm the
    /// DAGs really are the same graph.
    #[test]
    fn non_isomorphic_small_dags_never_collide(
        a in arb_dag(6),
        b in arb_dag(6),
        model in arb_model(),
    ) {
        let r = a.max_indegree().max(b.max_indegree()) + 1;
        let ka = Instance::new(a.clone(), r, model).canonical_key();
        let kb = Instance::new(b.clone(), r, model).canonical_key();
        if ka == kb {
            prop_assert!(
                is_isomorphic(&a, &b),
                "canonical-key collision on non-isomorphic DAGs"
            );
        }
    }

    /// Isomorphic relabelings collide whenever the key claims
    /// relabeling invariance (and the claim itself is iso-invariant).
    #[test]
    fn relabelings_collide_when_canonical(
        dag in arb_dag(9),
        model in arb_model(),
        seed in any::<u64>(),
    ) {
        let r = dag.max_indegree() + 2;
        let perm = permutation(dag.n(), seed | 1);
        let relabeled = relabel(&dag, &perm);
        let a = Instance::new(dag, r, model).canonical_key();
        let b = Instance::new(relabeled, r, model).canonical_key();
        prop_assert_eq!(
            a.is_relabeling_invariant(),
            b.is_relabeling_invariant(),
            "discreteness of refinement is itself an isomorphism invariant"
        );
        if a.is_relabeling_invariant() {
            prop_assert_eq!(a, b, "canonical keys must ignore node labeling");
        }
    }

    /// Distinct red budgets and distinct models never collide on the
    /// same DAG.
    #[test]
    fn parameters_separate_keys(dag in arb_dag(8), seed in any::<u64>()) {
        let r = dag.max_indegree() + 2;
        let inst = Instance::new(dag, r, CostModel::base());
        let key = inst.canonical_key();
        prop_assert_ne!(key, inst.with_red_limit(r + 1 + (seed % 3) as usize).canonical_key());
        for other in [CostModel::oneshot(), CostModel::nodel(), CostModel::compcost()] {
            prop_assert_ne!(key, inst.with_model(other).canonical_key());
        }
    }

    /// The wire format round-trips any instance, and the round-tripped
    /// copy keys identically (the service's cache contract: a submitted
    /// document hits the same cache slot as the in-process instance).
    #[test]
    fn wire_round_trip_preserves_instance_and_key(
        dag in arb_dag(8),
        model in arb_model(),
        blue_sources in any::<bool>(),
        blue_sinks in any::<bool>(),
    ) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, model)
            .with_source_convention(if blue_sources {
                SourceConvention::InitiallyBlue
            } else {
                SourceConvention::FreeCompute
            })
            .with_sink_convention(if blue_sinks {
                SinkConvention::RequireBlue
            } else {
                SinkConvention::AnyPebble
            });
        let text = io::write_instance(&inst);
        let back = io::parse_instance(&text).expect("own output must parse");
        prop_assert!(io::same_instance(&inst, &back));
        prop_assert_eq!(inst.canonical_key(), back.canonical_key());
        // stable serialization
        prop_assert_eq!(io::write_instance(&back), text);
    }
}

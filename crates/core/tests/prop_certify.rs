//! Differential property tests: the independent certifier and the
//! validating engine must agree — on acceptance, on rejection, and on
//! every cost figure — across random instances, random *legal* traces,
//! and random *garbage* traces. The two interpreters share no code, so
//! agreement here is evidence neither has drifted from the paper's
//! rules.

use proptest::prelude::*;
use rbp_core::{certify, engine, CertifyError, CostModel, Instance, Move, Pebbling, State};
use rbp_core::{MppDim, MppState, Ratio};
use rbp_graph::{DagBuilder, NodeId};

fn arb_model() -> impl Strategy<Value = CostModel> {
    prop_oneof![
        Just(CostModel::base()),
        Just(CostModel::oneshot()),
        Just(CostModel::nodel()),
        Just(CostModel::compcost()),
    ]
}

fn arb_dag(max_n: usize) -> impl Strategy<Value = rbp_graph::Dag> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::weighted(0.35), pairs).prop_map(move |coins| {
            let mut b = DagBuilder::new(n);
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if coins[idx] {
                        b.add_edge(i, j);
                    }
                    idx += 1;
                }
            }
            b.build().unwrap()
        })
    })
}

fn arb_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (
        arb_dag(max_n),
        arb_model(),
        0..3usize,
        proptest::bool::weighted(0.25),
        proptest::bool::weighted(0.25),
    )
        .prop_map(|(dag, model, slack, blue_sources, blue_sinks)| {
            let base = Instance::new(dag, 1, model);
            let mut inst = base.with_red_limit(base.min_feasible_r() + slack);
            if blue_sources {
                inst = inst.with_source_convention(rbp_core::SourceConvention::InitiallyBlue);
            }
            if blue_sinks {
                inst = inst.with_sink_convention(rbp_core::SinkConvention::RequireBlue);
            }
            inst
        })
}

/// Lifts a classic instance to the multiprocessor game: p ∈ {1, 2, 4},
/// occasionally with non-unit exact cost weights.
fn arb_mpp_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (
        arb_instance(max_n),
        0..3usize,
        proptest::bool::weighted(0.3),
    )
        .prop_map(|(inst, p_idx, weighted)| {
            let p = [1u32, 2, 4][p_idx];
            if weighted {
                inst.with_mpp(MppDim {
                    p,
                    comm: Ratio::new(3, 2),
                    comp: Ratio::new(1, 4),
                })
            } else {
                inst.with_procs(p)
            }
        })
}

/// A pseudo-random walk of legal moves — yields traces the engine
/// accepts as prefixes (completion not guaranteed).
fn legal_walk(inst: &Instance, steps: usize, seed: u64) -> Pebbling {
    let mut state = State::initial(inst);
    let mut trace = Pebbling::new();
    let n = inst.dag().n();
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for _ in 0..steps {
        let mut legal: Vec<Move> = Vec::new();
        for i in 0..n {
            let v = NodeId::new(i);
            for mv in [
                Move::Load(v),
                Move::Store(v),
                Move::Compute(v),
                Move::Delete(v),
            ] {
                if state.is_legal(mv, inst) {
                    legal.push(mv);
                }
            }
        }
        if legal.is_empty() {
            break;
        }
        let mv = legal[(next() % legal.len() as u64) as usize];
        state.apply(mv, inst).unwrap();
        trace.push(mv);
    }
    trace
}

/// The multiprocessor analogue of [`legal_walk`]: a random walk over
/// (move, processor) pairs, legality probed by applying on a clone.
fn legal_walk_mpp(inst: &Instance, steps: usize, seed: u64) -> Pebbling {
    let mut state = MppState::initial(inst);
    let mut trace = Pebbling::new();
    let n = inst.dag().n();
    let p = inst.procs().max(1) as u16;
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for _ in 0..steps {
        let mut legal: Vec<(Move, u16)> = Vec::new();
        for i in 0..n {
            let v = NodeId::new(i);
            for proc in 0..p {
                for mv in [
                    Move::Load(v),
                    Move::Store(v),
                    Move::Compute(v),
                    Move::Delete(v),
                ] {
                    if state.clone().apply(mv, proc, inst).is_ok() {
                        legal.push((mv, proc));
                    }
                }
            }
        }
        if legal.is_empty() {
            break;
        }
        let (mv, proc) = legal[(next() % legal.len() as u64) as usize];
        state.apply(mv, proc, inst).unwrap();
        trace.push_on(mv, proc);
    }
    trace
}

/// An unconstrained random move sequence — mostly illegal.
fn garbage_trace(n: usize, moves: &[(u8, u8)]) -> Pebbling {
    let mut p = Pebbling::new();
    for &(kind, node) in moves {
        let v = NodeId::new(node as usize % n.max(1));
        p.push(match kind % 4 {
            0 => Move::Load(v),
            1 => Move::Store(v),
            2 => Move::Compute(v),
            _ => Move::Delete(v),
        });
    }
    p
}

/// Certifier and engine must return the same verdict for `trace`, and
/// on acceptance the same cost; on rejection the same failing step.
fn assert_agreement(inst: &Instance, trace: &Pebbling) {
    let engine_verdict = engine::simulate(inst, trace);
    let certifier_verdict = certify::certify(inst, trace);
    match (engine_verdict, certifier_verdict) {
        (Ok(rep), Ok(cert)) => {
            assert_eq!(cert.transfers, rep.cost.transfers, "transfer counts differ");
            assert_eq!(cert.computes, rep.cost.computes, "compute counts differ");
            assert_eq!(
                cert.scaled_cost,
                rep.scaled_cost(inst),
                "scaled costs differ"
            );
            assert!(cert.matches(&rep.cost));
        }
        (Err(e), Err(c)) => {
            // both reject; the failing step must agree (engine encodes
            // the completeness failure as step usize::MAX)
            let engine_step = e.step;
            match c {
                CertifyError::Rejected { step, .. } => {
                    assert_eq!(step, engine_step, "rejection steps differ")
                }
                CertifyError::Incomplete { .. } => {
                    assert_eq!(engine_step, usize::MAX, "engine rejected mid-trace")
                }
            }
        }
        (Ok(_), Err(c)) => panic!("engine accepted, certifier rejected: {c}"),
        (Err(e), Ok(_)) => panic!("certifier accepted, engine rejected: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Legal walks: both interpreters replay them identically (accept
    /// as prefix or agree the finishing condition fails).
    #[test]
    fn certifier_agrees_with_engine_on_legal_walks(
        inst in arb_instance(7),
        steps in 0..40usize,
        seed in any::<u64>(),
    ) {
        let trace = legal_walk(&inst, steps, seed);
        assert_agreement(&inst, &trace);
    }

    /// Garbage: both interpreters reject at the same step, or both
    /// accept (a garbage trace can be legal by luck).
    #[test]
    fn certifier_agrees_with_engine_on_garbage(
        inst in arb_instance(6),
        moves in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..30),
    ) {
        let trace = garbage_trace(inst.dag().n(), &moves);
        assert_agreement(&inst, &trace);
    }

    /// Multiprocessor legal walks: the mpp engine and the p-aware
    /// certifier replay processor-tagged traces identically, exact
    /// cost weights included.
    #[test]
    fn certifier_agrees_with_engine_on_mpp_walks(
        inst in arb_mpp_instance(6),
        steps in 0..40usize,
        seed in any::<u64>(),
    ) {
        let trace = legal_walk_mpp(&inst, steps, seed);
        assert_agreement(&inst, &trace);
    }

    /// Multiprocessor garbage: random (move, processor) sequences with
    /// tags beyond the processor count must be rejected at the same
    /// step by both interpreters.
    #[test]
    fn certifier_agrees_with_engine_on_mpp_garbage(
        inst in arb_mpp_instance(5),
        moves in proptest::collection::vec((any::<u8>(), any::<u8>(), 0u16..6), 0..30),
    ) {
        let mut trace = Pebbling::new();
        let n = inst.dag().n();
        for &(kind, node, proc) in &moves {
            let v = NodeId::new(node as usize % n.max(1));
            let mv = match kind % 4 {
                0 => Move::Load(v),
                1 => Move::Store(v),
                2 => Move::Compute(v),
                _ => Move::Delete(v),
            };
            trace.push_on(mv, proc);
        }
        assert_agreement(&inst, &trace);
    }
}

//! A pebbling problem instance: DAG + red-pebble budget + model +
//! start/finish conventions, optionally extended with the
//! multiprocessor (MPP) dimension.

use crate::cost::{Cost, Ratio};
use crate::model::{CostModel, ModelKind};
use rbp_graph::hash::hash_words;
use rbp_graph::{levels, Dag};
use std::fmt;
use std::sync::Arc;

/// How source nodes behave at the start of a pebbling (Appendix C).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SourceConvention {
    /// Sources are regular nodes with zero inputs: computable for free at
    /// any time (the paper's main definition).
    #[default]
    FreeCompute,
    /// Sources start with a blue pebble and are *not* computable; they
    /// must be loaded (the Hong–Kung convention).
    InitiallyBlue,
}

/// What the finishing state requires of sink nodes (Appendix C).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SinkConvention {
    /// Every sink must hold a pebble of either colour (the paper's main
    /// definition).
    #[default]
    AnyPebble,
    /// Every sink must hold a blue pebble (outputs written to slow
    /// memory).
    RequireBlue,
}

/// The multiprocessor (MPP) dimension of an instance, after
/// Böhnlein/Papp/Yzelman 2024: `p` processors, each with a private fast
/// memory of R red pebbles, sharing one blue slow memory.
///
/// The cost vector is weighed through exact [`Ratio`] arithmetic so
/// argmins stay float-free: a transfer (load or store, on any
/// processor) costs `comm`, a compute costs `comp`. With the default
/// weights — `comm` = 1, `comp` = the model's ε — the scaled cost of a
/// `p = 1` trace coincides *exactly* with the classic
/// [`Cost::scaled`](crate::cost::Cost::scaled) value, which is what
/// makes `mpp:1` a drop-in equivalent of the single-processor game.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MppDim {
    /// Number of processors p ≥ 1.
    pub p: u32,
    /// Weight of one transfer (load or store) in the scalar objective.
    pub comm: Ratio,
    /// Weight of one compute in the scalar objective.
    pub comp: Ratio,
}

impl MppDim {
    /// The dimension with `p` processors and the default weights for
    /// `model`: communication weighs 1, computation weighs the model's ε
    /// (zero except under compcost) — exactly the classic objective.
    pub fn with_default_weights(p: u32, model: CostModel) -> Self {
        let eps = model.epsilon();
        MppDim {
            p,
            comm: Ratio::new(1, 1),
            comp: eps,
        }
    }

    /// Whether the weights are the defaults for `model` (see
    /// [`MppDim::with_default_weights`]).
    pub fn has_default_weights(&self, model: CostModel) -> bool {
        self.comm == Ratio::new(1, 1) && self.comp == model.epsilon()
    }
}

/// A complete pebbling problem: *given DAG and R, pebble every sink*.
///
/// The decision version asks whether a pebbling of cost at most C exists
/// (paper Section 1); solvers in `rbp-solvers` compute the minimum C.
///
/// The DAG is held behind an [`Arc`] so instances are cheap to clone into
/// worker threads for parallel sweeps.
#[derive(Clone)]
pub struct Instance {
    dag: Arc<Dag>,
    red_limit: usize,
    model: CostModel,
    source_convention: SourceConvention,
    sink_convention: SinkConvention,
    /// `None` = the classic single-processor game. `Some` lifts the
    /// instance into the multiprocessor model.
    mpp: Option<MppDim>,
}

impl Instance {
    /// Creates an instance with the default conventions (freely computable
    /// sources; sinks need any-colour pebbles).
    pub fn new(dag: Dag, red_limit: usize, model: CostModel) -> Self {
        Instance {
            dag: Arc::new(dag),
            red_limit,
            model,
            source_convention: SourceConvention::default(),
            sink_convention: SinkConvention::default(),
            mpp: None,
        }
    }

    /// Shares an existing DAG without copying it.
    pub fn from_shared(dag: Arc<Dag>, red_limit: usize, model: CostModel) -> Self {
        Instance {
            dag,
            red_limit,
            model,
            source_convention: SourceConvention::default(),
            sink_convention: SinkConvention::default(),
            mpp: None,
        }
    }

    /// Returns a copy of this instance with a different source convention.
    ///
    /// All `with_*` builders share one convention: they take `&self` and
    /// return a modified clone (the DAG is behind an [`Arc`], so a clone
    /// is cheap). Chaining on a fresh instance works as before:
    /// `Instance::new(..).with_source_convention(..)`.
    pub fn with_source_convention(&self, c: SourceConvention) -> Self {
        let mut i = self.clone();
        i.source_convention = c;
        i
    }

    /// Returns a copy of this instance with a different sink convention.
    pub fn with_sink_convention(&self, c: SinkConvention) -> Self {
        let mut i = self.clone();
        i.sink_convention = c;
        i
    }

    /// Returns a copy of this instance with a different red-pebble budget
    /// (used by opt(R) sweeps; the DAG is shared, not cloned).
    pub fn with_red_limit(&self, red_limit: usize) -> Self {
        let mut i = self.clone();
        i.red_limit = red_limit;
        i
    }

    /// Returns a copy of this instance under a different model.
    pub fn with_model(&self, model: CostModel) -> Self {
        let mut i = self.clone();
        i.model = model;
        i
    }

    /// Returns a copy of this instance with `p` processors and the
    /// existing cost weights (or the defaults if the instance was
    /// classic). `p ≤ 1` with default weights drops back to the classic
    /// single-processor game, so `with_procs` is self-normalizing:
    /// `inst.with_procs(1)` on a classic instance is a no-op.
    pub fn with_procs(&self, p: u32) -> Self {
        let mut i = self.clone();
        i.mpp = match self.mpp {
            Some(dim) if !dim.has_default_weights(self.model) => {
                Some(MppDim { p: p.max(1), ..dim })
            }
            _ if p <= 1 => None,
            _ => Some(MppDim::with_default_weights(p, self.model)),
        };
        i
    }

    /// Returns a copy of this instance with an explicit MPP dimension
    /// (processor count *and* cost weights). Unlike [`Instance::with_procs`]
    /// this never normalizes away: `with_mpp` with `p = 1` and custom
    /// weights keeps the MPP objective.
    pub fn with_mpp(&self, dim: MppDim) -> Self {
        let mut i = self.clone();
        i.mpp = Some(MppDim {
            p: dim.p.max(1),
            ..dim
        });
        i
    }

    /// Returns a classic (single-processor, default-objective) copy.
    pub fn without_mpp(&self) -> Self {
        let mut i = self.clone();
        i.mpp = None;
        i
    }

    /// The DAG being pebbled.
    #[inline]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Shared handle to the DAG.
    #[inline]
    pub fn dag_arc(&self) -> Arc<Dag> {
        Arc::clone(&self.dag)
    }

    /// The red-pebble budget R.
    #[inline]
    pub fn red_limit(&self) -> usize {
        self.red_limit
    }

    /// The governing cost model.
    #[inline]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Source convention in force.
    #[inline]
    pub fn source_convention(&self) -> SourceConvention {
        self.source_convention
    }

    /// Sink convention in force.
    #[inline]
    pub fn sink_convention(&self) -> SinkConvention {
        self.sink_convention
    }

    /// The MPP dimension, if this instance is multiprocessor.
    #[inline]
    pub fn mpp(&self) -> Option<MppDim> {
        self.mpp
    }

    /// Number of processors: the MPP `p`, or 1 for classic instances.
    #[inline]
    pub fn procs(&self) -> usize {
        self.mpp.map_or(1, |d| d.p as usize)
    }

    /// The integer `(comm_scale, comp_scale)` pair the scalar objective
    /// is computed with: `scaled = transfers·comm_scale +
    /// computes·comp_scale`. Both weights are brought to the common
    /// denominator `comm.den·comp.den` (which cancels in comparisons),
    /// so the scale stays exact integer arithmetic. For classic
    /// instances this is `(den(ε), num(ε))` — the same scale
    /// [`Cost::scaled`](crate::cost::Cost::scaled) uses — and MPP
    /// instances with default weights produce identical values.
    pub fn cost_scales(&self) -> (u64, u64) {
        match self.mpp {
            Some(dim) => (
                dim.comm.num() * dim.comp.den(),
                dim.comp.num() * dim.comm.den(),
            ),
            None => {
                let eps = self.model.epsilon();
                (eps.den(), eps.num())
            }
        }
    }

    /// The exact scalar objective of `cost` under this instance's
    /// weights (see [`Instance::cost_scales`]).
    pub fn scaled_cost(&self, cost: &Cost) -> u128 {
        let (comm, comp) = self.cost_scales();
        cost.transfers as u128 * comm as u128 + cost.computes as u128 * comp as u128
    }

    /// A stable 128-bit digest of the *problem* this instance poses —
    /// the cache key of the batch-solve service.
    ///
    /// Two instances with the same DAG structure, red budget, model, and
    /// conventions always produce the same key (node labels are ignored:
    /// they never affect a pebbling's cost). When cheap topo-layer
    /// refinement individualizes every node — iterated
    /// Weisfeiler–Leman-style recoloring seeded from `(topological
    /// level, indegree, outdegree)` — the digest is additionally
    /// invariant under node relabeling: the DAG is re-serialized in
    /// refinement-color order, so isomorphic relabelings of the same
    /// problem collide on purpose ([`CanonicalKey::is_relabeling_invariant`]
    /// reports `true`). When refinement stalls before individualizing
    /// (automorphism-rich DAGs), the digest falls back to the exact
    /// node-id-order serialization: still deterministic and
    /// collision-resistant, just not relabeling-invariant — full graph
    /// canonicalization is GI-hard and a cache key must stay cheap.
    pub fn canonical_key(&self) -> CanonicalKey {
        let dag = self.dag();
        let n = dag.n();
        let order = refinement_order(dag);
        let canonical = order.is_some();
        // perm[original id] = serialized position
        let perm: Vec<u32> = match &order {
            Some(by_color) => {
                let mut perm = vec![0u32; n];
                for (pos, &v) in by_color.iter().enumerate() {
                    perm[v] = pos as u32;
                }
                perm
            }
            None => (0..n as u32).collect(),
        };
        // serialize: header, instance parameters, then per-node sorted
        // predecessor lists in serialized order
        let eps = self.model.epsilon();
        let mut stream: Vec<u64> = Vec::with_capacity(15 + n + dag.num_edges());
        stream.extend_from_slice(&[
            0x7265_6462_6c75_6501, // "redblue" format marker, version 1
            canonical as u64,
            n as u64,
            dag.num_edges() as u64,
            self.red_limit as u64,
            model_discriminant(self.model.kind()),
            eps.num(),
            eps.den(),
            self.source_convention as u64,
            self.sink_convention as u64,
        ]);
        // The full model dimension: p and the objective weights. Classic
        // instances serialize as the p = 1 / default-weight point of the
        // same space, so `with_procs(1)` (a no-op) cannot change the key
        // while any genuine MPP lift (p or weights) must.
        let (p, comm, comp) = match self.mpp {
            Some(dim) => (dim.p as u64, dim.comm, dim.comp),
            None => (1, Ratio::new(1, 1), eps),
        };
        stream.extend_from_slice(&[p, comm.num(), comm.den(), comp.num(), comp.den()]);
        let mut preds: Vec<u32> = Vec::new();
        for pos in 0..n {
            let v = match &order {
                Some(by_color) => by_color[pos],
                None => pos,
            };
            preds.clear();
            preds.extend(
                dag.preds(rbp_graph::NodeId::new(v))
                    .iter()
                    .map(|p| perm[p.index()]),
            );
            preds.sort_unstable();
            stream.push(u64::MAX); // node separator
            stream.extend(preds.iter().map(|&p| p as u64));
        }
        let mut salted = Vec::with_capacity(stream.len() + 1);
        salted.push(0x9e37_79b9_7f4a_7c15);
        salted.extend_from_slice(&stream);
        let d0 = hash_words(&salted);
        salted[0] = 0xc2b2_ae3d_27d4_eb4f;
        let d1 = hash_words(&salted);
        CanonicalKey {
            digest: [d0, d1],
            canonical,
        }
    }

    /// Whether a pebbling exists at all: R ≥ Δ+1 (Section 3).
    pub fn is_feasible(&self) -> bool {
        self.red_limit > self.dag.max_indegree()
    }

    /// The minimum feasible red-pebble budget Δ+1 for this DAG.
    pub fn min_feasible_r(&self) -> usize {
        self.dag.max_indegree() + 1
    }
}

/// The digest returned by [`Instance::canonical_key`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CanonicalKey {
    digest: [u64; 2],
    canonical: bool,
}

impl CanonicalKey {
    /// The raw 128-bit digest, as two words.
    #[inline]
    pub fn digest(&self) -> [u64; 2] {
        self.digest
    }

    /// Whether topo-layer refinement individualized every node, making
    /// this digest invariant under node relabeling. `false` means the
    /// exact-bytes fallback was used: the key is still stable for
    /// byte-identical instances, but an isomorphic relabeling may key
    /// differently.
    #[inline]
    pub fn is_relabeling_invariant(&self) -> bool {
        self.canonical
    }

    /// The digest as 32 hex digits — the wire/logging form.
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.digest[0], self.digest[1])
    }

    /// Rebuilds a key from its [`CanonicalKey::to_hex`] form plus the
    /// [`CanonicalKey::is_relabeling_invariant`] flag — the persistence
    /// path for cache snapshots, which must restore keys without the
    /// original instance. Returns `None` unless `hex` is exactly 32 hex
    /// digits.
    pub fn from_hex(hex: &str, relabeling_invariant: bool) -> Option<CanonicalKey> {
        if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let d0 = u64::from_str_radix(&hex[..16], 16).ok()?;
        let d1 = u64::from_str_radix(&hex[16..], 16).ok()?;
        Some(CanonicalKey {
            digest: [d0, d1],
            canonical: relabeling_invariant,
        })
    }
}

impl fmt::Display for CanonicalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&self.to_hex())
    }
}

fn model_discriminant(kind: ModelKind) -> u64 {
    match kind {
        ModelKind::Base => 0,
        ModelKind::Oneshot => 1,
        ModelKind::NoDel => 2,
        ModelKind::CompCost => 3,
    }
}

/// Iterated Weisfeiler–Leman-style color refinement seeded from
/// `(topological level, indegree, outdegree)`. Returns the node ids
/// sorted by final color when the refinement is *discrete* (every node
/// has a unique color — then color order is a canonical order), `None`
/// when it stalls with ties.
fn refinement_order(dag: &Dag) -> Option<Vec<usize>> {
    let n = dag.n();
    if n == 0 {
        return Some(Vec::new());
    }
    let lv = levels(dag);
    let mut color: Vec<u64> = (0..n)
        .map(|i| {
            let v = rbp_graph::NodeId::new(i);
            hash_words(&[
                lv[i] as u64,
                dag.indegree(v) as u64,
                dag.outdegree(v) as u64,
            ])
        })
        .collect();
    let mut distinct = count_distinct(&color);
    let mut next = vec![0u64; n];
    let mut neigh: Vec<u64> = Vec::new();
    let mut words: Vec<u64> = Vec::new();
    // each effective round strictly increases the number of color
    // classes, so n rounds always suffice
    for _ in 0..n {
        if distinct == n {
            break;
        }
        for i in 0..n {
            let v = rbp_graph::NodeId::new(i);
            words.clear();
            words.push(color[i]);
            words.push(u64::MAX); // separate own color / preds / succs
            neigh.clear();
            neigh.extend(dag.preds(v).iter().map(|p| color[p.index()]));
            neigh.sort_unstable();
            words.extend_from_slice(&neigh);
            words.push(u64::MAX);
            neigh.clear();
            neigh.extend(dag.succs(v).iter().map(|s| color[s.index()]));
            neigh.sort_unstable();
            words.extend_from_slice(&neigh);
            next[i] = hash_words(&words);
        }
        std::mem::swap(&mut color, &mut next);
        let d = count_distinct(&color);
        if d == distinct {
            // stable partition with ties: give up (exact-bytes fallback)
            return None;
        }
        distinct = d;
    }
    if distinct < n {
        return None;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| color[i]);
    Some(order)
}

fn count_distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Instance(n={}, m={}, R={}, {}",
            self.dag.n(),
            self.dag.num_edges(),
            self.red_limit,
            self.model
        )?;
        if let Some(dim) = self.mpp {
            write!(f, ", p={}, comm={}, comp={}", dim.p, dim.comm, dim.comp)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_graph::DagBuilder;

    fn star_into(n: usize) -> Dag {
        // n sources all feeding one sink: Δ = n
        let mut b = DagBuilder::new(n + 1);
        for i in 0..n {
            b.add_edge(i, n);
        }
        b.build().unwrap()
    }

    #[test]
    fn feasibility_threshold_is_delta_plus_one() {
        let inst = Instance::new(star_into(3), 4, CostModel::oneshot());
        assert!(inst.is_feasible());
        assert_eq!(inst.min_feasible_r(), 4);
        assert!(!inst.with_red_limit(3).is_feasible());
    }

    #[test]
    fn with_red_limit_shares_dag() {
        let inst = Instance::new(star_into(2), 3, CostModel::base());
        let other = inst.with_red_limit(5);
        assert_eq!(other.red_limit(), 5);
        assert!(Arc::ptr_eq(&inst.dag, &other.dag));
    }

    #[test]
    fn canonical_key_ignores_labels_and_separates_parameters() {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let plain = b.build().unwrap();
        let mut b = DagBuilder::new(0);
        let x = b.add_labeled_node("x");
        let y = b.add_labeled_node("y");
        let z = b.add_labeled_node("z");
        b.add_edge_ids(x, z);
        b.add_edge_ids(y, z);
        let labeled = b.build().unwrap();

        let base = Instance::new(plain, 3, CostModel::oneshot());
        assert_eq!(
            base.canonical_key(),
            Instance::new(labeled, 3, CostModel::oneshot()).canonical_key(),
            "labels must not affect the key"
        );
        // every parameter dimension separates
        let key = base.canonical_key();
        assert_ne!(key, base.with_red_limit(4).canonical_key());
        assert_ne!(key, base.with_model(CostModel::base()).canonical_key());
        assert_ne!(
            key,
            base.with_source_convention(SourceConvention::InitiallyBlue)
                .canonical_key()
        );
        assert_ne!(
            key,
            base.with_sink_convention(SinkConvention::RequireBlue)
                .canonical_key()
        );
        assert_eq!(key.to_hex().len(), 32);
    }

    #[test]
    fn canonical_key_invariant_under_relabeling_when_discrete() {
        // a chain individualizes immediately (levels are all distinct),
        // so any relabeling must collide
        let chain = {
            let mut b = DagBuilder::new(4);
            b.add_edge(0, 1);
            b.add_edge(1, 2);
            b.add_edge(2, 3);
            b.build().unwrap()
        };
        let scrambled = {
            // same chain under the relabeling 0→2, 1→0, 2→3, 3→1
            let mut b = DagBuilder::new(4);
            b.add_edge(2, 0);
            b.add_edge(0, 3);
            b.add_edge(3, 1);
            b.build().unwrap()
        };
        let a = Instance::new(chain, 2, CostModel::base()).canonical_key();
        let b = Instance::new(scrambled, 2, CostModel::base()).canonical_key();
        assert!(a.is_relabeling_invariant());
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_key_falls_back_on_automorphic_dags() {
        // two independent 2-chains: the halves are indistinguishable by
        // refinement, so the key degrades to exact-bytes mode
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let inst = Instance::new(b.build().unwrap(), 2, CostModel::base());
        let key = inst.canonical_key();
        assert!(!key.is_relabeling_invariant());
        // still deterministic
        assert_eq!(key, inst.canonical_key());
    }

    #[test]
    fn canonical_key_hex_round_trips() {
        let inst = Instance::new(star_into(2), 3, CostModel::base());
        let key = inst.canonical_key();
        let back = CanonicalKey::from_hex(&key.to_hex(), key.is_relabeling_invariant())
            .expect("own hex form must parse");
        assert_eq!(back, key);
        // malformed forms are rejected, not mis-parsed
        assert!(CanonicalKey::from_hex("", true).is_none());
        assert!(CanonicalKey::from_hex("deadbeef", true).is_none());
        assert!(CanonicalKey::from_hex(&"g".repeat(32), true).is_none());
        assert!(CanonicalKey::from_hex(&key.to_hex()[..31], true).is_none());
    }

    #[test]
    fn with_procs_normalizes_and_preserves_weights() {
        let inst = Instance::new(star_into(2), 3, CostModel::base());
        assert_eq!(inst.procs(), 1);
        assert!(inst.mpp().is_none());
        // p = 1 with default weights stays classic
        assert!(inst.with_procs(1).mpp().is_none());
        // p = 2 lifts with the default weights
        let two = inst.with_procs(2);
        let dim = two.mpp().unwrap();
        assert_eq!(two.procs(), 2);
        assert_eq!(dim.comm, Ratio::new(1, 1));
        assert_eq!(dim.comp, Ratio::ZERO);
        // dropping back to p = 1 normalizes away again
        assert!(two.with_procs(1).mpp().is_none());
        // custom weights survive a procs change and a p = 1 setting
        let custom = inst.with_mpp(MppDim {
            p: 2,
            comm: Ratio::new(2, 1),
            comp: Ratio::new(1, 3),
        });
        let back = custom.with_procs(1);
        let dim = back.mpp().expect("custom weights must not normalize away");
        assert_eq!(dim.p, 1);
        assert_eq!(dim.comm, Ratio::new(2, 1));
        assert!(back.without_mpp().mpp().is_none());
    }

    #[test]
    fn cost_scales_default_to_the_classic_objective() {
        use crate::cost::Cost;
        let cost = Cost {
            transfers: 7,
            computes: 4,
        };
        for model in [
            CostModel::base(),
            CostModel::oneshot(),
            CostModel::compcost(),
        ] {
            let inst = Instance::new(star_into(2), 3, model);
            let eps = model.epsilon();
            assert_eq!(inst.scaled_cost(&cost), cost.scaled(eps));
            // the mpp:1 and mpp:4 lifts with default weights keep the
            // exact same scalar objective
            for p in [1, 4] {
                let lifted = inst.with_mpp(MppDim::with_default_weights(p, model));
                assert_eq!(lifted.scaled_cost(&cost), cost.scaled(eps), "p = {p}");
            }
        }
        // custom weights: comm = 3/2, comp = 1/2 over the common
        // denominator 4 give scales (6, 2)
        let inst = Instance::new(star_into(2), 3, CostModel::base()).with_mpp(MppDim {
            p: 2,
            comm: Ratio::new(3, 2),
            comp: Ratio::new(1, 2),
        });
        assert_eq!(inst.cost_scales(), (6, 2));
        assert_eq!(inst.scaled_cost(&cost), 7 * 6 + 4 * 2);
    }

    #[test]
    fn canonical_key_separates_the_mpp_dimension() {
        let inst = Instance::new(star_into(2), 3, CostModel::oneshot());
        let key = inst.canonical_key();
        // with_procs(1) is a structural no-op, so the key must agree
        assert_eq!(key, inst.with_procs(1).canonical_key());
        // the explicit p = 1 default-weight lift poses the same problem
        let one = inst.with_mpp(MppDim::with_default_weights(1, CostModel::oneshot()));
        assert_eq!(key, one.canonical_key());
        // p separates
        let two = inst.with_procs(2);
        assert_ne!(key, two.canonical_key());
        assert_ne!(two.canonical_key(), inst.with_procs(4).canonical_key());
        // weights separate at fixed p
        let weighted = inst.with_mpp(MppDim {
            p: 2,
            comm: Ratio::new(1, 1),
            comp: Ratio::new(1, 2),
        });
        assert_ne!(two.canonical_key(), weighted.canonical_key());
    }

    #[test]
    fn conventions_default_to_paper_definitions() {
        let inst = Instance::new(star_into(2), 3, CostModel::base());
        assert_eq!(inst.source_convention(), SourceConvention::FreeCompute);
        assert_eq!(inst.sink_convention(), SinkConvention::AnyPebble);
        let alt = inst
            .with_source_convention(SourceConvention::InitiallyBlue)
            .with_sink_convention(SinkConvention::RequireBlue);
        assert_eq!(alt.source_convention(), SourceConvention::InitiallyBlue);
        assert_eq!(alt.sink_convention(), SinkConvention::RequireBlue);
    }
}

//! A pebbling problem instance: DAG + red-pebble budget + model +
//! start/finish conventions.

use crate::model::CostModel;
use rbp_graph::Dag;
use std::fmt;
use std::sync::Arc;

/// How source nodes behave at the start of a pebbling (Appendix C).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SourceConvention {
    /// Sources are regular nodes with zero inputs: computable for free at
    /// any time (the paper's main definition).
    #[default]
    FreeCompute,
    /// Sources start with a blue pebble and are *not* computable; they
    /// must be loaded (the Hong–Kung convention).
    InitiallyBlue,
}

/// What the finishing state requires of sink nodes (Appendix C).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SinkConvention {
    /// Every sink must hold a pebble of either colour (the paper's main
    /// definition).
    #[default]
    AnyPebble,
    /// Every sink must hold a blue pebble (outputs written to slow
    /// memory).
    RequireBlue,
}

/// A complete pebbling problem: *given DAG and R, pebble every sink*.
///
/// The decision version asks whether a pebbling of cost at most C exists
/// (paper Section 1); solvers in `rbp-solvers` compute the minimum C.
///
/// The DAG is held behind an [`Arc`] so instances are cheap to clone into
/// worker threads for parallel sweeps.
#[derive(Clone)]
pub struct Instance {
    dag: Arc<Dag>,
    red_limit: usize,
    model: CostModel,
    source_convention: SourceConvention,
    sink_convention: SinkConvention,
}

impl Instance {
    /// Creates an instance with the default conventions (freely computable
    /// sources; sinks need any-colour pebbles).
    pub fn new(dag: Dag, red_limit: usize, model: CostModel) -> Self {
        Instance {
            dag: Arc::new(dag),
            red_limit,
            model,
            source_convention: SourceConvention::default(),
            sink_convention: SinkConvention::default(),
        }
    }

    /// Shares an existing DAG without copying it.
    pub fn from_shared(dag: Arc<Dag>, red_limit: usize, model: CostModel) -> Self {
        Instance {
            dag,
            red_limit,
            model,
            source_convention: SourceConvention::default(),
            sink_convention: SinkConvention::default(),
        }
    }

    /// Returns a copy of this instance with a different source convention.
    ///
    /// All `with_*` builders share one convention: they take `&self` and
    /// return a modified clone (the DAG is behind an [`Arc`], so a clone
    /// is cheap). Chaining on a fresh instance works as before:
    /// `Instance::new(..).with_source_convention(..)`.
    pub fn with_source_convention(&self, c: SourceConvention) -> Self {
        let mut i = self.clone();
        i.source_convention = c;
        i
    }

    /// Returns a copy of this instance with a different sink convention.
    pub fn with_sink_convention(&self, c: SinkConvention) -> Self {
        let mut i = self.clone();
        i.sink_convention = c;
        i
    }

    /// Returns a copy of this instance with a different red-pebble budget
    /// (used by opt(R) sweeps; the DAG is shared, not cloned).
    pub fn with_red_limit(&self, red_limit: usize) -> Self {
        let mut i = self.clone();
        i.red_limit = red_limit;
        i
    }

    /// Returns a copy of this instance under a different model.
    pub fn with_model(&self, model: CostModel) -> Self {
        let mut i = self.clone();
        i.model = model;
        i
    }

    /// The DAG being pebbled.
    #[inline]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Shared handle to the DAG.
    #[inline]
    pub fn dag_arc(&self) -> Arc<Dag> {
        Arc::clone(&self.dag)
    }

    /// The red-pebble budget R.
    #[inline]
    pub fn red_limit(&self) -> usize {
        self.red_limit
    }

    /// The governing cost model.
    #[inline]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Source convention in force.
    #[inline]
    pub fn source_convention(&self) -> SourceConvention {
        self.source_convention
    }

    /// Sink convention in force.
    #[inline]
    pub fn sink_convention(&self) -> SinkConvention {
        self.sink_convention
    }

    /// Whether a pebbling exists at all: R ≥ Δ+1 (Section 3).
    pub fn is_feasible(&self) -> bool {
        self.red_limit > self.dag.max_indegree()
    }

    /// The minimum feasible red-pebble budget Δ+1 for this DAG.
    pub fn min_feasible_r(&self) -> usize {
        self.dag.max_indegree() + 1
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Instance(n={}, m={}, R={}, {})",
            self.dag.n(),
            self.dag.num_edges(),
            self.red_limit,
            self.model
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_graph::DagBuilder;

    fn star_into(n: usize) -> Dag {
        // n sources all feeding one sink: Δ = n
        let mut b = DagBuilder::new(n + 1);
        for i in 0..n {
            b.add_edge(i, n);
        }
        b.build().unwrap()
    }

    #[test]
    fn feasibility_threshold_is_delta_plus_one() {
        let inst = Instance::new(star_into(3), 4, CostModel::oneshot());
        assert!(inst.is_feasible());
        assert_eq!(inst.min_feasible_r(), 4);
        assert!(!inst.with_red_limit(3).is_feasible());
    }

    #[test]
    fn with_red_limit_shares_dag() {
        let inst = Instance::new(star_into(2), 3, CostModel::base());
        let other = inst.with_red_limit(5);
        assert_eq!(other.red_limit(), 5);
        assert!(Arc::ptr_eq(&inst.dag, &other.dag));
    }

    #[test]
    fn conventions_default_to_paper_definitions() {
        let inst = Instance::new(star_into(2), 3, CostModel::base());
        assert_eq!(inst.source_convention(), SourceConvention::FreeCompute);
        assert_eq!(inst.sink_convention(), SinkConvention::AnyPebble);
        let alt = inst
            .with_source_convention(SourceConvention::InitiallyBlue)
            .with_sink_convention(SinkConvention::RequireBlue);
        assert_eq!(alt.source_convention(), SourceConvention::InitiallyBlue);
        assert_eq!(alt.sink_convention(), SinkConvention::RequireBlue);
    }
}

//! The versioned instance wire format: a complete pebbling problem as a
//! line-oriented text document.
//!
//! This is the submission payload of the batch-solve service
//! (`rbp-service`) and the on-disk form for imported real-world DAGs.
//! Grammar (one statement per line, `#` comments and blank lines
//! allowed anywhere):
//!
//! ```text
//! instance v1                             # or v2 (multiprocessor header)
//! model base|oneshot|nodel|compcost <num>/<den>
//! r <R>
//! procs <p>                               # v2 only: processor count
//! weights <cn>/<cd> <pn>/<pd>             # v2 only: comm and comp weights
//! sources free-compute|initially-blue     # optional (default free-compute)
//! sinks any-pebble|require-blue           # optional (default any-pebble)
//! dag <n>                                 # the rbp_graph::io block
//! label <node> <text>
//! edge <from> <to>
//! end
//! ```
//!
//! Versioning: classic instances always serialize as byte-identical
//! `instance v1` documents (back-compat readers keep working), and the
//! parser accepts both versions. The `v2` header unlocks the
//! multiprocessor fields — `procs` and `weights` are rejected under a
//! `v1` header, so a v1-only reader never silently drops the MPP
//! dimension of a document it cannot represent. A `v2` document without
//! `procs` is a classic instance.
//!
//! The `dag … ` section is exactly [`rbp_graph::io`]'s format, parsed
//! through [`rbp_graph::io::parse_dag_at`] so error line numbers are in
//! document coordinates. `end` terminates the document — the service
//! reads framed submissions off a socket by scanning for it, so
//! [`parse_instance`] rejects trailing statements after `end` instead
//! of silently ignoring a second document.
//!
//! Every [`ParseError`] variant carries the 1-based line number it was
//! raised on and the offending token, mirroring [`rbp_graph::io::ParseError`].

use crate::instance::{Instance, MppDim, SinkConvention, SourceConvention};
use crate::model::{CostModel, ModelKind};
use crate::Ratio;
use rbp_graph::io as graph_io;
use std::fmt::Write as _;

/// The version tag [`write_instance`] emits for classic instances (and
/// the baseline version every reader must accept).
pub const INSTANCE_VERSION: &str = "v1";

/// The version tag [`write_instance`] emits for multiprocessor
/// instances: carries the `procs` / `weights` header fields.
pub const INSTANCE_VERSION_MPP: &str = "v2";

/// Errors from [`parse_instance`]. Syntactic variants carry 1-based
/// document line numbers and the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The first statement must be `instance v1`.
    MissingHeader,
    /// The header names a version this parser does not speak.
    UnsupportedVersion {
        /// 1-based line number of the header.
        line: usize,
        /// The version token found.
        found: String,
    },
    /// A statement could not be parsed.
    UnexpectedToken {
        /// 1-based line number of the offending statement.
        line: usize,
        /// The token that was rejected.
        token: String,
        /// What the parser expected in its place.
        expected: &'static str,
    },
    /// A field appeared twice.
    DuplicateField {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated field keyword.
        field: &'static str,
    },
    /// A required field never appeared before the `dag` section.
    MissingField {
        /// The missing field keyword.
        field: &'static str,
    },
    /// The document ended without an `end` terminator.
    MissingEnd,
    /// The embedded DAG block was rejected.
    Dag(graph_io::ParseError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => {
                write!(f, "missing 'instance {INSTANCE_VERSION}' header")
            }
            ParseError::UnsupportedVersion { line, found } => write!(
                f,
                "line {line}: unsupported instance version '{found}' (expected \
                 '{INSTANCE_VERSION}' or '{INSTANCE_VERSION_MPP}')"
            ),
            ParseError::UnexpectedToken {
                line,
                token,
                expected,
            } => write!(f, "line {line}: unexpected '{token}', expected {expected}"),
            ParseError::DuplicateField { line, field } => {
                write!(f, "line {line}: duplicate '{field}' field")
            }
            ParseError::MissingField { field } => write!(f, "missing required '{field}' field"),
            ParseError::MissingEnd => write!(f, "missing 'end' terminator"),
            ParseError::Dag(e) => write!(f, "in dag section: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<graph_io::ParseError> for ParseError {
    fn from(e: graph_io::ParseError) -> Self {
        ParseError::Dag(e)
    }
}

fn unexpected(line: usize, token: impl Into<String>, expected: &'static str) -> ParseError {
    ParseError::UnexpectedToken {
        line,
        token: token.into(),
        expected,
    }
}

/// The wire token for a model (`base`, `oneshot`, `nodel`, or
/// `compcost <num>/<den>`). [`CostModel`]'s `Display` is for humans
/// (`compcost(ε=1/100)`); this is the parseable form.
pub fn model_token(model: CostModel) -> String {
    match model.kind() {
        ModelKind::CompCost => {
            let eps = model.epsilon();
            format!("compcost {}/{}", eps.num(), eps.den())
        }
        kind => kind.to_string(),
    }
}

fn parse_model(args: &[&str], line: usize) -> Result<CostModel, ParseError> {
    match args {
        ["base"] => Ok(CostModel::base()),
        ["oneshot"] => Ok(CostModel::oneshot()),
        ["nodel"] => Ok(CostModel::nodel()),
        ["compcost", eps] => {
            let (num, den) = eps
                .split_once('/')
                .ok_or_else(|| unexpected(line, *eps, "'<num>/<den>' after 'compcost'"))?;
            let num: u64 = num.parse().map_err(|_| {
                unexpected(line, *eps, "integer numerator in 'compcost <num>/<den>'")
            })?;
            let den: u64 = den.parse().map_err(|_| {
                unexpected(line, *eps, "integer denominator in 'compcost <num>/<den>'")
            })?;
            if num == 0 || den == 0 || num >= den {
                return Err(unexpected(line, *eps, "a ratio 0 < num/den < 1"));
            }
            Ok(CostModel::compcost_with(Ratio::new(num, den)))
        }
        _ => Err(unexpected(
            line,
            args.join(" "),
            "'base', 'oneshot', 'nodel', or 'compcost <num>/<den>'",
        )),
    }
}

/// Serializes an instance as a complete document: `instance v1` for
/// classic instances (byte-identical to the pre-MPP format), `instance
/// v2` with `procs`/`weights` for multiprocessor ones. All fields are
/// emitted explicitly (including default conventions and weights), so a
/// document is self-describing on the wire and `write ∘ parse ∘ write`
/// is the identity.
pub fn write_instance(instance: &Instance) -> String {
    let dag_block = graph_io::write_dag(instance.dag());
    let mut out = String::with_capacity(96 + dag_block.len());
    let version = match instance.mpp() {
        Some(_) => INSTANCE_VERSION_MPP,
        None => INSTANCE_VERSION,
    };
    let _ = writeln!(out, "instance {version}");
    let _ = writeln!(out, "model {}", model_token(instance.model()));
    let _ = writeln!(out, "r {}", instance.red_limit());
    if let Some(dim) = instance.mpp() {
        let _ = writeln!(out, "procs {}", dim.p);
        let _ = writeln!(
            out,
            "weights {}/{} {}/{}",
            dim.comm.num(),
            dim.comm.den(),
            dim.comp.num(),
            dim.comp.den()
        );
    }
    let sources = match instance.source_convention() {
        SourceConvention::FreeCompute => "free-compute",
        SourceConvention::InitiallyBlue => "initially-blue",
    };
    let _ = writeln!(out, "sources {sources}");
    let sinks = match instance.sink_convention() {
        SinkConvention::AnyPebble => "any-pebble",
        SinkConvention::RequireBlue => "require-blue",
    };
    let _ = writeln!(out, "sinks {sinks}");
    out.push_str(&dag_block);
    out.push_str("end\n");
    out
}

/// Parses an `instance v1`/`instance v2` document back into a validated
/// [`Instance`].
pub fn parse_instance(text: &str) -> Result<Instance, ParseError> {
    parse_instance_at(text, 1)
}

/// Like [`parse_instance`] for a document embedded at `first_line`
/// (1-based) of a larger stream: reported line numbers are global.
pub fn parse_instance_at(text: &str, first_line: usize) -> Result<Instance, ParseError> {
    let mut header_seen = false;
    let mut mpp_header = false; // v2: the multiprocessor fields are legal
    let mut model: Option<CostModel> = None;
    let mut r: Option<usize> = None;
    let mut procs: Option<u32> = None;
    let mut weights: Option<(Ratio, Ratio)> = None;
    let mut sources: Option<SourceConvention> = None;
    let mut sinks: Option<SinkConvention> = None;
    // the dag block: (first document line, collected raw lines)
    let mut dag_block: Option<(usize, String)> = None;
    let mut ended = false;

    for (i, raw) in text.lines().enumerate() {
        let lineno = first_line + i;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if ended {
            return Err(unexpected(lineno, line, "nothing after 'end'"));
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("nonempty line");
        let args: Vec<&str> = parts.collect();
        if !header_seen {
            if keyword != "instance" {
                return Err(ParseError::MissingHeader);
            }
            match args.as_slice() {
                [v] if *v == INSTANCE_VERSION => header_seen = true,
                [v] if *v == INSTANCE_VERSION_MPP => {
                    header_seen = true;
                    mpp_header = true;
                }
                [v] => {
                    return Err(ParseError::UnsupportedVersion {
                        line: lineno,
                        found: (*v).to_string(),
                    })
                }
                _ => {
                    return Err(unexpected(
                        lineno,
                        line,
                        "'instance v1' or 'instance v2' as the first statement",
                    ))
                }
            }
            continue;
        }
        // inside the dag section: collect verbatim until `end`
        if let Some((_, block)) = &mut dag_block {
            if keyword == "end" {
                ended = true;
            } else {
                block.push_str(raw);
                block.push('\n');
            }
            continue;
        }
        match keyword {
            "model" => {
                if model.is_some() {
                    return Err(ParseError::DuplicateField {
                        line: lineno,
                        field: "model",
                    });
                }
                model = Some(parse_model(&args, lineno)?);
            }
            "r" => {
                if r.is_some() {
                    return Err(ParseError::DuplicateField {
                        line: lineno,
                        field: "r",
                    });
                }
                let token = args.first().copied().unwrap_or("");
                r = Some(
                    token
                        .parse()
                        .map_err(|_| unexpected(lineno, token, "red-pebble budget in 'r <R>'"))?,
                );
            }
            "procs" => {
                if !mpp_header {
                    return Err(unexpected(
                        lineno,
                        line,
                        "no 'procs' under 'instance v1' (multiprocessor fields need v2)",
                    ));
                }
                if procs.is_some() {
                    return Err(ParseError::DuplicateField {
                        line: lineno,
                        field: "procs",
                    });
                }
                let token = args.first().copied().unwrap_or("");
                let p: u32 = token
                    .parse()
                    .map_err(|_| unexpected(lineno, token, "processor count in 'procs <p>'"))?;
                if p == 0 {
                    return Err(unexpected(lineno, token, "a processor count of at least 1"));
                }
                procs = Some(p);
            }
            "weights" => {
                if !mpp_header {
                    return Err(unexpected(
                        lineno,
                        line,
                        "no 'weights' under 'instance v1' (multiprocessor fields need v2)",
                    ));
                }
                if weights.is_some() {
                    return Err(ParseError::DuplicateField {
                        line: lineno,
                        field: "weights",
                    });
                }
                match args.as_slice() {
                    [comm, comp] => {
                        weights = Some((parse_weight(comm, lineno)?, parse_weight(comp, lineno)?));
                    }
                    _ => {
                        return Err(unexpected(
                            lineno,
                            args.join(" "),
                            "'weights <cn>/<cd> <pn>/<pd>'",
                        ))
                    }
                }
            }
            "sources" => {
                if sources.is_some() {
                    return Err(ParseError::DuplicateField {
                        line: lineno,
                        field: "sources",
                    });
                }
                sources = Some(match args.as_slice() {
                    ["free-compute"] => SourceConvention::FreeCompute,
                    ["initially-blue"] => SourceConvention::InitiallyBlue,
                    _ => {
                        return Err(unexpected(
                            lineno,
                            args.join(" "),
                            "'free-compute' or 'initially-blue'",
                        ))
                    }
                });
            }
            "sinks" => {
                if sinks.is_some() {
                    return Err(ParseError::DuplicateField {
                        line: lineno,
                        field: "sinks",
                    });
                }
                sinks = Some(match args.as_slice() {
                    ["any-pebble"] => SinkConvention::AnyPebble,
                    ["require-blue"] => SinkConvention::RequireBlue,
                    _ => {
                        return Err(unexpected(
                            lineno,
                            args.join(" "),
                            "'any-pebble' or 'require-blue'",
                        ))
                    }
                });
            }
            "dag" => {
                let mut block = String::with_capacity(raw.len() + 1);
                block.push_str(raw);
                block.push('\n');
                dag_block = Some((lineno, block));
            }
            "end" => return Err(ParseError::Dag(graph_io::ParseError::MissingHeader)),
            other => {
                return Err(unexpected(
                    lineno,
                    other,
                    "'model', 'r', 'sources', 'sinks', or the 'dag <n>' section",
                ))
            }
        }
    }
    if !header_seen {
        return Err(ParseError::MissingHeader);
    }
    if !ended {
        return Err(ParseError::MissingEnd);
    }
    let model = model.ok_or(ParseError::MissingField { field: "model" })?;
    let r = r.ok_or(ParseError::MissingField { field: "r" })?;
    let (dag_line, block) = dag_block.expect("ended implies a dag section");
    let dag = graph_io::parse_dag_at(&block, dag_line)?;
    let mut inst = Instance::new(dag, r, model)
        .with_source_convention(sources.unwrap_or_default())
        .with_sink_convention(sinks.unwrap_or_default());
    // v2 without 'procs' is a classic instance; 'weights' without
    // 'procs' pins the objective on a single processor.
    if procs.is_some() || weights.is_some() {
        let p = procs.unwrap_or(1);
        let (comm, comp) = match weights {
            Some(w) => w,
            None => {
                let d = MppDim::with_default_weights(p, model);
                (d.comm, d.comp)
            }
        };
        inst = inst.with_mpp(MppDim { p, comm, comp });
    }
    Ok(inst)
}

/// Parses one `<num>/<den>` objective weight (any non-negative ratio;
/// unlike ε there is no < 1 constraint — communication typically weighs
/// 1/1 or more).
fn parse_weight(token: &str, line: usize) -> Result<Ratio, ParseError> {
    let (num, den) = token
        .split_once('/')
        .ok_or_else(|| unexpected(line, token, "a '<num>/<den>' weight"))?;
    let num: u64 = num
        .parse()
        .map_err(|_| unexpected(line, token, "integer numerator in a '<num>/<den>' weight"))?;
    let den: u64 = den
        .parse()
        .map_err(|_| unexpected(line, token, "integer denominator in a '<num>/<den>' weight"))?;
    if den == 0 {
        return Err(unexpected(line, token, "a weight with nonzero denominator"));
    }
    Ok(Ratio::new(num, den))
}

/// Structural equality of two instances (the `Instance` type itself
/// deliberately has no `PartialEq`: solvers compare costs, not
/// problems). Used by round-trip tests and the service cache's
/// exactness checks.
pub fn same_instance(a: &Instance, b: &Instance) -> bool {
    a.red_limit() == b.red_limit()
        && a.model() == b.model()
        && a.mpp() == b.mpp()
        && a.source_convention() == b.source_convention()
        && a.sink_convention() == b.sink_convention()
        && a.dag() == b.dag()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_graph::DagBuilder;

    fn diamond_instance() -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        Instance::new(b.build().unwrap(), 3, CostModel::oneshot())
    }

    #[test]
    fn round_trip_all_models_and_conventions() {
        for model in [
            CostModel::base(),
            CostModel::oneshot(),
            CostModel::nodel(),
            CostModel::compcost(),
            CostModel::compcost_with(Ratio::new(3, 7)),
        ] {
            for source in [
                SourceConvention::FreeCompute,
                SourceConvention::InitiallyBlue,
            ] {
                for sink in [SinkConvention::AnyPebble, SinkConvention::RequireBlue] {
                    let inst = diamond_instance()
                        .with_model(model)
                        .with_source_convention(source)
                        .with_sink_convention(sink);
                    let text = write_instance(&inst);
                    let back = parse_instance(&text).unwrap();
                    assert!(same_instance(&inst, &back), "{text}");
                    // serialization is stable: write∘parse∘write is identity
                    assert_eq!(write_instance(&back), text);
                }
            }
        }
    }

    #[test]
    fn mpp_instances_round_trip_through_v2() {
        for (p, comm, comp) in [
            (1u32, Ratio::new(1, 1), Ratio::new(1, 100)),
            (2, Ratio::new(1, 1), Ratio::ZERO),
            (4, Ratio::new(3, 2), Ratio::new(1, 2)),
        ] {
            let inst = diamond_instance().with_mpp(MppDim { p, comm, comp });
            let text = write_instance(&inst);
            assert!(text.starts_with("instance v2\n"), "{text}");
            assert!(text.contains(&format!("procs {p}\n")));
            let back = parse_instance(&text).unwrap();
            assert!(same_instance(&inst, &back), "{text}");
            assert_eq!(write_instance(&back), text);
        }
    }

    #[test]
    fn classic_instances_still_write_byte_identical_v1() {
        let inst = diamond_instance();
        let text = write_instance(&inst);
        assert!(text.starts_with("instance v1\n"));
        assert!(!text.contains("procs"));
        assert!(!text.contains("weights"));
        // a with_procs(1) no-op round-trip stays v1
        assert_eq!(write_instance(&inst.with_procs(1)), text);
    }

    #[test]
    fn v2_without_procs_is_classic_and_weights_imply_p1() {
        let text = "instance v2\nmodel base\nr 3\ndag 2\nedge 0 1\nend\n";
        let inst = parse_instance(text).unwrap();
        assert!(inst.mpp().is_none());
        let text = "instance v2\nmodel base\nr 3\nweights 2/1 1/1\ndag 2\nedge 0 1\nend\n";
        let inst = parse_instance(text).unwrap();
        let dim = inst.mpp().unwrap();
        assert_eq!(dim.p, 1);
        assert_eq!(dim.comm, Ratio::new(2, 1));
        assert_eq!(dim.comp, Ratio::new(1, 1));
        // and procs without weights takes the model's defaults
        let text = "instance v2\nmodel compcost 1/100\nr 3\nprocs 3\ndag 2\nedge 0 1\nend\n";
        let inst = parse_instance(text).unwrap();
        let dim = inst.mpp().unwrap();
        assert_eq!(dim.p, 3);
        assert_eq!(dim.comm, Ratio::new(1, 1));
        assert_eq!(dim.comp, Ratio::new(1, 100));
    }

    #[test]
    fn mpp_fields_rejected_under_v1_header() {
        for field in ["procs 2", "weights 1/1 0/1"] {
            let text = format!("instance v1\nmodel base\nr 3\n{field}\ndag 2\nedge 0 1\nend\n");
            match parse_instance(&text).unwrap_err() {
                ParseError::UnexpectedToken { line: 4, .. } => {}
                other => panic!("'{field}' under v1 must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_mpp_fields_rejected() {
        for bad in [
            "procs 0",
            "procs x",
            "procs",
            "weights 1/1",
            "weights 1/0 1/1",
            "weights 1/1 x/y",
            "weights one two",
        ] {
            let text = format!("instance v2\nmodel base\nr 3\n{bad}\ndag 2\nedge 0 1\nend\n");
            assert!(
                matches!(
                    parse_instance(&text),
                    Err(ParseError::UnexpectedToken { line: 4, .. })
                ),
                "'{bad}' must be rejected"
            );
        }
        // duplicates are duplicate-field errors
        let text = "instance v2\nmodel base\nr 3\nprocs 2\nprocs 2\ndag 2\nedge 0 1\nend\n";
        assert_eq!(
            parse_instance(text).unwrap_err(),
            ParseError::DuplicateField {
                line: 5,
                field: "procs"
            }
        );
    }

    #[test]
    fn conventions_default_when_omitted() {
        let text = "instance v1\nmodel base\nr 3\ndag 2\nedge 0 1\nend\n";
        let inst = parse_instance(text).unwrap();
        assert_eq!(inst.source_convention(), SourceConvention::FreeCompute);
        assert_eq!(inst.sink_convention(), SinkConvention::AnyPebble);
        assert_eq!(inst.red_limit(), 3);
    }

    #[test]
    fn labels_and_comments_survive() {
        let text =
            "# job 17\ninstance v1\nmodel oneshot\nr 4\n\ndag 2\nlabel 0 input x\nedge 0 1\nend\n";
        let inst = parse_instance(text).unwrap();
        assert_eq!(inst.dag().label(rbp_graph::NodeId::new(0)), "input x");
    }

    #[test]
    fn header_errors() {
        assert_eq!(parse_instance("").unwrap_err(), ParseError::MissingHeader);
        assert_eq!(
            parse_instance("model base\n").unwrap_err(),
            ParseError::MissingHeader
        );
        assert_eq!(
            parse_instance("instance v9\nmodel base\nr 3\ndag 1\nend\n").unwrap_err(),
            ParseError::UnsupportedVersion {
                line: 1,
                found: "v9".into()
            }
        );
    }

    #[test]
    fn field_errors_carry_line_numbers() {
        let text = "instance v1\nmodel base\nmodel oneshot\nr 3\ndag 1\nend\n";
        assert_eq!(
            parse_instance(text).unwrap_err(),
            ParseError::DuplicateField {
                line: 3,
                field: "model"
            }
        );
        let text = "instance v1\nmodel quantum\nr 3\ndag 1\nend\n";
        match parse_instance(text).unwrap_err() {
            ParseError::UnexpectedToken { line: 2, token, .. } => assert_eq!(token, "quantum"),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_instance("instance v1\nr 3\ndag 1\nend\n").unwrap_err(),
            ParseError::MissingField { field: "model" }
        );
        assert_eq!(
            parse_instance("instance v1\nmodel base\nr 3\ndag 1\n").unwrap_err(),
            ParseError::MissingEnd
        );
    }

    #[test]
    fn dag_errors_report_document_lines() {
        // the bad edge sits on document line 5
        let text = "instance v1\nmodel base\nr 3\ndag 2\nedge 0\nend\n";
        match parse_instance(text).unwrap_err() {
            ParseError::Dag(rbp_graph::io::ParseError::Malformed { line, .. }) => {
                assert_eq!(line, 5)
            }
            other => panic!("{other:?}"),
        }
        // and with a stream offset, line numbers shift accordingly
        match parse_instance_at(text, 11).unwrap_err() {
            ParseError::Dag(rbp_graph::io::ParseError::Malformed { line, .. }) => {
                assert_eq!(line, 15)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hostile_dag_declaration_is_a_parse_error_not_an_abort() {
        // an instance document declaring billions of nodes must surface
        // as a located dag-section error (the graph layer's wire cap),
        // never as an allocation abort in the embedding parser
        let text = "instance v1\nmodel base\nr 3\ndag 99999999999\nend\n";
        match parse_instance(text).unwrap_err() {
            ParseError::Dag(rbp_graph::io::ParseError::Malformed { line, .. }) => {
                assert_eq!(line, 4)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_statements_rejected() {
        let text = "instance v1\nmodel base\nr 3\ndag 1\nend\ninstance v1\n";
        match parse_instance(text).unwrap_err() {
            ParseError::UnexpectedToken { line: 6, .. } => {}
            other => panic!("{other:?}"),
        }
        // trailing blanks and comments are fine
        let text = "instance v1\nmodel base\nr 3\ndag 1\nend\n\n# done\n";
        assert!(parse_instance(text).is_ok());
    }

    #[test]
    fn compcost_epsilon_validated() {
        for bad in [
            "compcost 0/5",
            "compcost 5/5",
            "compcost 7/5",
            "compcost x/y",
        ] {
            let text = format!("instance v1\nmodel {bad}\nr 3\ndag 1\nend\n");
            assert!(
                matches!(
                    parse_instance(&text),
                    Err(ParseError::UnexpectedToken { line: 2, .. })
                ),
                "{bad} must be rejected"
            );
        }
    }
}

//! Fractional lower bounds: an exact solution of a small linear
//! relaxation of the pebble game, composable group-by-group over an
//! acyclic partition.
//!
//! The relaxation drops the pebbling's combinatorial structure and
//! keeps only *linear* facts about move counts that hold for **every
//! complete trace** in every model, source/sink convention, and
//! processor count. Writing `L` for total loads, `S` for total stores,
//! and `C` for total computes:
//!
//! 1. **Forced computes** — every node that is not an initially-blue
//!    source is computed at least once. Proof (reverse topological
//!    induction): every node has a directed path to a sink; sinks must
//!    end pebbled, pebbles originate only from `Compute` (or the
//!    initial blue on IB sources), and a `Load` needs a prior `Store`
//!    which needs a prior `Compute`. Hence `C >= computed_nodes`.
//! 2. **Forced loads** — under [`SourceConvention::InitiallyBlue`] a
//!    source is never computable, so its value can only become red via
//!    `Load`; if it has a successor, that successor's (forced) compute
//!    needs it red. Hence `L >= ib_loads`, the number of IB sources
//!    with at least one successor.
//! 3. **Forced stores** — under [`SinkConvention::RequireBlue`] every
//!    sink must end blue; blue arises only from `Store` (or the
//!    initial blue on IB sources). Hence `S >= rb_stores`, the number
//!    of sinks that do not start blue.
//! 4. **Red-mass conservation (nodel only)** — with deletes forbidden,
//!    every `Compute`/`Load` adds exactly one red pebble and every
//!    `Store` drains one, so the final red mass is `C + L - S`, which
//!    the per-processor capacity caps at `p·R`. Hence
//!    `S >= C + L - p·R`.
//!
//! The bound is the optimum of the tiny LP `min L + S` subject to
//! (2)–(4): a two-variable polytope whose optimum the greedy dual
//! below reads off in closed form — `L* = ib_loads` (the objective is
//! increasing in `L`, even through constraint 4), and `S*` is the most
//! binding of its constraints. No external LP solver is involved, and
//! every supporting hyperplane is one of the proved inequalities, so
//! the result is a certified lower bound, never an estimate.
//!
//! All four facts are sums of per-node terms (plus one global capacity
//! row), so the bound *composes over any acyclic partition*: summing
//! the per-group rows of [`bound_with`] reproduces the whole-instance
//! bound, and each row is a valid lower bound on the moves any global
//! trace spends on that group's nodes — which is what lets the coarse
//! solver report per-group brackets without assuming the optimum
//! respects the partition.

use crate::cost::Cost;
use crate::instance::{Instance, SinkConvention, SourceConvention};
use crate::model::ModelKind;
use rbp_graph::{NodeId, Partition};

/// The linear facts for one partition group: the moves any complete
/// trace must spend on this group's nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupTerm {
    /// Group index in the partition.
    pub group: usize,
    /// Nodes in the group.
    pub nodes: u64,
    /// Forced computes attributable to the group (fact 1).
    pub computed: u64,
    /// Forced loads attributable to the group (fact 2).
    pub forced_loads: u64,
    /// Forced stores attributable to the group (fact 3).
    pub forced_stores: u64,
    /// Distinct values entering the group from earlier groups.
    pub interface_in: u64,
    /// Values of this group consumed by later groups.
    pub interface_out: u64,
}

/// The solved relaxation: the composed [`Cost`] lower bound plus the
/// certificate rows it was assembled from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FractionalBound {
    /// The composed lower bound (component-wise: transfers and
    /// computes are each individually sound).
    pub cost: Cost,
    /// Total forced loads (fact 2).
    pub forced_loads: u64,
    /// Total forced stores (fact 3).
    pub forced_stores: u64,
    /// Total forced computes (fact 1).
    pub computed_nodes: u64,
    /// Total red capacity `p·R` (the right-hand side of fact 4).
    pub red_capacity: u64,
    /// Per-group decomposition over the partition handed to
    /// [`bound_with`] (empty from [`bound`]).
    pub per_group: Vec<GroupTerm>,
}

/// The global linear facts: `(forced_loads, forced_stores,
/// computed_nodes)` for the whole instance. One `O(n)` scan.
fn global_terms(instance: &Instance) -> (u64, u64, u64) {
    let dag = instance.dag();
    let ib = instance.source_convention() == SourceConvention::InitiallyBlue;
    let rb = instance.sink_convention() == SinkConvention::RequireBlue;
    let mut forced_loads = 0u64;
    let mut forced_stores = 0u64;
    let mut computed = 0u64;
    for v in dag.nodes() {
        let starts_blue = ib && dag.is_source(v);
        if starts_blue {
            if dag.outdegree(v) > 0 {
                forced_loads += 1;
            }
        } else {
            computed += 1;
            if rb && dag.is_sink(v) {
                forced_stores += 1;
            }
        }
    }
    (forced_loads, forced_stores, computed)
}

/// Solves the relaxation's tiny LP in closed form: minimize `L + S`
/// over facts (2)–(4). `L` only ever makes the objective and the
/// conservation row worse, so `L* = forced_loads`; `S*` is the larger
/// of its two supporting rows.
fn solve_lp(instance: &Instance, loads: u64, stores: u64, computed: u64) -> Cost {
    let red_capacity = instance.red_limit() as u64 * instance.procs() as u64;
    let store_floor = match instance.model().kind() {
        // fact 4 binds only when deletes are forbidden
        ModelKind::NoDel => stores.max((computed + loads).saturating_sub(red_capacity)),
        _ => stores,
    };
    Cost {
        transfers: loads + store_floor,
        computes: computed,
    }
}

/// The whole-instance fractional lower bound, without a partition
/// breakdown. `O(n)`; this is the entry point the solver hot paths
/// use via [`super::best_lower_bound`].
pub fn bound(instance: &Instance) -> FractionalBound {
    let (loads, stores, computed) = global_terms(instance);
    FractionalBound {
        cost: solve_lp(instance, loads, stores, computed),
        forced_loads: loads,
        forced_stores: stores,
        computed_nodes: computed,
        red_capacity: instance.red_limit() as u64 * instance.procs() as u64,
        per_group: Vec::new(),
    }
}

/// The fractional bound with its per-group certificate rows over an
/// acyclic partition (the shape the coarse solver and the gap atlas
/// report). The composed `cost` is identical to [`bound`]'s — the
/// facts are per-node, so group rows sum to the global terms — but
/// each row additionally carries the group's interface traffic.
pub fn bound_with(instance: &Instance, partition: &Partition) -> FractionalBound {
    let dag = instance.dag();
    let ib = instance.source_convention() == SourceConvention::InitiallyBlue;
    let rb = instance.sink_convention() == SinkConvention::RequireBlue;
    let mut per_group = Vec::with_capacity(partition.k());
    for (g, nodes) in partition.groups().enumerate() {
        let mut term = GroupTerm {
            group: g,
            nodes: nodes.len() as u64,
            computed: 0,
            forced_loads: 0,
            forced_stores: 0,
            interface_in: partition.external_inputs(dag, g).len() as u64,
            interface_out: 0,
        };
        for &v in nodes {
            let starts_blue = ib && dag.is_source(v);
            if starts_blue {
                if dag.outdegree(v) > 0 {
                    term.forced_loads += 1;
                }
            } else {
                term.computed += 1;
                if rb && dag.is_sink(v) {
                    term.forced_stores += 1;
                }
            }
            if dag.succs(v).iter().any(|&w| partition.group_of(w) != g) {
                term.interface_out += 1;
            }
        }
        per_group.push(term);
    }
    let loads: u64 = per_group.iter().map(|t| t.forced_loads).sum();
    let stores: u64 = per_group.iter().map(|t| t.forced_stores).sum();
    let computed: u64 = per_group.iter().map(|t| t.computed).sum();
    FractionalBound {
        cost: solve_lp(instance, loads, stores, computed),
        forced_loads: loads,
        forced_stores: stores,
        computed_nodes: computed,
        red_capacity: instance.red_limit() as u64 * instance.procs() as u64,
        per_group,
    }
}

/// Whether `v` contributes a forced load (an initially-blue source
/// with a consumer) — exposed for solvers stitching interface loads.
pub fn is_forced_load(instance: &Instance, v: NodeId) -> bool {
    instance.source_convention() == SourceConvention::InitiallyBlue
        && instance.dag().is_source(v)
        && instance.dag().outdegree(v) > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{best_lower_bound, trivial_lower_bound};
    use crate::engine::simulate;
    use crate::model::CostModel;
    use rbp_graph::{generate, partition, DagBuilder};

    fn chain_inst(n: usize, r: usize, model: CostModel) -> Instance {
        Instance::new(generate::chain(n), r, model)
    }

    #[test]
    fn free_compute_any_pebble_matches_trivial() {
        for kind in ModelKind::ALL {
            let inst = chain_inst(10, 2, CostModel::of_kind(kind));
            let f = bound(&inst);
            assert_eq!(f.cost.transfers, trivial_lower_bound(&inst).transfers);
            assert_eq!(f.computed_nodes, 10);
        }
    }

    #[test]
    fn initially_blue_sources_force_loads() {
        let inst = chain_inst(10, 2, CostModel::oneshot())
            .with_source_convention(SourceConvention::InitiallyBlue);
        let f = bound(&inst);
        assert_eq!(f.forced_loads, 1);
        assert_eq!(f.cost.transfers, 1);
        assert_eq!(trivial_lower_bound(&inst).transfers, 0);
    }

    #[test]
    fn require_blue_sinks_force_stores() {
        let inst =
            chain_inst(10, 2, CostModel::base()).with_sink_convention(SinkConvention::RequireBlue);
        let f = bound(&inst);
        assert_eq!(f.forced_stores, 1);
        assert_eq!(f.cost.transfers, 1);
    }

    #[test]
    fn nodel_conservation_includes_forced_loads() {
        // 10-chain, R = 2, IB: 9 computes + 1 forced load drain through
        // at most 2 resident reds -> at least 8 stores, 9 transfers.
        let inst = chain_inst(10, 2, CostModel::nodel())
            .with_source_convention(SourceConvention::InitiallyBlue);
        let f = bound(&inst);
        assert_eq!(f.cost.transfers, 1 + (9 + 1 - 2));
        // trivial only sees the computes: (10 - 1) - 2 = 7
        assert_eq!(trivial_lower_bound(&inst).transfers, 7);
    }

    #[test]
    fn isolated_initially_blue_nodes_force_nothing() {
        let dag = DagBuilder::new(3).build().unwrap();
        let inst = Instance::new(dag, 1, CostModel::nodel())
            .with_source_convention(SourceConvention::InitiallyBlue)
            .with_sink_convention(SinkConvention::RequireBlue);
        let f = bound(&inst);
        assert_eq!(f.cost, Cost::ZERO);
        assert_eq!(f.computed_nodes, 0);
    }

    #[test]
    fn group_rows_compose_to_the_global_bound() {
        let dag = generate::chain(12);
        let inst = Instance::new(dag, 2, CostModel::nodel())
            .with_source_convention(SourceConvention::InitiallyBlue)
            .with_sink_convention(SinkConvention::RequireBlue);
        let p = partition::partition(inst.dag(), 3);
        let f = bound_with(&inst, &p);
        assert_eq!(f.cost, bound(&inst).cost);
        assert_eq!(f.per_group.len(), 3);
        let loads: u64 = f.per_group.iter().map(|t| t.forced_loads).sum();
        let computed: u64 = f.per_group.iter().map(|t| t.computed).sum();
        assert_eq!(loads, f.forced_loads);
        assert_eq!(computed, f.computed_nodes);
        // a 3-way chain split has one value crossing each boundary
        assert_eq!(f.per_group[1].interface_in, 1);
        assert_eq!(f.per_group[1].interface_out, 1);
    }

    #[test]
    fn fractional_never_below_trivial_and_respects_a_real_trace() {
        // canonical pebbling realizes a complete trace in all models;
        // the bound must sit below its cost and above trivial
        let mut rng = rand::thread_rng();
        for kind in ModelKind::ALL {
            for (src, sink) in [
                (SourceConvention::FreeCompute, SinkConvention::AnyPebble),
                (SourceConvention::InitiallyBlue, SinkConvention::RequireBlue),
                (SourceConvention::InitiallyBlue, SinkConvention::AnyPebble),
                (SourceConvention::FreeCompute, SinkConvention::RequireBlue),
            ] {
                let dag = generate::layered(3, 4, 3, &mut rng);
                let r = dag.max_indegree() + 1;
                let inst = Instance::new(dag, r, CostModel::of_kind(kind))
                    .with_source_convention(src)
                    .with_sink_convention(sink);
                let eps = inst.model().epsilon();
                let f = bound(&inst);
                let triv = trivial_lower_bound(&inst);
                assert!(
                    f.cost.transfers >= triv.transfers,
                    "{kind} {src:?} {sink:?}"
                );
                assert!(f.cost.computes >= triv.computes);
                let best = best_lower_bound(&inst);
                assert!(best.scaled(eps) >= triv.scaled(eps));
                // soundness against a concrete complete pebbling: the
                // canonical one leaves the board all-blue, satisfying
                // both sink conventions
                let trace = crate::bounds::canonical_pebbling(&inst).unwrap();
                let rep = simulate(&inst, &trace).unwrap();
                assert!(
                    best.scaled(eps) <= rep.cost.scaled(eps),
                    "bound exceeds a realized complete trace under {kind} {src:?} {sink:?}"
                );
            }
        }
    }

    #[test]
    fn forced_load_predicate_matches_terms() {
        let dag = generate::chain(4);
        let inst = Instance::new(dag, 2, CostModel::base())
            .with_source_convention(SourceConvention::InitiallyBlue);
        assert!(is_forced_load(&inst, NodeId::new(0)));
        assert!(!is_forced_load(&inst, NodeId::new(1)));
    }
}

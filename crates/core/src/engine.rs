//! The validating simulation engine.
//!
//! Every cost number reported anywhere in this repository comes from this
//! engine replaying a concrete trace against an instance — solver-internal
//! accounting is always cross-checked here in tests.

use crate::cost::Cost;
use crate::error::{PebblingError, TraceError};
use crate::instance::Instance;
use crate::state::State;
use crate::trace::Pebbling;

/// The result of a successful simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Exact accumulated cost (transfers + compute count; weigh with the
    /// model's ε via [`Cost::scaled`]).
    pub cost: Cost,
    /// Maximum number of red pebbles simultaneously on the board.
    pub peak_red: usize,
    /// Number of moves executed.
    pub steps: usize,
    /// The configuration after the last move.
    pub final_state: State,
}

impl SimReport {
    /// The cost weighed by the instance's objective (ε for classic
    /// instances, the MPP comm/comp weights otherwise), as the
    /// canonical integer comparison key.
    pub fn scaled_cost(&self, instance: &Instance) -> u128 {
        instance.scaled_cost(&self.cost)
    }
}

/// Replays `trace` from the initial configuration, validating every move,
/// and requires the finishing condition (every sink pebbled per the sink
/// convention). Returns the exact cost or the first violation.
///
/// Multiprocessor instances (p > 1) and processor-tagged traces are
/// dispatched to the [`crate::mpp`] simulator transparently: the report
/// carries the same global cost and the projected final configuration
/// (red = union of the per-processor red sets).
pub fn simulate(instance: &Instance, trace: &Pebbling) -> Result<SimReport, TraceError> {
    let report = simulate_prefix(instance, trace)?;
    if let Some(sink) = report.final_state.first_unsatisfied_sink(instance) {
        return Err(TraceError {
            step: usize::MAX,
            error: PebblingError::Incomplete { sink },
        });
    }
    Ok(report)
}

/// Like [`simulate`] but without the completeness requirement — validates
/// and costs a partial pebbling.
pub fn simulate_prefix(instance: &Instance, trace: &Pebbling) -> Result<SimReport, TraceError> {
    if instance.procs() > 1 || trace.has_proc_tags() {
        // The multiprocessor path also covers tagged traces on classic
        // instances: any nonzero tag is then rejected as out of range,
        // which is the correct verdict rather than a silent reinterpretation.
        let rep = crate::mpp::simulate_mpp_prefix(instance, trace)?;
        return Ok(SimReport {
            cost: rep.cost,
            peak_red: rep.peak_red,
            steps: rep.steps,
            final_state: rep.final_state,
        });
    }
    let mut state = State::initial(instance);
    let mut cost = Cost::ZERO;
    let mut peak_red = state.red_count();
    for (step, &mv) in trace.moves().iter().enumerate() {
        match state.apply(mv, instance) {
            Ok(delta) => cost += delta,
            Err(error) => return Err(TraceError { step, error }),
        }
        peak_red = peak_red.max(state.red_count());
    }
    Ok(SimReport {
        cost,
        peak_red,
        steps: trace.len(),
        final_state: state,
    })
}

/// Validates a trace and returns only its scaled cost — the common path in
/// solver tests.
pub fn cost_of(instance: &Instance, trace: &Pebbling) -> Result<Cost, TraceError> {
    simulate(instance, trace).map(|r| r.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;
    use crate::moves::Move;
    use rbp_graph::{DagBuilder, NodeId};

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// 0 -> 2, 1 -> 2 (two sources, one sink)
    fn join_instance(model: CostModel, r: usize) -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        Instance::new(b.build().unwrap(), r, model)
    }

    #[test]
    fn free_pebbling_when_memory_sufficient() {
        let inst = join_instance(CostModel::oneshot(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.compute(v(1));
        p.compute(v(2));
        let rep = simulate(&inst, &p).unwrap();
        assert_eq!(
            rep.cost,
            Cost {
                transfers: 0,
                computes: 3
            }
        );
        assert_eq!(rep.scaled_cost(&inst), 0, "computes are free in oneshot");
        assert_eq!(rep.peak_red, 3);
        assert_eq!(rep.steps, 3);
    }

    #[test]
    fn incomplete_trace_rejected_with_sink() {
        let inst = join_instance(CostModel::oneshot(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        let err = simulate(&inst, &p).unwrap_err();
        assert_eq!(err.step, usize::MAX);
        assert_eq!(err.error, PebblingError::Incomplete { sink: v(2) });
        // but as a prefix it is fine
        assert!(simulate_prefix(&inst, &p).is_ok());
    }

    #[test]
    fn error_reports_step_index() {
        let inst = join_instance(CostModel::oneshot(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.load(v(1)); // illegal: v1 not blue
        let err = simulate_prefix(&inst, &p).unwrap_err();
        assert_eq!(err.step, 1);
        assert_eq!(err.error, PebblingError::LoadNotBlue { node: v(1) });
    }

    #[test]
    fn tight_memory_forces_transfers() {
        // R = 3 = Δ+1: computing the sink needs all three pebbles; with a
        // detour through blue the cost surfaces.
        let inst = join_instance(CostModel::oneshot(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.store(v(0)); // unnecessary, but legal: cost 1
        p.compute(v(1));
        p.load(v(0)); // cost 1
        p.compute(v(2));
        let rep = simulate(&inst, &p).unwrap();
        assert_eq!(rep.cost.transfers, 2);
        assert_eq!(rep.scaled_cost(&inst), 2);
    }

    #[test]
    fn compcost_weighs_computations() {
        let inst = join_instance(CostModel::compcost(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.compute(v(1));
        p.compute(v(2));
        let rep = simulate(&inst, &p).unwrap();
        // 3 computes at ε = 1/100 → scaled = 3 (units of 1/100)
        assert_eq!(rep.scaled_cost(&inst), 3);
        assert_eq!(rep.cost.total_f64(inst.model().epsilon()), 0.03);
    }

    #[test]
    fn peak_red_tracked() {
        let inst = join_instance(CostModel::base(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.compute(v(1));
        p.compute(v(2));
        p.delete(v(0));
        p.delete(v(1));
        let rep = simulate(&inst, &p).unwrap();
        assert_eq!(rep.peak_red, 3);
        assert_eq!(rep.final_state.red_count(), 1);
    }

    #[test]
    fn deletes_are_free() {
        let inst = join_instance(CostModel::base(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.compute(v(1));
        p.compute(v(2));
        p.delete(v(0));
        p.delete(v(1));
        let with_deletes = simulate(&inst, &p).unwrap();
        assert_eq!(with_deletes.cost.transfers, 0);
        assert_eq!(with_deletes.cost.computes, 3);
    }

    #[test]
    fn cost_of_shortcut() {
        let inst = join_instance(CostModel::oneshot(), 3);
        let p = Pebbling::from_moves(vec![
            Move::Compute(v(0)),
            Move::Compute(v(1)),
            Move::Compute(v(2)),
        ]);
        assert_eq!(
            cost_of(&inst, &p).unwrap(),
            Cost {
                transfers: 0,
                computes: 3
            }
        );
    }

    #[test]
    fn mpp_instances_dispatch_to_the_multiprocessor_simulator() {
        let inst = join_instance(CostModel::base(), 3).with_procs(2);
        let mut p = Pebbling::new();
        p.push_on(Move::Compute(v(0)), 0);
        p.push_on(Move::Compute(v(1)), 1);
        p.push_on(Move::Store(v(1)), 1);
        p.push_on(Move::Load(v(1)), 0);
        p.push_on(Move::Compute(v(2)), 0);
        let rep = simulate(&inst, &p).unwrap();
        assert_eq!(rep.cost.transfers, 2);
        assert_eq!(rep.cost.computes, 3);
        // the projected final state unions both red sets
        assert!(rep.final_state.is_red(v(0)));
        assert!(rep.final_state.is_red(v(2)));
        // an untagged trace on a p > 1 instance is a valid proc-0 schedule
        let mut serial = Pebbling::new();
        serial.compute(v(0));
        serial.compute(v(1));
        serial.compute(v(2));
        assert_eq!(simulate(&inst, &serial).unwrap().cost.transfers, 0);
    }

    #[test]
    fn tagged_trace_on_classic_instance_rejected() {
        let inst = join_instance(CostModel::base(), 3);
        let mut p = Pebbling::new();
        p.push_on(Move::Compute(v(0)), 1);
        let err = simulate_prefix(&inst, &p).unwrap_err();
        assert_eq!(
            err.error,
            PebblingError::ProcOutOfRange {
                node: v(0),
                proc: 1,
                procs: 1
            }
        );
    }

    #[test]
    fn empty_trace_on_sink_free_graph() {
        // a graph with zero nodes is trivially complete
        let inst = Instance::new(DagBuilder::new(0).build().unwrap(), 1, CostModel::base());
        let rep = simulate(&inst, &Pebbling::new()).unwrap();
        assert_eq!(rep.cost, Cost::ZERO);
    }
}

//! # rbp-core
//!
//! Semantics of the red-blue pebble game, after Papp & Wattenhofer,
//! *On the Hardness of Red-Blue Pebble Games* (SPAA 2020).
//!
//! The game models the I/O cost of computing a DAG on a two-level memory
//! hierarchy: red pebbles are values in fast memory (at most R at a time),
//! blue pebbles are values in slow memory, and the four moves are
//! load (blue→red, cost 1), store (red→blue, cost 1), compute (place red on
//! a node whose inputs are all red), and delete. Four model variants differ
//! in whether computation is free, repeatable, or deletable — see
//! [`model::CostModel`] for the exact Table-1 semantics.
//!
//! The central types:
//! - [`Instance`]: DAG + red budget R + model + start/finish conventions;
//! - [`Pebbling`]: a move trace;
//! - [`engine::simulate`]: the validating replayer every reported cost
//!   goes through;
//! - [`mod@certify`]: an *independent* second interpreter (no shared code
//!   with the engine or any solver) that re-executes solutions for
//!   end-to-end certification;
//! - [`bounds`]: the Section-3 structural bounds with constructive
//!   witnesses;
//! - [`transform`]: the super-source and Appendix-C convention adapters;
//! - [`mod@mpp`]: the multiprocessor (p-processor) extension of the
//!   game, reached by lifting an [`Instance`] with
//!   [`Instance::with_procs`].
//!
//! # Example
//! ```
//! use rbp_core::{CostModel, Instance, Pebbling, engine};
//! use rbp_graph::{DagBuilder, NodeId};
//!
//! // Two inputs feeding one output, with room for all three values.
//! let mut b = DagBuilder::new(3);
//! b.add_edge(0, 2);
//! b.add_edge(1, 2);
//! let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
//!
//! let mut p = Pebbling::new();
//! p.compute(NodeId::new(0));
//! p.compute(NodeId::new(1));
//! p.compute(NodeId::new(2));
//! let report = engine::simulate(&inst, &p).unwrap();
//! assert_eq!(report.cost.transfers, 0); // everything fit in fast memory
//! ```

pub mod analysis;
pub mod bounds;
pub mod certify;
pub mod cost;
pub mod engine;
pub mod error;
pub mod instance;
pub mod io;
pub mod model;
pub mod moves;
pub mod mpp;
pub mod state;
pub mod trace;
pub mod transform;

pub use analysis::{analyze, NodeTraffic, TraceAnalysis};
pub use certify::{certify, Certificate, CertifyError};
pub use cost::{Cost, Ratio};
pub use engine::{cost_of, simulate, simulate_prefix, SimReport};
pub use error::{PebblingError, TraceError};
pub use instance::{CanonicalKey, Instance, MppDim, SinkConvention, SourceConvention};
pub use io::{parse_instance, write_instance};
pub use model::{CostModel, ModelKind};
pub use moves::Move;
pub use mpp::{
    cost_vector, simulate_mpp, simulate_mpp_prefix, MppCostVector, MppSimReport, MppState,
};
pub use state::State;
pub use trace::{Pebbling, TraceStats};

//! Independent solution certification.
//!
//! [`certify`] re-executes a pebbling trace against the rules of its
//! instance's model using a **separate minimal interpreter** — it shares
//! no code with [`crate::state::State`], [`crate::engine`], or
//! [`crate::mpp`]: its board is a plain `Vec<Color>` whose red cells
//! remember the owning processor, its cost accounting is two integer
//! counters scaled by the instance's objective weights, and its
//! legality guards are written from the paper's move rules (Section 2
//! plus the Section 4 model deltas and the Appendix C conventions) and
//! the multiprocessor deltas of Böhnlein/Papp/Yzelman 2024, not from
//! the engine's. A bug in the engine and a matching bug in a solver
//! therefore cannot cancel out here: any solution the system emits can
//! be certified end-to-end by code with a disjoint failure surface.
//! Differential agreement between certifier and engine (accept/reject
//! *and* costs) is itself property-tested in `tests/prop_certify.rs`.
//!
//! The single-processor game is certified as the `p = 1` special case
//! of the same interpreter — one code path, so the equivalence between
//! the two games is structural rather than asserted.
//!
//! The only inputs the certifier consults are problem *data*: the DAG's
//! predecessor lists, R, the model kind/ε, p, the cost weights, and the
//! two conventions.

use crate::cost::Cost;
use crate::instance::{Instance, SinkConvention, SourceConvention};
use crate::model::ModelKind;
use crate::moves::Move;
use crate::trace::Pebbling;
use rbp_graph::NodeId;
use std::fmt;

/// What a node's board cell holds. A node has at most one pebble
/// globally; a red pebble records the processor whose private memory
/// holds it (always 0 in the single-processor game, so the p = 1 board
/// is the classic board under a different name — there is deliberately
/// only one code path).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Color {
    Empty,
    Red(u16),
    Blue,
}

impl Color {
    fn is_red(self) -> bool {
        matches!(self, Color::Red(_))
    }
}

/// The outcome of a successful certification: independently recomputed
/// cost figures for the trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// Load + store moves executed.
    pub transfers: u64,
    /// Compute moves executed.
    pub computes: u64,
    /// The canonical integer comparison key, recomputed from scratch:
    /// `transfers·den(ε) + computes·num(ε)` classically, or the
    /// comm/comp-weighted equivalent for multiprocessor instances
    /// (identical numbers under the default weights).
    pub scaled_cost: u128,
    /// Moves in the trace.
    pub steps: usize,
}

impl Certificate {
    /// Whether this certificate realizes exactly the claimed engine cost.
    pub fn matches(&self, cost: &Cost) -> bool {
        self.transfers == cost.transfers && self.computes == cost.computes
    }
}

/// Why certification rejected a trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CertifyError {
    /// A move at `step` (0-based) broke a rule of the model.
    Rejected {
        /// Index of the offending move.
        step: usize,
        /// The offending move.
        mv: Move,
        /// Plain-language rule that was violated.
        rule: &'static str,
    },
    /// The trace ran to completion but left a sink unsatisfied.
    Incomplete {
        /// The first sink without the required pebble.
        sink: NodeId,
    },
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::Rejected { step, mv, rule } => {
                write!(f, "certifier rejected step {step} ({mv:?}): {rule}")
            }
            CertifyError::Incomplete { sink } => {
                write!(f, "certifier: trace ends with sink {sink:?} unsatisfied")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

/// Re-executes `trace` on `instance` with the independent interpreter
/// and checks the finishing condition. Returns the recomputed cost
/// figures, or the first rule violation.
pub fn certify(instance: &Instance, trace: &Pebbling) -> Result<Certificate, CertifyError> {
    let dag = instance.dag();
    let n = dag.n();
    let r_limit = instance.red_limit();
    let kind = instance.model().kind();
    let recompute_ok = kind != ModelKind::Oneshot;
    let delete_ok = kind != ModelKind::NoDel;
    let sources_locked = instance.source_convention() == SourceConvention::InitiallyBlue;
    // The multiprocessor dimension: processor count and per-processor
    // red budgets. The single-processor game is exactly the p = 1 case
    // of the same rules, so there is one interpreter, not two.
    let procs = instance.procs();

    let mut board = vec![Color::Empty; n];
    let mut computed = vec![false; n];
    let mut reds = vec![0usize; procs];
    if sources_locked {
        for s in dag.sources() {
            board[s.index()] = Color::Blue;
            computed[s.index()] = true;
        }
    }

    let mut transfers: u64 = 0;
    let mut computes: u64 = 0;
    let reject =
        |step: usize, mv: Move, rule: &'static str| CertifyError::Rejected { step, mv, rule };
    for (step, &mv) in trace.moves().iter().enumerate() {
        let p = trace.proc_of(step);
        if p as usize >= procs {
            return Err(reject(step, mv, "processor index out of range"));
        }
        let pi = p as usize;
        match mv {
            Move::Load(v) => {
                let i = v.index();
                if i >= n || board[i] != Color::Blue {
                    return Err(reject(step, mv, "load requires a blue pebble on the node"));
                }
                if reds[pi] >= r_limit {
                    return Err(reject(step, mv, "load would exceed the red budget R"));
                }
                board[i] = Color::Red(p);
                reds[pi] += 1;
                transfers += 1;
            }
            Move::Store(v) => {
                let i = v.index();
                if i >= n || board[i] != Color::Red(p) {
                    return Err(reject(step, mv, "store requires a red pebble on the node"));
                }
                board[i] = Color::Blue;
                reds[pi] -= 1;
                transfers += 1;
            }
            Move::Compute(v) => {
                let i = v.index();
                if i >= n {
                    return Err(reject(step, mv, "compute on a node outside the DAG"));
                }
                if board[i].is_red() {
                    return Err(reject(step, mv, "compute onto a red pebble"));
                }
                if !recompute_ok && computed[i] {
                    return Err(reject(step, mv, "oneshot model forbids recomputation"));
                }
                if sources_locked && dag.is_source(v) {
                    return Err(reject(
                        step,
                        mv,
                        "initially-blue sources are not computable",
                    ));
                }
                if dag
                    .preds(v)
                    .iter()
                    .any(|q| board[q.index()] != Color::Red(p))
                {
                    return Err(reject(
                        step,
                        mv,
                        "compute needs every input red on the computing processor",
                    ));
                }
                if reds[pi] >= r_limit {
                    return Err(reject(step, mv, "compute would exceed the red budget R"));
                }
                // computing replaces any blue pebble on the node
                board[i] = Color::Red(p);
                reds[pi] += 1;
                computed[i] = true;
                computes += 1;
            }
            Move::Delete(v) => {
                let i = v.index();
                if !delete_ok {
                    return Err(reject(step, mv, "nodel model forbids deletion"));
                }
                // a red pebble in another processor's memory is not
                // deletable by this processor (shared blue always is)
                if i >= n
                    || board[i] == Color::Empty
                    || (board[i].is_red() && board[i] != Color::Red(p))
                {
                    return Err(reject(step, mv, "delete on an unpebbled node"));
                }
                if board[i] == Color::Red(p) {
                    reds[pi] -= 1;
                }
                board[i] = Color::Empty;
            }
        }
    }

    let need_blue = instance.sink_convention() == SinkConvention::RequireBlue;
    for v in dag.sinks() {
        let satisfied = match board[v.index()] {
            Color::Blue => true,
            Color::Red(_) => !need_blue,
            Color::Empty => false,
        };
        if !satisfied {
            return Err(CertifyError::Incomplete { sink: v });
        }
    }

    // Recompute the scalar objective from scratch: the classic ε scale,
    // or the MPP comm/comp weights over their common denominator.
    let (comm_scale, comp_scale) = match instance.mpp() {
        Some(dim) => (
            dim.comm.num() * dim.comp.den(),
            dim.comp.num() * dim.comm.den(),
        ),
        None => {
            let eps = instance.model().epsilon();
            (eps.den(), eps.num())
        }
    };
    Ok(Certificate {
        transfers,
        computes,
        scaled_cost: transfers as u128 * comm_scale as u128 + computes as u128 * comp_scale as u128,
        steps: trace.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;
    use rbp_graph::DagBuilder;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// 0 -> 2, 1 -> 2
    fn join(model: CostModel, r: usize) -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        Instance::new(b.build().unwrap(), r, model)
    }

    #[test]
    fn certifies_a_valid_trace_with_exact_cost() {
        let inst = join(CostModel::oneshot(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.store(v(0));
        p.compute(v(1));
        p.load(v(0));
        p.compute(v(2));
        let cert = certify(&inst, &p).unwrap();
        assert_eq!(cert.transfers, 2);
        assert_eq!(cert.computes, 3);
        assert_eq!(cert.scaled_cost, 2, "computes free under oneshot ε = 0");
        assert_eq!(cert.steps, 5);
    }

    #[test]
    fn compcost_scaling_recomputed_independently() {
        let inst = join(CostModel::compcost(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.compute(v(1));
        p.compute(v(2));
        let cert = certify(&inst, &p).unwrap();
        // ε = 1/100: scaled = 0·100 + 3·1
        assert_eq!(cert.scaled_cost, 3);
    }

    #[test]
    fn rejects_rule_violations() {
        let inst = join(CostModel::oneshot(), 3);
        // compute the sink without red inputs
        let p = Pebbling::from_moves(vec![Move::Compute(v(2))]);
        match certify(&inst, &p).unwrap_err() {
            CertifyError::Rejected { step: 0, .. } => {}
            other => panic!("wrong rejection: {other}"),
        }
        // recompute under oneshot
        let p = Pebbling::from_moves(vec![
            Move::Compute(v(0)),
            Move::Delete(v(0)),
            Move::Compute(v(0)),
        ]);
        match certify(&inst, &p).unwrap_err() {
            CertifyError::Rejected { step: 2, .. } => {}
            other => panic!("wrong rejection: {other}"),
        }
    }

    #[test]
    fn rejects_incomplete_traces() {
        let inst = join(CostModel::base(), 3);
        let p = Pebbling::from_moves(vec![Move::Compute(v(0))]);
        assert_eq!(
            certify(&inst, &p).unwrap_err(),
            CertifyError::Incomplete { sink: v(2) }
        );
    }

    #[test]
    fn enforces_conventions() {
        let inst = join(CostModel::base(), 3)
            .with_source_convention(SourceConvention::InitiallyBlue)
            .with_sink_convention(SinkConvention::RequireBlue);
        // sources must be loaded, sink must end blue
        let mut p = Pebbling::new();
        p.load(v(0));
        p.load(v(1));
        p.compute(v(2));
        p.store(v(2));
        let cert = certify(&inst, &p).unwrap();
        assert_eq!(cert.transfers, 3);
        // computing a locked source is rejected
        let bad = Pebbling::from_moves(vec![Move::Compute(v(0))]);
        assert!(matches!(
            certify(&inst, &bad),
            Err(CertifyError::Rejected { .. })
        ));
        // red pebble on the sink does not satisfy RequireBlue
        let mut red_end = Pebbling::new();
        red_end.load(v(0));
        red_end.load(v(1));
        red_end.compute(v(2));
        assert_eq!(
            certify(&inst, &red_end).unwrap_err(),
            CertifyError::Incomplete { sink: v(2) }
        );
    }

    #[test]
    fn nodel_delete_rejected_red_budget_enforced() {
        let inst = join(CostModel::nodel(), 2);
        let p = Pebbling::from_moves(vec![Move::Compute(v(0)), Move::Delete(v(0))]);
        assert!(matches!(
            certify(&inst, &p),
            Err(CertifyError::Rejected { step: 1, .. })
        ));
        let p = Pebbling::from_moves(vec![
            Move::Compute(v(0)),
            Move::Compute(v(1)),
            Move::Compute(v(2)), // third red pebble, R = 2
        ]);
        assert!(matches!(
            certify(&inst, &p),
            Err(CertifyError::Rejected { step: 2, .. })
        ));
    }

    #[test]
    fn certifies_multiprocessor_traces() {
        let inst = join(CostModel::base(), 3).with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Compute(v(1)), 1);
        t.push_on(Move::Store(v(1)), 1);
        t.push_on(Move::Load(v(1)), 0);
        t.push_on(Move::Compute(v(2)), 0);
        let cert = certify(&inst, &t).unwrap();
        assert_eq!(cert.transfers, 2);
        assert_eq!(cert.computes, 3);
        // default weights: comm = 1, comp = ε = 0 → scaled = transfers
        assert_eq!(cert.scaled_cost, 2);
        // the engine agrees move for move
        let rep = crate::engine::simulate(&inst, &t).unwrap();
        assert!(cert.matches(&rep.cost));
        assert_eq!(cert.scaled_cost, rep.scaled_cost(&inst));
    }

    #[test]
    fn rejects_multiprocessor_rule_violations() {
        let inst = join(CostModel::base(), 3).with_procs(2);
        // inputs red on the wrong processor
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Compute(v(1)), 1);
        t.push_on(Move::Compute(v(2)), 0);
        match certify(&inst, &t).unwrap_err() {
            CertifyError::Rejected { step: 2, rule, .. } => {
                assert_eq!(
                    rule,
                    "compute needs every input red on the computing processor"
                )
            }
            other => panic!("wrong rejection: {other}"),
        }
        // storing another processor's red pebble
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Store(v(0)), 1);
        assert!(matches!(
            certify(&inst, &t),
            Err(CertifyError::Rejected { step: 1, .. })
        ));
        // processor index beyond p
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 5);
        match certify(&inst, &t).unwrap_err() {
            CertifyError::Rejected { step: 0, rule, .. } => {
                assert_eq!(rule, "processor index out of range")
            }
            other => panic!("wrong rejection: {other}"),
        }
        // per-processor budgets: R = 1 each, two values on one proc
        let tight = join(CostModel::base(), 1).with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Compute(v(1)), 0);
        assert!(matches!(
            certify(&tight, &t),
            Err(CertifyError::Rejected { step: 1, .. })
        ));
        // ...but fine on separate processors
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Compute(v(1)), 1);
        assert!(matches!(
            certify(&tight, &t),
            Err(CertifyError::Incomplete { .. })
        ));
    }

    #[test]
    fn mpp_weights_scale_the_certificate() {
        use crate::cost::Ratio;
        use crate::instance::MppDim;
        let inst = join(CostModel::base(), 3).with_mpp(MppDim {
            p: 2,
            comm: Ratio::new(1, 1),
            comp: Ratio::new(1, 1),
        });
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Compute(v(1)), 1);
        t.push_on(Move::Store(v(1)), 1);
        t.push_on(Move::Load(v(1)), 0);
        t.push_on(Move::Compute(v(2)), 0);
        let cert = certify(&inst, &t).unwrap();
        // comm = comp = 1: scaled = 2 + 3
        assert_eq!(cert.scaled_cost, 5);
        assert_eq!(
            cert.scaled_cost,
            inst.scaled_cost(&crate::cost::Cost {
                transfers: cert.transfers,
                computes: cert.computes,
            })
        );
    }

    #[test]
    fn certificate_matches_engine_cost_type() {
        let inst = join(CostModel::base(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.compute(v(1));
        p.compute(v(2));
        let cert = certify(&inst, &p).unwrap();
        let engine_cost = crate::engine::cost_of(&inst, &p).unwrap();
        assert!(cert.matches(&engine_cost));
        assert!(!cert.matches(&Cost {
            transfers: 1,
            computes: 3
        }));
    }
}

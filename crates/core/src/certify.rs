//! Independent solution certification.
//!
//! [`certify`] re-executes a pebbling trace against the rules of its
//! instance's model using a **separate minimal interpreter** — it shares
//! no code with [`crate::state::State`] or [`crate::engine`]: its board
//! is a plain `Vec<Color>`, its cost accounting is two integer counters
//! scaled directly by ε, and its legality guards are written from the
//! paper's move rules (Section 2 plus the Section 4 model deltas and the
//! Appendix C conventions), not from the engine's. A bug in the engine
//! and a matching bug in a solver therefore cannot cancel out here: any
//! solution the system emits can be certified end-to-end by code with a
//! disjoint failure surface. Differential agreement between certifier
//! and engine (accept/reject *and* costs) is itself property-tested in
//! `tests/prop_certify.rs`.
//!
//! The only inputs the certifier consults are problem *data*: the DAG's
//! predecessor lists, R, the model kind/ε, and the two conventions.

use crate::cost::Cost;
use crate::instance::{Instance, SinkConvention, SourceConvention};
use crate::model::ModelKind;
use crate::moves::Move;
use crate::trace::Pebbling;
use rbp_graph::NodeId;
use std::fmt;

/// What a node's board cell holds. A node has at most one pebble.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Color {
    Empty,
    Red,
    Blue,
}

/// The outcome of a successful certification: independently recomputed
/// cost figures for the trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// Load + store moves executed.
    pub transfers: u64,
    /// Compute moves executed.
    pub computes: u64,
    /// The canonical integer comparison key, recomputed from scratch:
    /// `transfers·den(ε) + computes·num(ε)`.
    pub scaled_cost: u128,
    /// Moves in the trace.
    pub steps: usize,
}

impl Certificate {
    /// Whether this certificate realizes exactly the claimed engine cost.
    pub fn matches(&self, cost: &Cost) -> bool {
        self.transfers == cost.transfers && self.computes == cost.computes
    }
}

/// Why certification rejected a trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CertifyError {
    /// A move at `step` (0-based) broke a rule of the model.
    Rejected {
        /// Index of the offending move.
        step: usize,
        /// The offending move.
        mv: Move,
        /// Plain-language rule that was violated.
        rule: &'static str,
    },
    /// The trace ran to completion but left a sink unsatisfied.
    Incomplete {
        /// The first sink without the required pebble.
        sink: NodeId,
    },
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::Rejected { step, mv, rule } => {
                write!(f, "certifier rejected step {step} ({mv:?}): {rule}")
            }
            CertifyError::Incomplete { sink } => {
                write!(f, "certifier: trace ends with sink {sink:?} unsatisfied")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

/// Re-executes `trace` on `instance` with the independent interpreter
/// and checks the finishing condition. Returns the recomputed cost
/// figures, or the first rule violation.
pub fn certify(instance: &Instance, trace: &Pebbling) -> Result<Certificate, CertifyError> {
    let dag = instance.dag();
    let n = dag.n();
    let r_limit = instance.red_limit();
    let kind = instance.model().kind();
    let recompute_ok = kind != ModelKind::Oneshot;
    let delete_ok = kind != ModelKind::NoDel;
    let sources_locked = instance.source_convention() == SourceConvention::InitiallyBlue;

    let mut board = vec![Color::Empty; n];
    let mut computed = vec![false; n];
    let mut reds: usize = 0;
    if sources_locked {
        for s in dag.sources() {
            board[s.index()] = Color::Blue;
            computed[s.index()] = true;
        }
    }

    let mut transfers: u64 = 0;
    let mut computes: u64 = 0;
    let reject =
        |step: usize, mv: Move, rule: &'static str| CertifyError::Rejected { step, mv, rule };
    for (step, &mv) in trace.moves().iter().enumerate() {
        match mv {
            Move::Load(v) => {
                let i = v.index();
                if i >= n || board[i] != Color::Blue {
                    return Err(reject(step, mv, "load requires a blue pebble on the node"));
                }
                if reds >= r_limit {
                    return Err(reject(step, mv, "load would exceed the red budget R"));
                }
                board[i] = Color::Red;
                reds += 1;
                transfers += 1;
            }
            Move::Store(v) => {
                let i = v.index();
                if i >= n || board[i] != Color::Red {
                    return Err(reject(step, mv, "store requires a red pebble on the node"));
                }
                board[i] = Color::Blue;
                reds -= 1;
                transfers += 1;
            }
            Move::Compute(v) => {
                let i = v.index();
                if i >= n {
                    return Err(reject(step, mv, "compute on a node outside the DAG"));
                }
                if board[i] == Color::Red {
                    return Err(reject(step, mv, "compute onto a red pebble"));
                }
                if !recompute_ok && computed[i] {
                    return Err(reject(step, mv, "oneshot model forbids recomputation"));
                }
                if sources_locked && dag.is_source(v) {
                    return Err(reject(
                        step,
                        mv,
                        "initially-blue sources are not computable",
                    ));
                }
                if dag.preds(v).iter().any(|p| board[p.index()] != Color::Red) {
                    return Err(reject(step, mv, "compute needs every input red"));
                }
                if reds >= r_limit {
                    return Err(reject(step, mv, "compute would exceed the red budget R"));
                }
                // computing replaces any blue pebble on the node
                board[i] = Color::Red;
                reds += 1;
                computed[i] = true;
                computes += 1;
            }
            Move::Delete(v) => {
                let i = v.index();
                if !delete_ok {
                    return Err(reject(step, mv, "nodel model forbids deletion"));
                }
                if i >= n || board[i] == Color::Empty {
                    return Err(reject(step, mv, "delete on an unpebbled node"));
                }
                if board[i] == Color::Red {
                    reds -= 1;
                }
                board[i] = Color::Empty;
            }
        }
    }

    let need_blue = instance.sink_convention() == SinkConvention::RequireBlue;
    for v in dag.sinks() {
        let satisfied = match board[v.index()] {
            Color::Blue => true,
            Color::Red => !need_blue,
            Color::Empty => false,
        };
        if !satisfied {
            return Err(CertifyError::Incomplete { sink: v });
        }
    }

    let eps = instance.model().epsilon();
    Ok(Certificate {
        transfers,
        computes,
        scaled_cost: transfers as u128 * eps.den() as u128 + computes as u128 * eps.num() as u128,
        steps: trace.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;
    use rbp_graph::DagBuilder;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// 0 -> 2, 1 -> 2
    fn join(model: CostModel, r: usize) -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        Instance::new(b.build().unwrap(), r, model)
    }

    #[test]
    fn certifies_a_valid_trace_with_exact_cost() {
        let inst = join(CostModel::oneshot(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.store(v(0));
        p.compute(v(1));
        p.load(v(0));
        p.compute(v(2));
        let cert = certify(&inst, &p).unwrap();
        assert_eq!(cert.transfers, 2);
        assert_eq!(cert.computes, 3);
        assert_eq!(cert.scaled_cost, 2, "computes free under oneshot ε = 0");
        assert_eq!(cert.steps, 5);
    }

    #[test]
    fn compcost_scaling_recomputed_independently() {
        let inst = join(CostModel::compcost(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.compute(v(1));
        p.compute(v(2));
        let cert = certify(&inst, &p).unwrap();
        // ε = 1/100: scaled = 0·100 + 3·1
        assert_eq!(cert.scaled_cost, 3);
    }

    #[test]
    fn rejects_rule_violations() {
        let inst = join(CostModel::oneshot(), 3);
        // compute the sink without red inputs
        let p = Pebbling::from_moves(vec![Move::Compute(v(2))]);
        match certify(&inst, &p).unwrap_err() {
            CertifyError::Rejected { step: 0, .. } => {}
            other => panic!("wrong rejection: {other}"),
        }
        // recompute under oneshot
        let p = Pebbling::from_moves(vec![
            Move::Compute(v(0)),
            Move::Delete(v(0)),
            Move::Compute(v(0)),
        ]);
        match certify(&inst, &p).unwrap_err() {
            CertifyError::Rejected { step: 2, .. } => {}
            other => panic!("wrong rejection: {other}"),
        }
    }

    #[test]
    fn rejects_incomplete_traces() {
        let inst = join(CostModel::base(), 3);
        let p = Pebbling::from_moves(vec![Move::Compute(v(0))]);
        assert_eq!(
            certify(&inst, &p).unwrap_err(),
            CertifyError::Incomplete { sink: v(2) }
        );
    }

    #[test]
    fn enforces_conventions() {
        let inst = join(CostModel::base(), 3)
            .with_source_convention(SourceConvention::InitiallyBlue)
            .with_sink_convention(SinkConvention::RequireBlue);
        // sources must be loaded, sink must end blue
        let mut p = Pebbling::new();
        p.load(v(0));
        p.load(v(1));
        p.compute(v(2));
        p.store(v(2));
        let cert = certify(&inst, &p).unwrap();
        assert_eq!(cert.transfers, 3);
        // computing a locked source is rejected
        let bad = Pebbling::from_moves(vec![Move::Compute(v(0))]);
        assert!(matches!(
            certify(&inst, &bad),
            Err(CertifyError::Rejected { .. })
        ));
        // red pebble on the sink does not satisfy RequireBlue
        let mut red_end = Pebbling::new();
        red_end.load(v(0));
        red_end.load(v(1));
        red_end.compute(v(2));
        assert_eq!(
            certify(&inst, &red_end).unwrap_err(),
            CertifyError::Incomplete { sink: v(2) }
        );
    }

    #[test]
    fn nodel_delete_rejected_red_budget_enforced() {
        let inst = join(CostModel::nodel(), 2);
        let p = Pebbling::from_moves(vec![Move::Compute(v(0)), Move::Delete(v(0))]);
        assert!(matches!(
            certify(&inst, &p),
            Err(CertifyError::Rejected { step: 1, .. })
        ));
        let p = Pebbling::from_moves(vec![
            Move::Compute(v(0)),
            Move::Compute(v(1)),
            Move::Compute(v(2)), // third red pebble, R = 2
        ]);
        assert!(matches!(
            certify(&inst, &p),
            Err(CertifyError::Rejected { step: 2, .. })
        ));
    }

    #[test]
    fn certificate_matches_engine_cost_type() {
        let inst = join(CostModel::base(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.compute(v(1));
        p.compute(v(2));
        let cert = certify(&inst, &p).unwrap();
        let engine_cost = crate::engine::cost_of(&inst, &p).unwrap();
        assert!(cert.matches(&engine_cost));
        assert!(!cert.matches(&Cost {
            transfers: 1,
            computes: 3
        }));
    }
}

//! The four pebbling operations (paper Section 1, Steps 1–4).

use rbp_graph::NodeId;
use std::fmt;

/// A single pebbling operation.
///
/// The paper's numbering: Step 1 = [`Move::Load`] (move to fast memory),
/// Step 2 = [`Move::Store`] (move to slow memory), Step 3 =
/// [`Move::Compute`], Step 4 = [`Move::Delete`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// Step 1: replace the blue pebble on the node by a red pebble
    /// (load from slow into fast memory). Cost 1.
    Load(NodeId),
    /// Step 2: replace the red pebble on the node by a blue pebble
    /// (save from fast into slow memory). Cost 1.
    Store(NodeId),
    /// Step 3: place a red pebble on the node, all of whose inputs must
    /// hold red pebbles. Cost 0 (ε in compcost). In the oneshot model each
    /// node admits at most one compute; in nodel this is also the
    /// recomputation move that replaces a blue pebble.
    Compute(NodeId),
    /// Step 4: remove the pebble (either colour) from the node. Cost 0;
    /// unavailable in nodel.
    Delete(NodeId),
}

impl Move {
    /// The node the operation touches.
    #[inline]
    pub fn node(self) -> NodeId {
        match self {
            Move::Load(v) | Move::Store(v) | Move::Compute(v) | Move::Delete(v) => v,
        }
    }

    /// Whether this is a transfer operation (Step 1 or 2), i.e. costs 1.
    #[inline]
    pub fn is_transfer(self) -> bool {
        matches!(self, Move::Load(_) | Move::Store(_))
    }
}

impl fmt::Debug for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Move::Load(v) => write!(f, "Load({})", v.index()),
            Move::Store(v) => write!(f, "Store({})", v.index()),
            Move::Compute(v) => write!(f, "Compute({})", v.index()),
            Move::Delete(v) => write!(f, "Delete({})", v.index()),
        }
    }
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Move::Load(v) => write!(f, "load v{}", v.index()),
            Move::Store(v) => write!(f, "store v{}", v.index()),
            Move::Compute(v) => write!(f, "compute v{}", v.index()),
            Move::Delete(v) => write!(f, "delete v{}", v.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_classification() {
        let v = NodeId::new(3);
        assert!(Move::Load(v).is_transfer());
        assert!(Move::Store(v).is_transfer());
        assert!(!Move::Compute(v).is_transfer());
        assert!(!Move::Delete(v).is_transfer());
    }

    #[test]
    fn node_accessor() {
        let v = NodeId::new(9);
        for m in [
            Move::Load(v),
            Move::Store(v),
            Move::Compute(v),
            Move::Delete(v),
        ] {
            assert_eq!(m.node(), v);
        }
    }

    #[test]
    fn display_forms() {
        let v = NodeId::new(2);
        assert_eq!(Move::Load(v).to_string(), "load v2");
        assert_eq!(format!("{:?}", Move::Store(v)), "Store(2)");
    }
}

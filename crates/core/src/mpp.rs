//! Multiprocessor red-blue pebbling (MPP) semantics.
//!
//! The multiprocessor extension (Böhnlein/Papp/Yzelman 2024) runs the
//! red-blue game on `p` processors: each processor `i` owns a *private*
//! fast memory of at most R red pebbles, while blue slow memory is
//! *shared*. Every move is executed by one processor:
//!
//! - `load(i, v)`: the shared blue pebble on `v` becomes a red pebble in
//!   processor `i`'s memory (cost: one transfer);
//! - `store(i, v)`: processor `i`'s red pebble on `v` becomes a shared
//!   blue pebble (cost: one transfer);
//! - `compute(i, v)`: processor `i` places a red pebble on `v`; **all
//!   inputs must be red in `i`'s own memory** (cost: one compute);
//! - `delete(i, v)`: removes `i`'s red pebble on `v`, or the shared
//!   blue pebble (free).
//!
//! A node still holds at most one pebble *globally*: values live in
//! exactly one place (empty, blue, or red on exactly one processor), so
//! moving a value between processors costs a store + a load — two
//! transfers through shared memory, exactly the communication the model
//! charges for. With `p = 1` every rule above degenerates to the
//! classic game, move for move and error for error; this equivalence is
//! pinned by tests here and property-tested in the verify harness.
//!
//! The scalar objective stays *additive* — `transfers·comm +
//! computes·comp` in exact [`Ratio`](crate::cost::Ratio) arithmetic via
//! [`Instance::cost_scales`] — so Dijkstra-style exact search remains
//! sound. The *makespan* (max over processors of weighted own work) is
//! not additive and is therefore reported as a statistic
//! ([`MppCostVector::time_scaled`]), never used as a search objective.

use crate::cost::Cost;
use crate::error::{PebblingError, TraceError};
use crate::instance::{Instance, SinkConvention, SourceConvention};
use crate::state::State;
use crate::trace::Pebbling;
use rbp_graph::{BitSet, NodeId};

/// A multiprocessor pebbling configuration: per-processor red sets over
/// a shared blue set.
///
/// Invariants maintained by [`MppState::apply`]:
/// - the `p + 1` sets `reds[0..p]`, `blue` are pairwise disjoint (a
///   value lives in exactly one memory);
/// - `reds[i].len() == red_counts[i] ≤ R` for every processor;
/// - every pebbled node is in `computed`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MppState {
    reds: Vec<BitSet>,
    blue: BitSet,
    computed: BitSet,
    red_counts: Vec<u32>,
}

impl MppState {
    /// The initial configuration for `instance` on `instance.procs()`
    /// processors: empty, except initially-blue sources (shared memory
    /// is shared — the convention is unchanged from the classic game).
    pub fn initial(instance: &Instance) -> Self {
        let n = instance.dag().n();
        let p = instance.procs().max(1);
        let mut s = MppState {
            reds: vec![BitSet::new(n); p],
            blue: BitSet::new(n),
            computed: BitSet::new(n),
            red_counts: vec![0; p],
        };
        if instance.source_convention() == SourceConvention::InitiallyBlue {
            for v in instance.dag().sources() {
                s.blue.insert(v.index());
                s.computed.insert(v.index());
            }
        }
        s
    }

    /// Number of processors this state is configured for.
    #[inline]
    pub fn procs(&self) -> usize {
        self.reds.len()
    }

    /// Whether `v` is red in processor `proc`'s memory.
    #[inline]
    pub fn is_red_on(&self, proc: usize, v: NodeId) -> bool {
        self.reds[proc].contains(v.index())
    }

    /// Whether `v` is red in *any* processor's memory.
    pub fn is_red_anywhere(&self, v: NodeId) -> bool {
        self.reds.iter().any(|r| r.contains(v.index()))
    }

    /// Whether `v` holds the shared blue pebble.
    #[inline]
    pub fn is_blue(&self, v: NodeId) -> bool {
        self.blue.contains(v.index())
    }

    /// Whether `v` has ever been computed.
    #[inline]
    pub fn is_computed(&self, v: NodeId) -> bool {
        self.computed.contains(v.index())
    }

    /// Red pebbles currently in processor `proc`'s memory.
    #[inline]
    pub fn red_count_of(&self, proc: usize) -> usize {
        self.red_counts[proc] as usize
    }

    /// Total red pebbles across all processors.
    pub fn total_red(&self) -> usize {
        self.red_counts.iter().map(|&c| c as usize).sum()
    }

    /// Applies one move executed by processor `proc`, returning its
    /// cost, or rejects it with the exact violation. On error the state
    /// is unchanged. The guards mirror [`State::apply`] in both
    /// condition and error priority, so a `p = 1` replay produces
    /// byte-identical verdicts.
    pub fn apply(
        &mut self,
        mv: crate::moves::Move,
        proc: u16,
        instance: &Instance,
    ) -> Result<Cost, PebblingError> {
        use crate::moves::Move;
        let p = self.procs();
        if proc as usize >= p {
            return Err(PebblingError::ProcOutOfRange {
                node: mv.node(),
                proc,
                procs: p,
            });
        }
        let i = proc as usize;
        let model = instance.model();
        let r_limit = instance.red_limit();
        match mv {
            Move::Load(v) => {
                if !self.is_blue(v) {
                    return Err(PebblingError::LoadNotBlue { node: v });
                }
                if self.red_count_of(i) + 1 > r_limit {
                    return Err(PebblingError::RedLimitExceeded {
                        node: v,
                        limit: r_limit,
                    });
                }
                self.blue.remove(v.index());
                self.reds[i].insert(v.index());
                self.red_counts[i] += 1;
                Ok(Cost::transfers(1))
            }
            Move::Store(v) => {
                if !self.is_red_on(i, v) {
                    return Err(PebblingError::StoreNotRed { node: v });
                }
                self.reds[i].remove(v.index());
                self.blue.insert(v.index());
                self.red_counts[i] -= 1;
                Ok(Cost::transfers(1))
            }
            Move::Compute(v) => {
                if self.is_red_anywhere(v) {
                    return Err(PebblingError::ComputeOnRed { node: v });
                }
                if !model.allows_recompute() && self.is_computed(v) {
                    return Err(PebblingError::RecomputeForbidden { node: v });
                }
                if instance.source_convention() == SourceConvention::InitiallyBlue
                    && instance.dag().is_source(v)
                {
                    return Err(PebblingError::SourceNotComputable { node: v });
                }
                if let Some(&missing) = instance
                    .dag()
                    .preds(v)
                    .iter()
                    .find(|&&u| !self.is_red_on(i, u))
                {
                    return Err(PebblingError::InputNotRed {
                        node: v,
                        input: missing,
                    });
                }
                if self.red_count_of(i) + 1 > r_limit {
                    return Err(PebblingError::RedLimitExceeded {
                        node: v,
                        limit: r_limit,
                    });
                }
                // computing onto a blue pebble replaces it
                self.blue.remove(v.index());
                self.reds[i].insert(v.index());
                self.red_counts[i] += 1;
                self.computed.insert(v.index());
                Ok(Cost {
                    transfers: 0,
                    computes: 1,
                })
            }
            Move::Delete(v) => {
                if !model.allows_delete() {
                    return Err(PebblingError::DeleteForbidden { node: v });
                }
                if self.reds[i].remove(v.index()) {
                    self.red_counts[i] -= 1;
                } else if !self.blue.remove(v.index()) {
                    return Err(PebblingError::DeleteEmpty { node: v });
                }
                Ok(Cost::ZERO)
            }
        }
    }

    /// Whether the finishing condition holds: every sink pebbled (red on
    /// any processor, or blue; blue only under
    /// [`SinkConvention::RequireBlue`]).
    pub fn is_complete(&self, instance: &Instance) -> bool {
        self.first_unsatisfied_sink(instance).is_none()
    }

    /// The first sink violating the finishing condition, if any.
    pub fn first_unsatisfied_sink(&self, instance: &Instance) -> Option<NodeId> {
        let need_blue = instance.sink_convention() == SinkConvention::RequireBlue;
        instance.dag().nodes().find(|&v| {
            instance.dag().is_sink(v)
                && if need_blue {
                    !self.is_blue(v)
                } else {
                    !self.is_blue(v) && !self.is_red_anywhere(v)
                }
        })
    }

    /// Projects the multiprocessor configuration onto a classic
    /// [`State`]: red = the union of the per-processor red sets.
    pub fn project(&self) -> State {
        let mut red = BitSet::new(self.blue.word_capacity());
        for r in &self.reds {
            red.union_with(r);
        }
        State::from_parts(red, self.blue.clone(), self.computed.clone())
    }
}

/// The result of a successful multiprocessor simulation.
#[derive(Clone, Debug)]
pub struct MppSimReport {
    /// Global accumulated cost: every transfer and compute, regardless
    /// of the executing processor.
    pub cost: Cost,
    /// Per-processor cost split (`per_proc.len() == instance.procs()`).
    pub per_proc: Vec<Cost>,
    /// Maximum *total* red pebbles simultaneously held across all
    /// processors.
    pub peak_red: usize,
    /// Number of moves executed.
    pub steps: usize,
    /// The projected single-board configuration after the last move
    /// (red = union of the per-processor red sets).
    pub final_state: State,
}

impl MppSimReport {
    /// The additive scalar objective under the instance's weights.
    pub fn scaled_cost(&self, instance: &Instance) -> u128 {
        instance.scaled_cost(&self.cost)
    }

    /// The makespan statistic: the maximum over processors of that
    /// processor's *own* weighted work. Not additive — reported, never
    /// optimized directly.
    pub fn time_scaled(&self, instance: &Instance) -> u128 {
        self.per_proc
            .iter()
            .map(|c| instance.scaled_cost(c))
            .max()
            .unwrap_or(0)
    }
}

/// Replays `trace` (with its processor tags) from the initial
/// multiprocessor configuration, validating every move, and requires
/// the finishing condition. Returns the exact cost vector or the first
/// violation.
pub fn simulate_mpp(instance: &Instance, trace: &Pebbling) -> Result<MppSimReport, TraceError> {
    let report = simulate_mpp_prefix(instance, trace)?;
    if let Some(sink) = report.final_state.first_unsatisfied_sink(instance) {
        return Err(TraceError {
            step: usize::MAX,
            error: PebblingError::Incomplete { sink },
        });
    }
    Ok(report)
}

/// Like [`simulate_mpp`] but without the completeness requirement.
pub fn simulate_mpp_prefix(
    instance: &Instance,
    trace: &Pebbling,
) -> Result<MppSimReport, TraceError> {
    let mut state = MppState::initial(instance);
    let mut cost = Cost::ZERO;
    let mut per_proc = vec![Cost::ZERO; state.procs()];
    let mut peak_red = state.total_red();
    for (step, &mv) in trace.moves().iter().enumerate() {
        let proc = trace.proc_of(step);
        match state.apply(mv, proc, instance) {
            Ok(delta) => {
                cost += delta;
                per_proc[proc as usize] += delta;
            }
            Err(error) => return Err(TraceError { step, error }),
        }
        peak_red = peak_red.max(state.total_red());
    }
    Ok(MppSimReport {
        cost,
        per_proc,
        peak_red,
        steps: trace.len(),
        final_state: state.project(),
    })
}

/// The full multiprocessor cost vector of a complete trace: the
/// trade-off surface coordinates (communication, computation, time) in
/// one validated report.
#[derive(Clone, Debug)]
pub struct MppCostVector {
    /// Global transfer count (the communication volume).
    pub transfers: u64,
    /// Global compute count.
    pub computes: u64,
    /// Per-processor cost split.
    pub per_proc: Vec<Cost>,
    /// The additive scalar objective `transfers·comm + computes·comp`.
    pub scaled: u128,
    /// The makespan statistic: max over processors of own weighted work.
    pub time_scaled: u128,
}

/// Validates `trace` against `instance` and assembles its
/// [`MppCostVector`].
pub fn cost_vector(instance: &Instance, trace: &Pebbling) -> Result<MppCostVector, TraceError> {
    let rep = simulate_mpp(instance, trace)?;
    Ok(MppCostVector {
        transfers: rep.cost.transfers,
        computes: rep.cost.computes,
        scaled: rep.scaled_cost(instance),
        time_scaled: rep.time_scaled(instance),
        per_proc: rep.per_proc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Ratio;
    use crate::engine;
    use crate::instance::MppDim;
    use crate::model::CostModel;
    use crate::moves::Move;
    use rbp_graph::DagBuilder;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// 0 -> 2, 1 -> 2 (two sources, one sink)
    fn join(model: CostModel, r: usize) -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        Instance::new(b.build().unwrap(), r, model)
    }

    #[test]
    fn p1_simulation_agrees_with_the_classic_engine() {
        let inst = join(CostModel::oneshot(), 3);
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.store(v(0));
        p.compute(v(1));
        p.load(v(0));
        p.compute(v(2));
        let classic = engine::simulate(&inst, &p).unwrap();
        let mpp = simulate_mpp(&inst, &p).unwrap();
        assert_eq!(mpp.cost, classic.cost);
        assert_eq!(mpp.peak_red, classic.peak_red);
        assert_eq!(mpp.final_state, classic.final_state);
        assert_eq!(mpp.per_proc, vec![classic.cost]);
        assert_eq!(mpp.scaled_cost(&inst), classic.scaled_cost(&inst));
        assert_eq!(mpp.time_scaled(&inst), classic.scaled_cost(&inst));
    }

    #[test]
    fn cross_processor_movement_goes_through_shared_memory() {
        let inst = join(CostModel::base(), 3).with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Compute(v(1)), 1);
        // v1 lives on processor 1; processor 0 needs it to compute the
        // sink — it must travel store(1) + load(0)
        t.push_on(Move::Store(v(1)), 1);
        t.push_on(Move::Load(v(1)), 0);
        t.push_on(Move::Compute(v(2)), 0);
        let rep = simulate_mpp(&inst, &t).unwrap();
        assert_eq!(rep.cost.transfers, 2);
        assert_eq!(rep.cost.computes, 3);
        assert_eq!(rep.per_proc[0].transfers, 1);
        assert_eq!(rep.per_proc[1].transfers, 1);
        assert_eq!(rep.per_proc[0].computes, 2);
        assert_eq!(rep.per_proc[1].computes, 1);
    }

    #[test]
    fn compute_needs_inputs_red_on_the_computing_processor() {
        let inst = join(CostModel::base(), 3).with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Compute(v(1)), 1);
        // v1 is red on processor 1, not 0: the compute must be rejected
        t.push_on(Move::Compute(v(2)), 0);
        let err = simulate_mpp(&inst, &t).unwrap_err();
        assert_eq!(err.step, 2);
        assert_eq!(
            err.error,
            PebblingError::InputNotRed {
                node: v(2),
                input: v(1)
            }
        );
    }

    #[test]
    fn store_requires_the_executing_processors_own_red() {
        let inst = join(CostModel::base(), 3).with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Store(v(0)), 1); // not processor 1's pebble
        let err = simulate_mpp(&inst, &t).unwrap_err();
        assert_eq!(err.step, 1);
        assert_eq!(err.error, PebblingError::StoreNotRed { node: v(0) });
    }

    #[test]
    fn red_budget_is_private_per_processor() {
        // R = 1: each processor holds one value, so p = 2 holds two
        let inst = join(CostModel::base(), 1).with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Compute(v(1)), 1);
        let rep = simulate_mpp_prefix(&inst, &t).unwrap();
        assert_eq!(rep.peak_red, 2, "two private memories of one slot each");
        // but a third value on processor 0 exceeds its own R
        let mut t2 = Pebbling::new();
        t2.push_on(Move::Compute(v(0)), 0);
        t2.push_on(Move::Compute(v(1)), 0);
        let err = simulate_mpp_prefix(&inst, &t2).unwrap_err();
        assert_eq!(
            err.error,
            PebblingError::RedLimitExceeded {
                node: v(1),
                limit: 1
            }
        );
    }

    #[test]
    fn proc_out_of_range_rejected() {
        let inst = join(CostModel::base(), 3).with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 2);
        let err = simulate_mpp_prefix(&inst, &t).unwrap_err();
        assert_eq!(
            err.error,
            PebblingError::ProcOutOfRange {
                node: v(0),
                proc: 2,
                procs: 2
            }
        );
        // and a tagged trace on a classic instance trips the same guard
        let classic = join(CostModel::base(), 3);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 1);
        let err = simulate_mpp_prefix(&classic, &t).unwrap_err();
        assert_eq!(
            err.error,
            PebblingError::ProcOutOfRange {
                node: v(0),
                proc: 1,
                procs: 1
            }
        );
    }

    #[test]
    fn single_pebble_globally_no_duplicate_computes() {
        let inst = join(CostModel::base(), 3).with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Compute(v(0)), 1); // already red on processor 0
        let err = simulate_mpp_prefix(&inst, &t).unwrap_err();
        assert_eq!(err.error, PebblingError::ComputeOnRed { node: v(0) });
    }

    #[test]
    fn oneshot_computed_set_is_global() {
        let inst = join(CostModel::oneshot(), 3).with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Delete(v(0)), 0);
        t.push_on(Move::Compute(v(0)), 1); // recompute on another proc
        let err = simulate_mpp_prefix(&inst, &t).unwrap_err();
        assert_eq!(err.error, PebblingError::RecomputeForbidden { node: v(0) });
    }

    #[test]
    fn delete_only_touches_own_red_or_shared_blue() {
        let inst = join(CostModel::base(), 3).with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Compute(v(0)), 0);
        t.push_on(Move::Delete(v(0)), 1); // red on 0, not blue: nothing to delete on 1
        let err = simulate_mpp_prefix(&inst, &t).unwrap_err();
        assert_eq!(err.error, PebblingError::DeleteEmpty { node: v(0) });
        // blue is shared: either processor may delete it
        let mut t2 = Pebbling::new();
        t2.push_on(Move::Compute(v(0)), 0);
        t2.push_on(Move::Store(v(0)), 0);
        t2.push_on(Move::Delete(v(0)), 1);
        assert!(simulate_mpp_prefix(&inst, &t2).is_ok());
    }

    #[test]
    fn makespan_drops_communication_rises_with_p() {
        // two 2-chains feeding a common sink: 0→1→4, 2→3→4. With unit
        // compute weight the serial makespan is 5; splitting the chains
        // across two processors cuts the max own work to 4 at the price
        // of shipping one value through shared memory (2 transfers).
        let mut b = DagBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(1, 4);
        b.add_edge(3, 4);
        let dag = b.build().unwrap();
        let weights = |p| MppDim {
            p,
            comm: Ratio::new(1, 1),
            comp: Ratio::new(1, 1),
        };
        let base = Instance::new(dag, 3, CostModel::base());
        let serial = base.with_mpp(weights(1));
        let mut t1 = Pebbling::new();
        t1.compute(v(0));
        t1.compute(v(1));
        t1.delete(v(0));
        t1.compute(v(2));
        t1.compute(v(3));
        t1.delete(v(2));
        t1.compute(v(4));
        let v1 = cost_vector(&serial, &t1).unwrap();
        // parallel: one chain per processor, then ship v3 to processor 0
        let par = base.with_mpp(weights(2));
        let mut t2 = Pebbling::new();
        t2.push_on(Move::Compute(v(0)), 0);
        t2.push_on(Move::Compute(v(1)), 0);
        t2.push_on(Move::Delete(v(0)), 0);
        t2.push_on(Move::Compute(v(2)), 1);
        t2.push_on(Move::Compute(v(3)), 1);
        t2.push_on(Move::Store(v(3)), 1);
        t2.push_on(Move::Load(v(3)), 0);
        t2.push_on(Move::Compute(v(4)), 0);
        let v2 = cost_vector(&par, &t2).unwrap();
        assert_eq!(v1.transfers, 0);
        assert_eq!(v2.transfers, 2, "communication rises with p");
        assert_eq!(v1.time_scaled, 5);
        assert_eq!(v2.time_scaled, 4, "makespan drops with p");
        assert!(v2.per_proc[1].transfers == 1 && v2.per_proc[1].computes == 2);
    }

    #[test]
    fn initially_blue_and_require_blue_conventions_hold() {
        let inst = join(CostModel::base(), 3)
            .with_source_convention(SourceConvention::InitiallyBlue)
            .with_sink_convention(SinkConvention::RequireBlue)
            .with_procs(2);
        let mut t = Pebbling::new();
        t.push_on(Move::Load(v(0)), 1);
        t.push_on(Move::Load(v(1)), 1);
        t.push_on(Move::Compute(v(2)), 1);
        // sink red on proc 1 does not satisfy RequireBlue
        let err = simulate_mpp(&inst, &t).unwrap_err();
        assert_eq!(err.error, PebblingError::Incomplete { sink: v(2) });
        t.push_on(Move::Store(v(2)), 1);
        let rep = simulate_mpp(&inst, &t).unwrap();
        assert_eq!(rep.cost.transfers, 3);
        // computing a locked source is still rejected, on any processor
        let mut bad = Pebbling::new();
        bad.push_on(Move::Compute(v(0)), 1);
        assert_eq!(
            simulate_mpp_prefix(&inst, &bad).unwrap_err().error,
            PebblingError::SourceNotComputable { node: v(0) }
        );
    }
}

//! Exact cost arithmetic.
//!
//! Pebbling costs mix unit-cost transfer operations with ε-cost compute
//! operations (compcost model, Section 4). Comparing costs through floats
//! would make argmins unreliable, so costs are kept as two exact integer
//! counters and weighed with rational ε at comparison time.

use std::fmt;
use std::ops::{Add, AddAssign};

/// A non-negative rational number `num/den`, kept in lowest terms.
///
/// Used for the compute cost ε (paper: ε ≈ 1/100, "cache is roughly 100
/// times faster than a bus access") and for reporting exact totals.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// Creates `num/den`, reduced. Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "ratio denominator must be nonzero");
        let g = gcd(num, den).max(1);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// The zero ratio.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };

    /// Numerator in lowest terms.
    #[inline]
    pub fn num(self) -> u64 {
        self.num
    }

    /// Denominator in lowest terms.
    #[inline]
    pub fn den(self) -> u64 {
        self.den
    }

    /// Whether this is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Exact value as `f64` (display/plot use only — never for argmins).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // cross-multiplied in u128: exact, no overflow for u64 operands
        (self.num as u128 * other.den as u128).cmp(&(other.num as u128 * self.den as u128))
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Operation counts accumulated by a pebbling: transfers (Steps 1–2) and
/// computations (Step 3). Deletions (Step 4) are free in every model, so
/// they are tracked separately in trace statistics, not here.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cost {
    /// Number of blue→red plus red→blue moves (each costs 1 in all models).
    pub transfers: u64,
    /// Number of compute operations (cost 0 except ε in compcost).
    pub computes: u64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        transfers: 0,
        computes: 0,
    };

    /// Cost of `t` transfer operations only.
    pub fn transfers(t: u64) -> Self {
        Cost {
            transfers: t,
            computes: 0,
        }
    }

    /// Weighs the counters with compute cost `eps`, producing an exact
    /// integer total in units of `1/eps.den()`:
    /// `transfers·den + computes·num`. This is the canonical comparison
    /// key — monotone in both counters and exact.
    #[inline]
    pub fn scaled(&self, eps: Ratio) -> u128 {
        self.transfers as u128 * eps.den() as u128 + self.computes as u128 * eps.num() as u128
    }

    /// Exact total as a ratio `(transfers·den + computes·num) / den`.
    pub fn total(&self, eps: Ratio) -> Ratio {
        let num = self
            .transfers
            .checked_mul(eps.den())
            .and_then(|t| t.checked_add(self.computes.checked_mul(eps.num()).expect("overflow")))
            .expect("cost overflow");
        Ratio::new(num, eps.den())
    }

    /// Total as `f64` for reporting only.
    pub fn total_f64(&self, eps: Ratio) -> f64 {
        self.transfers as f64 + self.computes as f64 * eps.to_f64()
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            transfers: self.transfers + rhs.transfers,
            computes: self.computes + rhs.computes,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.transfers += rhs.transfers;
        self.computes += rhs.computes;
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cost({}T + {}C)", self.transfers, self.computes)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.computes == 0 {
            write!(f, "{}", self.transfers)
        } else {
            write!(f, "{} + {}ε", self.transfers, self.computes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_reduces_to_lowest_terms() {
        let r = Ratio::new(2, 200);
        assert_eq!(r.num(), 1);
        assert_eq!(r.den(), 100);
        assert_eq!(r, Ratio::new(1, 100));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn ratio_ordering_is_exact() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(2, 4) == Ratio::new(1, 2));
        assert!(Ratio::new(99, 100) < Ratio::new(1, 1));
        // values that would collide in f32 precision
        assert!(Ratio::new(10_000_001, 10_000_000) > Ratio::new(1, 1));
    }

    #[test]
    fn scaled_total_weighs_epsilon() {
        let eps = Ratio::new(1, 100);
        let c = Cost {
            transfers: 3,
            computes: 50,
        };
        // 3 + 50/100 = 3.5 → scaled by 100 = 350
        assert_eq!(c.scaled(eps), 350);
        assert_eq!(c.total(eps), Ratio::new(7, 2));
        assert!((c.total_f64(eps) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn zero_eps_ignores_computes() {
        let c = Cost {
            transfers: 5,
            computes: 1_000_000,
        };
        assert_eq!(c.scaled(Ratio::ZERO), 5);
        assert_eq!(c.total(Ratio::ZERO), Ratio::new(5, 1));
    }

    #[test]
    fn cost_addition() {
        let a = Cost {
            transfers: 2,
            computes: 3,
        };
        let b = Cost {
            transfers: 1,
            computes: 0,
        };
        let mut s = a;
        s += b;
        assert_eq!(s, a + b);
        assert_eq!(s.transfers, 3);
        assert_eq!(s.computes, 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cost::transfers(7).to_string(), "7");
        let c = Cost {
            transfers: 2,
            computes: 4,
        };
        assert_eq!(c.to_string(), "2 + 4ε");
        assert_eq!(Ratio::new(3, 1).to_string(), "3");
        assert_eq!(Ratio::new(1, 100).to_string(), "1/100");
    }

    #[test]
    fn scaled_ordering_matches_rational_ordering() {
        let eps = Ratio::new(1, 100);
        // 1 transfer (1.0) vs 99 computes (0.99)
        let a = Cost {
            transfers: 1,
            computes: 0,
        };
        let b = Cost {
            transfers: 0,
            computes: 99,
        };
        assert!(b.scaled(eps) < a.scaled(eps));
        // 100 computes == 1 transfer exactly
        let c = Cost {
            transfers: 0,
            computes: 100,
        };
        assert_eq!(c.scaled(eps), a.scaled(eps));
    }
}

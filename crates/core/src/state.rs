//! The pebbling configuration and single-step transition function.

use crate::cost::Cost;
use crate::error::PebblingError;
use crate::instance::{Instance, SinkConvention, SourceConvention};
use crate::moves::Move;
use rbp_graph::{BitSet, NodeId};

/// A pebbling configuration: which nodes hold red pebbles, which hold blue
/// pebbles, and which have ever been computed.
///
/// Invariants maintained by [`State::apply`]:
/// - `red` and `blue` are disjoint (a node holds at most one pebble);
/// - `red.len() == red_count <= R`;
/// - every pebbled node is in `computed` (pebbles originate from
///   computation, or from the initially-blue source convention).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct State {
    red: BitSet,
    blue: BitSet,
    computed: BitSet,
    red_count: u32,
}

impl State {
    /// The initial configuration for `instance`: empty board, except under
    /// [`SourceConvention::InitiallyBlue`] where every source starts with a
    /// blue pebble (and counts as computed).
    pub fn initial(instance: &Instance) -> Self {
        let n = instance.dag().n();
        let mut s = State {
            red: BitSet::new(n),
            blue: BitSet::new(n),
            computed: BitSet::new(n),
            red_count: 0,
        };
        if instance.source_convention() == SourceConvention::InitiallyBlue {
            for v in instance.dag().sources() {
                s.blue.insert(v.index());
                s.computed.insert(v.index());
            }
        }
        s
    }

    /// Assembles a state from raw pebble sets — the projection path the
    /// multiprocessor simulator uses to report a final [`State`] whose
    /// red set is the union of the per-processor red sets.
    pub(crate) fn from_parts(red: BitSet, blue: BitSet, computed: BitSet) -> Self {
        let red_count = red.len() as u32;
        State {
            red,
            blue,
            computed,
            red_count,
        }
    }

    /// Whether `v` holds a red pebble.
    #[inline]
    pub fn is_red(&self, v: NodeId) -> bool {
        self.red.contains(v.index())
    }

    /// Whether `v` holds a blue pebble.
    #[inline]
    pub fn is_blue(&self, v: NodeId) -> bool {
        self.blue.contains(v.index())
    }

    /// Whether `v` holds any pebble.
    #[inline]
    pub fn is_pebbled(&self, v: NodeId) -> bool {
        self.is_red(v) || self.is_blue(v)
    }

    /// Whether `v` has ever been computed.
    #[inline]
    pub fn is_computed(&self, v: NodeId) -> bool {
        self.computed.contains(v.index())
    }

    /// Number of red pebbles currently on the board.
    #[inline]
    pub fn red_count(&self) -> usize {
        self.red_count as usize
    }

    /// The red-pebbled nodes.
    #[inline]
    pub fn red_set(&self) -> &BitSet {
        &self.red
    }

    /// The blue-pebbled nodes.
    #[inline]
    pub fn blue_set(&self) -> &BitSet {
        &self.blue
    }

    /// The computed nodes.
    #[inline]
    pub fn computed_set(&self) -> &BitSet {
        &self.computed
    }

    /// Applies one move, returning its cost, or rejects it with the exact
    /// violation. On error the state is unchanged.
    pub fn apply(&mut self, mv: Move, instance: &Instance) -> Result<Cost, PebblingError> {
        let model = instance.model();
        let r_limit = instance.red_limit();
        match mv {
            Move::Load(v) => {
                if !self.is_blue(v) {
                    return Err(PebblingError::LoadNotBlue { node: v });
                }
                if self.red_count as usize + 1 > r_limit {
                    return Err(PebblingError::RedLimitExceeded {
                        node: v,
                        limit: r_limit,
                    });
                }
                self.blue.remove(v.index());
                self.red.insert(v.index());
                self.red_count += 1;
                Ok(Cost::transfers(1))
            }
            Move::Store(v) => {
                if !self.is_red(v) {
                    return Err(PebblingError::StoreNotRed { node: v });
                }
                self.red.remove(v.index());
                self.blue.insert(v.index());
                self.red_count -= 1;
                Ok(Cost::transfers(1))
            }
            Move::Compute(v) => {
                if self.is_red(v) {
                    return Err(PebblingError::ComputeOnRed { node: v });
                }
                if !model.allows_recompute() && self.is_computed(v) {
                    return Err(PebblingError::RecomputeForbidden { node: v });
                }
                if instance.source_convention() == SourceConvention::InitiallyBlue
                    && instance.dag().is_source(v)
                {
                    return Err(PebblingError::SourceNotComputable { node: v });
                }
                if let Some(&missing) = instance.dag().preds(v).iter().find(|&&u| !self.is_red(u)) {
                    return Err(PebblingError::InputNotRed {
                        node: v,
                        input: missing,
                    });
                }
                if self.red_count as usize + 1 > r_limit {
                    return Err(PebblingError::RedLimitExceeded {
                        node: v,
                        limit: r_limit,
                    });
                }
                // computing onto a blue pebble replaces it (the nodel
                // recomputation mechanism; legal in all models)
                self.blue.remove(v.index());
                self.red.insert(v.index());
                self.red_count += 1;
                self.computed.insert(v.index());
                Ok(Cost {
                    transfers: 0,
                    computes: 1,
                })
            }
            Move::Delete(v) => {
                if !model.allows_delete() {
                    return Err(PebblingError::DeleteForbidden { node: v });
                }
                if self.red.remove(v.index()) {
                    self.red_count -= 1;
                } else if !self.blue.remove(v.index()) {
                    return Err(PebblingError::DeleteEmpty { node: v });
                }
                Ok(Cost::ZERO)
            }
        }
    }

    /// Whether move `mv` *would* be accepted, without applying it.
    ///
    /// Mirrors [`State::apply`]'s guards exactly but touches no state and
    /// allocates nothing, so callers may probe every candidate move per
    /// step (greedy selection, move enumeration) for free. The agreement
    /// `is_legal(mv) == apply(mv).is_ok()` is property-tested across
    /// random states and all four models.
    pub fn is_legal(&self, mv: Move, instance: &Instance) -> bool {
        let model = instance.model();
        let r_limit = instance.red_limit();
        match mv {
            Move::Load(v) => self.is_blue(v) && self.red_count() < r_limit,
            Move::Store(v) => self.is_red(v),
            Move::Compute(v) => {
                let blue_locked_source = instance.source_convention()
                    == SourceConvention::InitiallyBlue
                    && instance.dag().is_source(v);
                !self.is_red(v)
                    && (model.allows_recompute() || !self.is_computed(v))
                    && !blue_locked_source
                    && instance.dag().preds(v).iter().all(|&u| self.is_red(u))
                    && self.red_count() < r_limit
            }
            Move::Delete(v) => model.allows_delete() && self.is_pebbled(v),
        }
    }

    /// Whether the finishing condition holds (every sink pebbled, with the
    /// colour the instance's sink convention demands).
    pub fn is_complete(&self, instance: &Instance) -> bool {
        self.first_unsatisfied_sink(instance).is_none()
    }

    /// The first sink violating the finishing condition, if any.
    pub fn first_unsatisfied_sink(&self, instance: &Instance) -> Option<NodeId> {
        let need_blue = instance.sink_convention() == SinkConvention::RequireBlue;
        instance.dag().nodes().find(|&v| {
            instance.dag().is_sink(v)
                && if need_blue {
                    !self.is_blue(v)
                } else {
                    !self.is_pebbled(v)
                }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;
    use rbp_graph::DagBuilder;

    fn edge_instance(model: CostModel, r: usize) -> Instance {
        // 0 -> 1
        let mut b = DagBuilder::new(2);
        b.add_edge(0, 1);
        Instance::new(b.build().unwrap(), r, model)
    }

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn compute_source_then_target() {
        let inst = edge_instance(CostModel::base(), 2);
        let mut s = State::initial(&inst);
        assert_eq!(s.apply(Move::Compute(v(0)), &inst).unwrap().computes, 1);
        assert!(s.is_red(v(0)));
        s.apply(Move::Compute(v(1)), &inst).unwrap();
        assert!(s.is_complete(&inst));
        assert_eq!(s.red_count(), 2);
    }

    #[test]
    fn compute_without_red_input_rejected() {
        let inst = edge_instance(CostModel::base(), 2);
        let mut s = State::initial(&inst);
        assert_eq!(
            s.apply(Move::Compute(v(1)), &inst).unwrap_err(),
            PebblingError::InputNotRed {
                node: v(1),
                input: v(0)
            }
        );
    }

    #[test]
    fn red_limit_enforced_on_compute_and_load() {
        let inst = edge_instance(CostModel::base(), 1);
        let mut s = State::initial(&inst);
        s.apply(Move::Compute(v(0)), &inst).unwrap();
        // second red pebble would exceed R = 1
        assert_eq!(
            s.apply(Move::Compute(v(1)), &inst).unwrap_err(),
            PebblingError::RedLimitExceeded {
                node: v(1),
                limit: 1
            }
        );
        s.apply(Move::Store(v(0)), &inst).unwrap();
        // loading it back is fine now
        s.apply(Move::Load(v(0)), &inst).unwrap();
        assert_eq!(s.red_count(), 1);
    }

    #[test]
    fn store_then_load_roundtrip_costs_two_transfers() {
        let inst = edge_instance(CostModel::base(), 2);
        let mut s = State::initial(&inst);
        s.apply(Move::Compute(v(0)), &inst).unwrap();
        let c1 = s.apply(Move::Store(v(0)), &inst).unwrap();
        assert!(s.is_blue(v(0)) && !s.is_red(v(0)));
        let c2 = s.apply(Move::Load(v(0)), &inst).unwrap();
        assert!(s.is_red(v(0)) && !s.is_blue(v(0)));
        assert_eq!((c1 + c2).transfers, 2);
    }

    #[test]
    fn oneshot_forbids_recompute() {
        let inst = edge_instance(CostModel::oneshot(), 2);
        let mut s = State::initial(&inst);
        s.apply(Move::Compute(v(0)), &inst).unwrap();
        s.apply(Move::Delete(v(0)), &inst).unwrap();
        assert_eq!(
            s.apply(Move::Compute(v(0)), &inst).unwrap_err(),
            PebblingError::RecomputeForbidden { node: v(0) }
        );
    }

    #[test]
    fn base_allows_recompute() {
        let inst = edge_instance(CostModel::base(), 2);
        let mut s = State::initial(&inst);
        s.apply(Move::Compute(v(0)), &inst).unwrap();
        s.apply(Move::Delete(v(0)), &inst).unwrap();
        assert!(s.apply(Move::Compute(v(0)), &inst).is_ok());
    }

    #[test]
    fn nodel_forbids_delete_but_allows_recompute_onto_blue() {
        let inst = edge_instance(CostModel::nodel(), 2);
        let mut s = State::initial(&inst);
        s.apply(Move::Compute(v(0)), &inst).unwrap();
        assert_eq!(
            s.apply(Move::Delete(v(0)), &inst).unwrap_err(),
            PebblingError::DeleteForbidden { node: v(0) }
        );
        s.apply(Move::Store(v(0)), &inst).unwrap();
        // recomputation replaces the blue pebble (Section 4)
        s.apply(Move::Compute(v(0)), &inst).unwrap();
        assert!(s.is_red(v(0)));
        assert!(!s.is_blue(v(0)));
    }

    #[test]
    fn compute_on_red_rejected() {
        let inst = edge_instance(CostModel::base(), 2);
        let mut s = State::initial(&inst);
        s.apply(Move::Compute(v(0)), &inst).unwrap();
        assert_eq!(
            s.apply(Move::Compute(v(0)), &inst).unwrap_err(),
            PebblingError::ComputeOnRed { node: v(0) }
        );
    }

    #[test]
    fn delete_empty_rejected() {
        let inst = edge_instance(CostModel::base(), 2);
        let mut s = State::initial(&inst);
        assert_eq!(
            s.apply(Move::Delete(v(0)), &inst).unwrap_err(),
            PebblingError::DeleteEmpty { node: v(0) }
        );
    }

    #[test]
    fn load_requires_blue_store_requires_red() {
        let inst = edge_instance(CostModel::base(), 2);
        let mut s = State::initial(&inst);
        assert_eq!(
            s.apply(Move::Load(v(0)), &inst).unwrap_err(),
            PebblingError::LoadNotBlue { node: v(0) }
        );
        assert_eq!(
            s.apply(Move::Store(v(0)), &inst).unwrap_err(),
            PebblingError::StoreNotRed { node: v(0) }
        );
    }

    #[test]
    fn initially_blue_sources_start_blue_and_are_not_computable() {
        let inst = edge_instance(CostModel::base(), 2)
            .with_source_convention(SourceConvention::InitiallyBlue);
        let mut s = State::initial(&inst);
        assert!(s.is_blue(v(0)));
        assert!(s.is_computed(v(0)));
        assert_eq!(
            s.apply(Move::Compute(v(0)), &inst).unwrap_err(),
            PebblingError::SourceNotComputable { node: v(0) }
        );
        // the blue pebble must be loaded instead
        s.apply(Move::Load(v(0)), &inst).unwrap();
        s.apply(Move::Compute(v(1)), &inst).unwrap();
        assert!(s.is_complete(&inst));
    }

    #[test]
    fn require_blue_sink_convention() {
        let inst =
            edge_instance(CostModel::base(), 2).with_sink_convention(SinkConvention::RequireBlue);
        let mut s = State::initial(&inst);
        s.apply(Move::Compute(v(0)), &inst).unwrap();
        s.apply(Move::Compute(v(1)), &inst).unwrap();
        assert!(!s.is_complete(&inst), "red pebble on sink not enough");
        assert_eq!(s.first_unsatisfied_sink(&inst), Some(v(1)));
        s.apply(Move::Store(v(1)), &inst).unwrap();
        assert!(s.is_complete(&inst));
    }

    #[test]
    fn failed_apply_leaves_state_unchanged() {
        let inst = edge_instance(CostModel::oneshot(), 2);
        let mut s = State::initial(&inst);
        s.apply(Move::Compute(v(0)), &inst).unwrap();
        let before = s.clone();
        let _ = s.apply(Move::Compute(v(1)), &inst); // fine
        let snapshot = s.clone();
        assert!(s.apply(Move::Compute(v(0)), &inst).is_err());
        assert_eq!(s, snapshot);
        drop(before);
    }

    #[test]
    fn is_legal_matches_apply() {
        let inst = edge_instance(CostModel::oneshot(), 1);
        let s = State::initial(&inst);
        assert!(s.is_legal(Move::Compute(v(0)), &inst));
        assert!(!s.is_legal(Move::Compute(v(1)), &inst));
        assert!(!s.is_legal(Move::Delete(v(0)), &inst));
    }
}

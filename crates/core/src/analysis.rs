//! Trace analytics: where a pebbling spends its transfers.
//!
//! Solvers tell you *how much* a schedule costs; these utilities tell you
//! *why* — which values thrash between the memory levels, how the red
//! working set evolves, and how the operation mix breaks down. Used by
//! the examples and experiments for diagnosis.

use crate::instance::Instance;
use crate::moves::Move;
use crate::state::State;
use crate::trace::Pebbling;
use rbp_graph::NodeId;

/// Per-node traffic accumulated by a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Times the value was loaded from slow memory.
    pub loads: u32,
    /// Times the value was stored to slow memory.
    pub stores: u32,
    /// Times the value was computed (1 except in recomputation models).
    pub computes: u32,
}

impl NodeTraffic {
    /// Total paid transfers for this value.
    pub fn transfers(&self) -> u32 {
        self.loads + self.stores
    }
}

/// The full analysis of a validated trace.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Per-node traffic, indexed by node id.
    pub traffic: Vec<NodeTraffic>,
    /// Red-pebble count after every move (the working-set curve).
    pub red_curve: Vec<usize>,
    /// Largest simultaneous red-pebble count.
    pub peak_red: usize,
    /// Number of moves.
    pub len: usize,
}

impl TraceAnalysis {
    /// The `k` nodes with the highest transfer traffic, descending
    /// (ties toward lower ids).
    pub fn hottest(&self, k: usize) -> Vec<(NodeId, u32)> {
        let mut v: Vec<(NodeId, u32)> = self
            .traffic
            .iter()
            .enumerate()
            .map(|(i, t)| (NodeId::new(i), t.transfers()))
            .collect();
        v.sort_by_key(|&(id, t)| (std::cmp::Reverse(t), id));
        v.truncate(k);
        v
    }

    /// Mean red-pebble occupancy over the trace (0 for empty traces).
    pub fn mean_red(&self) -> f64 {
        if self.red_curve.is_empty() {
            return 0.0;
        }
        self.red_curve.iter().sum::<usize>() as f64 / self.red_curve.len() as f64
    }

    /// Number of values that round-tripped through slow memory at least
    /// once (loads ≥ 1).
    pub fn thrashed_values(&self) -> usize {
        self.traffic.iter().filter(|t| t.loads > 0).count()
    }
}

/// Replays a trace (which must be valid for `instance`) and gathers the
/// analysis. Panics on invalid traces — validate with
/// [`crate::engine::simulate`] first if unsure.
pub fn analyze(instance: &Instance, trace: &Pebbling) -> TraceAnalysis {
    let n = instance.dag().n();
    let mut traffic = vec![NodeTraffic::default(); n];
    let mut state = State::initial(instance);
    let mut red_curve = Vec::with_capacity(trace.len());
    let mut peak = state.red_count();
    for &mv in trace.moves() {
        state
            .apply(mv, instance)
            .expect("analyze requires a valid trace");
        match mv {
            Move::Load(v) => traffic[v.index()].loads += 1,
            Move::Store(v) => traffic[v.index()].stores += 1,
            Move::Compute(v) => traffic[v.index()].computes += 1,
            Move::Delete(_) => {}
        }
        red_curve.push(state.red_count());
        peak = peak.max(state.red_count());
    }
    TraceAnalysis {
        traffic,
        red_curve,
        peak_red: peak,
        len: trace.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;
    use rbp_graph::{generate, DagBuilder};

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn traffic_counts_per_node() {
        let mut b = DagBuilder::new(2);
        b.add_edge(0, 1);
        let inst = Instance::new(b.build().unwrap(), 2, CostModel::base());
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.store(v(0));
        p.load(v(0));
        p.compute(v(1));
        let a = analyze(&inst, &p);
        assert_eq!(
            a.traffic[0],
            NodeTraffic {
                loads: 1,
                stores: 1,
                computes: 1
            }
        );
        assert_eq!(a.traffic[1].computes, 1);
        assert_eq!(a.traffic[0].transfers(), 2);
        assert_eq!(a.thrashed_values(), 1);
    }

    #[test]
    fn red_curve_tracks_occupancy() {
        let inst = Instance::new(generate::chain(3), 2, CostModel::base());
        let mut p = Pebbling::new();
        p.compute(v(0)); // 1 red
        p.compute(v(1)); // 2
        p.delete(v(0)); // 1
        p.compute(v(2)); // 2
        let a = analyze(&inst, &p);
        assert_eq!(a.red_curve, vec![1, 2, 1, 2]);
        assert_eq!(a.peak_red, 2);
        assert!((a.mean_red() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn hottest_ranks_by_transfers() {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::base());
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.store(v(0));
        p.load(v(0));
        p.store(v(0));
        p.load(v(0));
        p.compute(v(1));
        p.compute(v(2));
        let a = analyze(&inst, &p);
        let hot = a.hottest(2);
        assert_eq!(hot[0], (v(0), 4));
        assert_eq!(hot[1].1, 0);
    }

    #[test]
    #[should_panic(expected = "valid trace")]
    fn invalid_trace_panics() {
        let inst = Instance::new(generate::chain(2), 2, CostModel::oneshot());
        let mut p = Pebbling::new();
        p.load(v(0)); // nothing blue yet
        let _ = analyze(&inst, &p);
    }

    #[test]
    fn empty_trace_analysis() {
        let inst = Instance::new(generate::chain(2), 2, CostModel::base());
        let a = analyze(&inst, &Pebbling::new());
        assert_eq!(a.peak_red, 0);
        assert_eq!(a.mean_red(), 0.0);
        assert_eq!(a.thrashed_values(), 0);
    }
}

//! Pebbling traces: a recorded sequence of moves with statistics.

use crate::moves::Move;
use rbp_graph::NodeId;
use std::fmt;

/// A sequence of pebbling moves — the object whose cost the game measures.
///
/// Traces are *not* validated on construction; run them through
/// [`crate::engine::simulate`] to check legality against an instance and
/// obtain the exact cost.
///
/// # Processor tags
///
/// For the multiprocessor game each move carries the processor that
/// executes it. The tags are stored lazily: a trace built through the
/// classic single-processor API has an empty tag vector, which means
/// *all moves run on processor 0*. [`Pebbling::push_on`] materializes
/// the vector on first use, so classic code paths pay nothing.
#[derive(Clone, Eq, Default)]
pub struct Pebbling {
    moves: Vec<Move>,
    /// Per-move processor tags; empty ≡ every move on processor 0.
    /// Invariant: either empty or exactly `moves.len()` long.
    procs: Vec<u16>,
}

impl Pebbling {
    /// An empty trace.
    pub fn new() -> Self {
        Pebbling::default()
    }

    /// An empty trace with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Pebbling {
            moves: Vec::with_capacity(cap),
            procs: Vec::new(),
        }
    }

    /// Wraps an existing move sequence (all on processor 0).
    pub fn from_moves(moves: Vec<Move>) -> Self {
        Pebbling {
            moves,
            procs: Vec::new(),
        }
    }

    /// Appends a move (on processor 0).
    #[inline]
    pub fn push(&mut self, mv: Move) {
        self.moves.push(mv);
        if !self.procs.is_empty() {
            self.procs.push(0);
        }
    }

    /// Appends a move executed by processor `proc`. Backfills the lazy
    /// tag vector with zeros the first time a nonzero tag appears.
    pub fn push_on(&mut self, mv: Move, proc: u16) {
        if proc != 0 && self.procs.is_empty() {
            self.procs = vec![0; self.moves.len()];
        }
        self.moves.push(mv);
        if !self.procs.is_empty() || proc != 0 {
            self.procs.push(proc);
        }
    }

    /// The processor executing move `i` (0 for untagged traces).
    #[inline]
    pub fn proc_of(&self, i: usize) -> u16 {
        self.procs.get(i).copied().unwrap_or(0)
    }

    /// Whether any move carries a nonzero processor tag. `false` means
    /// the trace is a valid classic single-processor pebbling.
    pub fn has_proc_tags(&self) -> bool {
        self.procs.iter().any(|&p| p != 0)
    }

    /// Convenience: appends `Load(v)`.
    pub fn load(&mut self, v: NodeId) {
        self.push(Move::Load(v));
    }

    /// Convenience: appends `Store(v)`.
    pub fn store(&mut self, v: NodeId) {
        self.push(Move::Store(v));
    }

    /// Convenience: appends `Compute(v)`.
    pub fn compute(&mut self, v: NodeId) {
        self.push(Move::Compute(v));
    }

    /// Convenience: appends `Delete(v)`.
    pub fn delete(&mut self, v: NodeId) {
        self.push(Move::Delete(v));
    }

    /// Appends all moves of `other`, preserving its processor tags.
    pub fn extend(&mut self, other: &Pebbling) {
        if self.procs.is_empty() && other.has_proc_tags() {
            self.procs = vec![0; self.moves.len()];
        }
        self.moves.extend_from_slice(&other.moves);
        if !self.procs.is_empty() {
            self.procs
                .extend((0..other.moves.len()).map(|i| other.proc_of(i)));
        }
    }

    /// The moves in order.
    #[inline]
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// Number of moves (the pebbling's *length*, bounded by O(Δ·n) for
    /// optimal pebblings in oneshot/nodel/compcost — Lemma 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Per-operation counts.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for m in &self.moves {
            match m {
                Move::Load(_) => s.loads += 1,
                Move::Store(_) => s.stores += 1,
                Move::Compute(_) => s.computes += 1,
                Move::Delete(_) => s.deletes += 1,
            }
        }
        s
    }

    /// The order in which nodes receive their *first* computation — the
    /// visit order that characterizes oneshot strategies (Section 8).
    pub fn first_computations(&self) -> Vec<NodeId> {
        let mut seen = std::collections::HashSet::new();
        let mut order = Vec::new();
        for m in &self.moves {
            if let Move::Compute(v) = m {
                if seen.insert(*v) {
                    order.push(*v);
                }
            }
        }
        order
    }
}

impl PartialEq for Pebbling {
    /// Semantic equality: same moves on the same processors. An empty
    /// tag vector and an explicit all-zeros vector compare equal — both
    /// mean "everything on processor 0".
    fn eq(&self, other: &Self) -> bool {
        self.moves == other.moves
            && (0..self.moves.len()).all(|i| self.proc_of(i) == other.proc_of(i))
    }
}

impl fmt::Debug for Pebbling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "Pebbling(len={}, loads={}, stores={}, computes={}, deletes={})",
            self.len(),
            s.loads,
            s.stores,
            s.computes,
            s.deletes
        )
    }
}

impl fmt::Display for Pebbling {
    /// Full move listing, one per line — for debugging small traces.
    /// Multiprocessor traces append the executing processor.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tagged = self.has_proc_tags();
        for (i, m) in self.moves.iter().enumerate() {
            if tagged {
                writeln!(f, "{i:>4}: {m} p{}", self.proc_of(i))?;
            } else {
                writeln!(f, "{i:>4}: {m}")?;
            }
        }
        Ok(())
    }
}

impl FromIterator<Move> for Pebbling {
    fn from_iter<T: IntoIterator<Item = Move>>(iter: T) -> Self {
        Pebbling {
            moves: iter.into_iter().collect(),
            procs: Vec::new(),
        }
    }
}

/// Operation counts of a trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TraceStats {
    /// Step-1 count (blue→red).
    pub loads: u64,
    /// Step-2 count (red→blue).
    pub stores: u64,
    /// Step-3 count.
    pub computes: u64,
    /// Step-4 count.
    pub deletes: u64,
}

impl TraceStats {
    /// Total transfers (the cost in all models up to the compute term).
    pub fn transfers(&self) -> u64 {
        self.loads + self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn stats_count_each_kind() {
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.store(v(0));
        p.load(v(0));
        p.compute(v(1));
        p.delete(v(0));
        let s = p.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.computes, 2);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.transfers(), 2);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn first_computations_dedupes() {
        let mut p = Pebbling::new();
        p.compute(v(2));
        p.compute(v(0));
        p.delete(v(2));
        p.compute(v(2)); // recompute: not a first computation
        assert_eq!(p.first_computations(), vec![v(2), v(0)]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Pebbling::from_moves(vec![Move::Compute(v(0))]);
        let b = Pebbling::from_moves(vec![Move::Store(v(0))]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.moves()[1], Move::Store(v(0)));
    }

    #[test]
    fn display_lists_moves() {
        let p = Pebbling::from_moves(vec![Move::Compute(v(0)), Move::Store(v(0))]);
        let text = p.to_string();
        assert!(text.contains("0: compute v0"));
        assert!(text.contains("1: store v0"));
    }

    #[test]
    fn from_iterator_collects() {
        let p: Pebbling = vec![Move::Compute(v(1))].into_iter().collect();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn proc_tags_are_lazy_and_backfilled() {
        let mut p = Pebbling::new();
        p.compute(v(0));
        assert!(!p.has_proc_tags());
        assert_eq!(p.proc_of(0), 0);
        p.push_on(Move::Compute(v(1)), 2);
        assert!(p.has_proc_tags());
        assert_eq!(p.proc_of(0), 0, "earlier moves backfill to processor 0");
        assert_eq!(p.proc_of(1), 2);
        // classic pushes after materialization keep the invariant
        p.store(v(1));
        assert_eq!(p.proc_of(2), 0);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn equality_ignores_tag_representation() {
        let mut a = Pebbling::new();
        a.compute(v(0));
        let mut b = Pebbling::new();
        b.push_on(Move::Compute(v(0)), 1); // materializes the vector...
        let mut c = Pebbling::new();
        c.push_on(Move::Compute(v(0)), 0); // ...this one stays lazy
        assert_ne!(a, b, "different processors are different traces");
        assert_eq!(a, c, "explicit p0 equals lazy p0");
        // explicit all-zeros vector (via backfill then rebuild) == lazy
        let mut d = Pebbling::new();
        d.push_on(Move::Compute(v(0)), 3);
        let e = Pebbling::from_moves(d.moves().to_vec());
        let mut f = Pebbling::new();
        f.compute(v(0));
        assert_eq!(e, f);
    }

    #[test]
    fn extend_carries_proc_tags_both_ways() {
        // untagged target absorbing a tagged source
        let mut a = Pebbling::from_moves(vec![Move::Compute(v(0))]);
        let mut tagged = Pebbling::new();
        tagged.push_on(Move::Load(v(0)), 1);
        a.extend(&tagged);
        assert_eq!(a.proc_of(0), 0);
        assert_eq!(a.proc_of(1), 1);
        // tagged target absorbing an untagged source
        let mut b = Pebbling::new();
        b.push_on(Move::Compute(v(0)), 2);
        b.extend(&Pebbling::from_moves(vec![Move::Store(v(0))]));
        assert_eq!(b.proc_of(0), 2);
        assert_eq!(b.proc_of(1), 0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn display_annotates_processors_only_when_tagged() {
        let mut p = Pebbling::new();
        p.push_on(Move::Compute(v(0)), 0);
        assert!(!p.to_string().contains(" p0"));
        let mut q = Pebbling::new();
        q.compute(v(0));
        q.push_on(Move::Load(v(1)), 3);
        let text = q.to_string();
        assert!(text.contains("compute v0 p0"));
        assert!(text.contains("load v1 p3"));
    }
}

//! Pebbling traces: a recorded sequence of moves with statistics.

use crate::moves::Move;
use rbp_graph::NodeId;
use std::fmt;

/// A sequence of pebbling moves — the object whose cost the game measures.
///
/// Traces are *not* validated on construction; run them through
/// [`crate::engine::simulate`] to check legality against an instance and
/// obtain the exact cost.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Pebbling {
    moves: Vec<Move>,
}

impl Pebbling {
    /// An empty trace.
    pub fn new() -> Self {
        Pebbling { moves: Vec::new() }
    }

    /// An empty trace with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Pebbling {
            moves: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing move sequence.
    pub fn from_moves(moves: Vec<Move>) -> Self {
        Pebbling { moves }
    }

    /// Appends a move.
    #[inline]
    pub fn push(&mut self, mv: Move) {
        self.moves.push(mv);
    }

    /// Convenience: appends `Load(v)`.
    pub fn load(&mut self, v: NodeId) {
        self.push(Move::Load(v));
    }

    /// Convenience: appends `Store(v)`.
    pub fn store(&mut self, v: NodeId) {
        self.push(Move::Store(v));
    }

    /// Convenience: appends `Compute(v)`.
    pub fn compute(&mut self, v: NodeId) {
        self.push(Move::Compute(v));
    }

    /// Convenience: appends `Delete(v)`.
    pub fn delete(&mut self, v: NodeId) {
        self.push(Move::Delete(v));
    }

    /// Appends all moves of `other`.
    pub fn extend(&mut self, other: &Pebbling) {
        self.moves.extend_from_slice(&other.moves);
    }

    /// The moves in order.
    #[inline]
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// Number of moves (the pebbling's *length*, bounded by O(Δ·n) for
    /// optimal pebblings in oneshot/nodel/compcost — Lemma 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Per-operation counts.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for m in &self.moves {
            match m {
                Move::Load(_) => s.loads += 1,
                Move::Store(_) => s.stores += 1,
                Move::Compute(_) => s.computes += 1,
                Move::Delete(_) => s.deletes += 1,
            }
        }
        s
    }

    /// The order in which nodes receive their *first* computation — the
    /// visit order that characterizes oneshot strategies (Section 8).
    pub fn first_computations(&self) -> Vec<NodeId> {
        let mut seen = std::collections::HashSet::new();
        let mut order = Vec::new();
        for m in &self.moves {
            if let Move::Compute(v) = m {
                if seen.insert(*v) {
                    order.push(*v);
                }
            }
        }
        order
    }
}

impl fmt::Debug for Pebbling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "Pebbling(len={}, loads={}, stores={}, computes={}, deletes={})",
            self.len(),
            s.loads,
            s.stores,
            s.computes,
            s.deletes
        )
    }
}

impl fmt::Display for Pebbling {
    /// Full move listing, one per line — for debugging small traces.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.moves.iter().enumerate() {
            writeln!(f, "{i:>4}: {m}")?;
        }
        Ok(())
    }
}

impl FromIterator<Move> for Pebbling {
    fn from_iter<T: IntoIterator<Item = Move>>(iter: T) -> Self {
        Pebbling {
            moves: iter.into_iter().collect(),
        }
    }
}

/// Operation counts of a trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TraceStats {
    /// Step-1 count (blue→red).
    pub loads: u64,
    /// Step-2 count (red→blue).
    pub stores: u64,
    /// Step-3 count.
    pub computes: u64,
    /// Step-4 count.
    pub deletes: u64,
}

impl TraceStats {
    /// Total transfers (the cost in all models up to the compute term).
    pub fn transfers(&self) -> u64 {
        self.loads + self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn stats_count_each_kind() {
        let mut p = Pebbling::new();
        p.compute(v(0));
        p.store(v(0));
        p.load(v(0));
        p.compute(v(1));
        p.delete(v(0));
        let s = p.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.computes, 2);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.transfers(), 2);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn first_computations_dedupes() {
        let mut p = Pebbling::new();
        p.compute(v(2));
        p.compute(v(0));
        p.delete(v(2));
        p.compute(v(2)); // recompute: not a first computation
        assert_eq!(p.first_computations(), vec![v(2), v(0)]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Pebbling::from_moves(vec![Move::Compute(v(0))]);
        let b = Pebbling::from_moves(vec![Move::Store(v(0))]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.moves()[1], Move::Store(v(0)));
    }

    #[test]
    fn display_lists_moves() {
        let p = Pebbling::from_moves(vec![Move::Compute(v(0)), Move::Store(v(0))]);
        let text = p.to_string();
        assert!(text.contains("0: compute v0"));
        assert!(text.contains("1: store v0"));
    }

    #[test]
    fn from_iterator_collects() {
        let p: Pebbling = vec![Move::Compute(v(1))].into_iter().collect();
        assert_eq!(p.len(), 1);
    }
}

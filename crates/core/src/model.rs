//! The four red-blue pebbling model variants (paper Sections 1 and 4,
//! Table 1).

use crate::cost::Ratio;
use std::fmt;

/// Which model variant governs a pebbling (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ModelKind {
    /// Baseline model: compute and delete are free and unrestricted.
    Base,
    /// Each node may be computed at most once ("red-blue-white pebbling").
    Oneshot,
    /// Deletions are forbidden; recomputation replaces blue pebbles.
    NoDel,
    /// Computation costs ε (0 < ε < 1); otherwise like base.
    CompCost,
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::Base => "base",
            ModelKind::Oneshot => "oneshot",
            ModelKind::NoDel => "nodel",
            ModelKind::CompCost => "compcost",
        };
        f.pad(s)
    }
}

impl ModelKind {
    /// All four variants, in paper order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Base,
        ModelKind::Oneshot,
        ModelKind::NoDel,
        ModelKind::CompCost,
    ];
}

/// A fully-specified cost model: the variant plus its ε (meaningful for
/// [`ModelKind::CompCost`] only; zero otherwise).
///
/// The per-operation costs realized by this type are exactly Table 1:
///
/// | model    | blue→red | red→blue | compute          | delete |
/// |----------|----------|----------|------------------|--------|
/// | base     | 1        | 1        | 0                | 0      |
/// | oneshot  | 1        | 1        | 0, once per node | 0      |
/// | nodel    | 1        | 1        | 0                | ∞ (forbidden) |
/// | compcost | 1        | 1        | ε                | 0      |
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CostModel {
    kind: ModelKind,
    epsilon: Ratio,
}

impl CostModel {
    /// The paper's default ε = 1/100 ("cache is roughly 100 times faster
    /// than a bus access", Section 4).
    pub const DEFAULT_EPSILON: (u64, u64) = (1, 100);

    /// The base model.
    pub fn base() -> Self {
        CostModel {
            kind: ModelKind::Base,
            epsilon: Ratio::ZERO,
        }
    }

    /// The oneshot model.
    pub fn oneshot() -> Self {
        CostModel {
            kind: ModelKind::Oneshot,
            epsilon: Ratio::ZERO,
        }
    }

    /// The no-deletion model.
    pub fn nodel() -> Self {
        CostModel {
            kind: ModelKind::NoDel,
            epsilon: Ratio::ZERO,
        }
    }

    /// The compcost model with the default ε = 1/100.
    pub fn compcost() -> Self {
        let (n, d) = Self::DEFAULT_EPSILON;
        Self::compcost_with(Ratio::new(n, d))
    }

    /// The compcost model with a custom ε; requires 0 < ε < 1.
    pub fn compcost_with(epsilon: Ratio) -> Self {
        assert!(
            !epsilon.is_zero() && epsilon < Ratio::new(1, 1),
            "compcost requires 0 < ε < 1, got {epsilon}"
        );
        CostModel {
            kind: ModelKind::CompCost,
            epsilon,
        }
    }

    /// Builds the model of the given kind with default parameters.
    pub fn of_kind(kind: ModelKind) -> Self {
        match kind {
            ModelKind::Base => Self::base(),
            ModelKind::Oneshot => Self::oneshot(),
            ModelKind::NoDel => Self::nodel(),
            ModelKind::CompCost => Self::compcost(),
        }
    }

    /// The model variant.
    #[inline]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The compute cost: ε for compcost, zero for the others.
    #[inline]
    pub fn epsilon(&self) -> Ratio {
        self.epsilon
    }

    /// Whether a node may be computed more than once.
    #[inline]
    pub fn allows_recompute(&self) -> bool {
        self.kind != ModelKind::Oneshot
    }

    /// Whether pebbles may be deleted (Step 4 available).
    #[inline]
    pub fn allows_delete(&self) -> bool {
        self.kind != ModelKind::NoDel
    }

    /// Whether computation carries a nonzero cost.
    #[inline]
    pub fn compute_costs(&self) -> bool {
        !self.epsilon.is_zero()
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == ModelKind::CompCost {
            write!(f, "compcost(ε={})", self.epsilon)
        } else {
            write!(f, "{}", self.kind)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capabilities() {
        // base: recompute yes, delete yes, compute free
        let base = CostModel::base();
        assert!(base.allows_recompute() && base.allows_delete() && !base.compute_costs());
        // oneshot: recompute NO, delete yes, compute free
        let oneshot = CostModel::oneshot();
        assert!(!oneshot.allows_recompute());
        assert!(oneshot.allows_delete());
        assert!(!oneshot.compute_costs());
        // nodel: recompute yes, delete NO, compute free
        let nodel = CostModel::nodel();
        assert!(nodel.allows_recompute());
        assert!(!nodel.allows_delete());
        assert!(!nodel.compute_costs());
        // compcost: recompute yes, delete yes, compute costs ε
        let cc = CostModel::compcost();
        assert!(cc.allows_recompute() && cc.allows_delete() && cc.compute_costs());
        assert_eq!(cc.epsilon(), Ratio::new(1, 100));
    }

    #[test]
    fn custom_epsilon_accepted_in_range() {
        let cc = CostModel::compcost_with(Ratio::new(1, 3));
        assert_eq!(cc.epsilon(), Ratio::new(1, 3));
    }

    #[test]
    #[should_panic(expected = "compcost requires")]
    fn epsilon_one_rejected() {
        let _ = CostModel::compcost_with(Ratio::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "compcost requires")]
    fn epsilon_zero_rejected() {
        let _ = CostModel::compcost_with(Ratio::ZERO);
    }

    #[test]
    fn of_kind_matches_constructors() {
        for kind in ModelKind::ALL {
            assert_eq!(CostModel::of_kind(kind).kind(), kind);
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ModelKind::Base.to_string(), "base");
        assert_eq!(ModelKind::Oneshot.to_string(), "oneshot");
        assert_eq!(ModelKind::NoDel.to_string(), "nodel");
        assert_eq!(ModelKind::CompCost.to_string(), "compcost");
        assert_eq!(CostModel::compcost().to_string(), "compcost(ε=1/100)");
    }
}

//! DAG transformations from Section 3 and Appendix C.

use crate::instance::{Instance, SinkConvention};
use crate::state::State;
use crate::trace::Pebbling;
use rbp_graph::{Dag, DagBuilder, NodeId};

/// Result of [`add_super_source`]: the transformed DAG plus bookkeeping.
#[derive(Clone, Debug)]
pub struct SuperSource {
    /// The transformed DAG. Original node ids are preserved; the new
    /// source is appended at index `n`.
    pub dag: Dag,
    /// The added source node s0.
    pub s0: NodeId,
}

/// Section 3, "small number of source nodes": adds a single node s0 with
/// an edge to every original node, making s0 the only source. Pebbling the
/// result with R+1 red pebbles behaves like pebbling the original with R,
/// because a reasonable strategy parks one red pebble on s0 permanently.
pub fn add_super_source(dag: &Dag) -> SuperSource {
    let n = dag.n();
    let mut b = DagBuilder::new(n + 1);
    for (u, v) in dag.edges() {
        b.add_edge(u.index(), v.index());
    }
    for v in 0..n {
        b.add_edge(n, v);
    }
    b.set_label(NodeId::new(n), "s0");
    SuperSource {
        dag: b
            .build()
            .expect("adding a fresh source preserves acyclicity"),
        s0: NodeId::new(n),
    }
}

/// Appendix C: converts a pebbling that finishes with any-colour pebbles
/// on sinks into one that finishes with *blue* pebbles on all sinks, by
/// appending a store for each red sink. Adds at most (#sinks) transfers.
///
/// The input trace must be valid for `instance`; the output is valid for
/// the same instance with [`SinkConvention::RequireBlue`].
pub fn bluify_sinks(instance: &Instance, trace: &Pebbling) -> Pebbling {
    // Replay to find which sinks end red.
    let mut state = State::initial(instance);
    for &mv in trace.moves() {
        state
            .apply(mv, instance)
            .expect("bluify_sinks requires a valid trace");
    }
    let mut out = trace.clone();
    for v in instance.dag().sinks() {
        if state.is_red(v) {
            out.store(v);
        }
    }
    out
}

/// Appendix C helper: the companion instance that demands blue sinks.
pub fn require_blue_sinks(instance: &Instance) -> Instance {
    instance
        .clone()
        .with_sink_convention(SinkConvention::RequireBlue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::canonical_pebbling;
    use crate::engine::simulate;
    use crate::model::CostModel;
    use rbp_graph::generate;

    #[test]
    fn super_source_feeds_everything() {
        let dag = generate::chain(5);
        let ss = add_super_source(&dag);
        assert_eq!(ss.dag.n(), 6);
        assert_eq!(ss.dag.sources(), vec![ss.s0]);
        for v in 0..5 {
            assert!(ss.dag.has_edge(ss.s0, NodeId::new(v)));
        }
        // original edges intact
        assert!(ss.dag.has_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(ss.dag.label(ss.s0), "s0");
    }

    #[test]
    fn super_source_raises_delta_by_one_on_chains() {
        let dag = generate::chain(4);
        assert_eq!(dag.max_indegree(), 1);
        let ss = add_super_source(&dag);
        assert_eq!(ss.dag.max_indegree(), 2);
    }

    #[test]
    fn super_source_instance_still_pebblable() {
        let dag = generate::chain(4);
        let ss = add_super_source(&dag);
        // paper: R' = R + 1
        let inst = Instance::new(ss.dag, 3, CostModel::oneshot());
        let trace = canonical_pebbling(&inst).unwrap();
        assert!(simulate(&inst, &trace).is_ok());
    }

    #[test]
    fn bluify_converts_to_blue_sink_validity() {
        // 0 -> 1; a minimal trace leaves the sink red
        let dag = generate::chain(2);
        let inst = Instance::new(dag, 2, CostModel::oneshot());
        let mut p = Pebbling::new();
        p.compute(NodeId::new(0));
        p.compute(NodeId::new(1));
        // valid under AnyPebble, invalid under RequireBlue
        assert!(simulate(&inst, &p).is_ok());
        let strict = require_blue_sinks(&inst);
        assert!(simulate(&strict, &p).is_err());
        let fixed = bluify_sinks(&inst, &p);
        let rep = simulate(&strict, &fixed).unwrap();
        // exactly one extra store
        assert_eq!(rep.cost.transfers, 1);
    }

    #[test]
    fn bluify_is_noop_when_sinks_already_blue() {
        let dag = generate::chain(2);
        let inst = Instance::new(dag, 2, CostModel::oneshot());
        let mut p = Pebbling::new();
        p.compute(NodeId::new(0));
        p.compute(NodeId::new(1));
        p.store(NodeId::new(1));
        let fixed = bluify_sinks(&inst, &p);
        assert_eq!(fixed.len(), p.len());
    }

    #[test]
    fn appendix_c_cost_gap_bounded_by_sink_count() {
        let mut rng = rand::thread_rng();
        let dag = generate::gnp_dag(12, 0.3, 3, &mut rng);
        let sinks = dag.sinks().len() as u64;
        let inst = Instance::new(dag, 4, CostModel::oneshot());
        let trace = canonical_pebbling(&inst).unwrap();
        let base_cost = simulate(&inst, &trace).unwrap().cost;
        let strict = require_blue_sinks(&inst);
        let fixed = bluify_sinks(&inst, &trace);
        let strict_cost = simulate(&strict, &fixed).unwrap().cost;
        assert!(strict_cost.transfers <= base_cost.transfers + sinks);
    }
}

//! Structural bounds from Section 3 of the paper, each backed by a
//! constructive witness where one exists.

use crate::cost::{Cost, Ratio};
use crate::error::PebblingError;
use crate::instance::{Instance, SourceConvention};
use crate::model::ModelKind;
use crate::trace::Pebbling;
use rbp_graph::topological_order;

pub mod fractional;

/// Checks feasibility: a pebbling exists iff R ≥ Δ+1 (Section 3).
pub fn check_feasible(instance: &Instance) -> Result<(), PebblingError> {
    if instance.is_feasible() {
        Ok(())
    } else {
        Err(PebblingError::Infeasible {
            required: instance.min_feasible_r(),
            available: instance.red_limit(),
        })
    }
}

/// The paper's universal upper bound on optimal cost: (2Δ+1)·n transfers
/// (plus ε·n computes in compcost). Valid for every feasible instance.
pub fn universal_upper_bound(instance: &Instance) -> Cost {
    let n = instance.dag().n() as u64;
    let delta = instance.dag().max_indegree() as u64;
    Cost {
        transfers: (2 * delta + 1) * n,
        computes: n,
    }
}

/// A trivial lower bound on the optimal cost per model (Section 4):
/// 0 for base/oneshot, `computed − p·R` transfers for nodel (every node
/// computed holds a red pebble that can only leave via a store, and at
/// most R may remain red *per processor* at the end — `p·R` in total,
/// which is just `R` for classic instances), and ε·`computed` for
/// compcost (a compute-count bound, valid for any p).
///
/// `computed` is the number of nodes that must receive a compute: all n
/// under `FreeCompute`, but under `InitiallyBlue` the sources start
/// blue and are never computed, so they occupy no red pebble and cost
/// no compute — counting them would overclaim (the bound would exceed
/// the true optimum on DAGs of isolated initially-blue source-sinks).
pub fn trivial_lower_bound(instance: &Instance) -> Cost {
    let n = instance.dag().n() as u64;
    // Under InitiallyBlue, sources are never computed.
    let computed_nodes = match instance.source_convention() {
        SourceConvention::FreeCompute => n,
        SourceConvention::InitiallyBlue => n - instance.dag().sources().len() as u64,
    };
    match instance.model().kind() {
        ModelKind::Base | ModelKind::Oneshot => Cost::ZERO,
        ModelKind::NoDel => {
            let red_capacity = instance.red_limit() as u64 * instance.procs() as u64;
            Cost::transfers(computed_nodes.saturating_sub(red_capacity))
        }
        ModelKind::CompCost => Cost {
            transfers: 0,
            computes: computed_nodes,
        },
    }
}

/// Lemma 1: in oneshot/nodel/compcost every *optimal* pebbling has at most
/// O(Δ·n) moves. This returns the explicit constant-bearing bound our
/// tests assert against:
///
/// - transfers ≤ (2Δ+1)·n (else the pebbling beats the universal upper
///   bound by being worse than it — impossible for an optimum);
/// - oneshot: ≤ n computes and ≤ n deletes;
/// - nodel: ≤ n + stores ≤ n + (2Δ+1)·n computes, 0 deletes;
/// - compcost: computes+deletes ≤ (2/ε)·(2Δ+1+ε)·n.
///
/// Returns `None` for base, where optimal pebblings may be
/// superpolynomial (the problem is PSPACE-complete \[6\]).
pub fn lemma1_length_bound(instance: &Instance) -> Option<u64> {
    let n = instance.dag().n() as u64;
    let delta = instance.dag().max_indegree() as u64;
    let transfers = (2 * delta + 1) * n;
    match instance.model().kind() {
        ModelKind::Base => None,
        ModelKind::Oneshot => Some(transfers + 2 * n),
        ModelKind::NoDel => Some(transfers + n + transfers),
        ModelKind::CompCost => {
            let eps = instance.model().epsilon();
            // p ≤ (2/ε)(2Δ+1+ε)n  ⇒  p ≤ 2·(den/num)·(2Δ+1)·n + 2n
            let p = 2 * (eps.den() / eps.num().max(1)) * (2 * delta + 1) * n + 2 * n;
            Some(transfers + p)
        }
    }
}

/// The constructive strategy behind the (2Δ+1)·n bound (Section 3): walk a
/// topological order; for each node load its inputs, compute it, then
/// store everything back to slow memory. Legal in **all four models**
/// (single compute per node, no deletions) whenever R ≥ Δ+1.
///
/// Exact cost: `2m + n` transfers and `n` computes, where `m` is the edge
/// count — which is ≤ (2Δ+1)·n.
pub fn canonical_pebbling(instance: &Instance) -> Result<Pebbling, PebblingError> {
    check_feasible(instance)?;
    let dag = instance.dag();
    let initially_blue = instance.source_convention() == SourceConvention::InitiallyBlue;
    let mut trace = Pebbling::with_capacity(2 * dag.num_edges() + 2 * dag.n());
    for v in topological_order(dag) {
        if initially_blue && dag.is_source(v) {
            // sources hold blue pebbles already; they are only ever
            // touched as inputs below
            continue;
        }
        // all inputs are blue (stored in a previous round): load them
        for &u in dag.preds(v) {
            trace.load(u);
        }
        trace.compute(v);
        // store the inputs and the fresh value; the board is left all-blue
        for &u in dag.preds(v) {
            trace.store(u);
        }
        trace.store(v);
    }
    Ok(trace)
}

/// The exact cost of [`canonical_pebbling`]: 2m + n transfers, n computes
/// (with source adjustments under `InitiallyBlue`).
pub fn canonical_cost(instance: &Instance) -> Cost {
    let dag = instance.dag();
    let (m, n) = (dag.num_edges() as u64, dag.n() as u64);
    match instance.source_convention() {
        SourceConvention::FreeCompute => Cost {
            transfers: 2 * m + n,
            computes: n,
        },
        SourceConvention::InitiallyBlue => {
            let srcs = dag.sources().len() as u64;
            Cost {
                transfers: 2 * m + n - srcs,
                computes: n - srcs,
            }
        }
    }
}

/// The maximal per-step improvement from an extra red pebble (Section 5):
/// opt(R−1) ≤ opt(R) + 2n in the oneshot model. Returns the additive slack
/// `2n` used by tests and the tradeoff experiment.
pub fn max_tradeoff_slope(instance: &Instance) -> u64 {
    2 * instance.dag().n() as u64
}

/// The best structural lower bound the crate knows how to certify: the
/// component-wise maximum of [`trivial_lower_bound`] and the
/// [`fractional`] relaxation. Component-wise max is sound because each
/// component of each input is individually a valid lower bound on that
/// component of every complete trace's cost, and [`Cost`] scaling is
/// monotone in both components.
///
/// This is the single entry point solvers and the verify harness use to
/// report `lower_bound`s; prefer it over calling either bound directly.
pub fn best_lower_bound(instance: &Instance) -> Cost {
    let a = trivial_lower_bound(instance);
    let b = fractional::bound(instance).cost;
    Cost {
        transfers: a.transfers.max(b.transfers),
        computes: a.computes.max(b.computes),
    }
}

/// Minimal Ratio-valued optimum bracket `[lower, upper]` for quick sanity
/// reporting (Table 2's first column). The lower end is
/// [`best_lower_bound`], so it tightens automatically as the bound
/// engine improves.
pub fn optimum_bracket(instance: &Instance) -> (Ratio, Ratio) {
    let eps = instance.model().epsilon();
    (
        best_lower_bound(instance).total(eps),
        universal_upper_bound(instance).total(eps),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::model::CostModel;
    use rbp_graph::{generate, DagBuilder};

    #[test]
    fn canonical_pebbling_is_legal_in_all_models_and_costs_2m_plus_n() {
        let mut rng = rand::thread_rng();
        let dag = generate::layered(4, 4, 3, &mut rng);
        let (n, m) = (dag.n() as u64, dag.num_edges() as u64);
        for kind in ModelKind::ALL {
            let inst = Instance::new(
                dag.clone(),
                dag.max_indegree() + 1,
                CostModel::of_kind(kind),
            );
            let trace = canonical_pebbling(&inst).unwrap();
            let rep = simulate(&inst, &trace).expect("canonical pebbling must be legal");
            assert_eq!(rep.cost.transfers, 2 * m + n, "model {kind}");
            assert_eq!(rep.cost.computes, n);
            assert_eq!(rep.cost, canonical_cost(&inst));
            assert!(rep.peak_red <= inst.red_limit());
        }
    }

    #[test]
    fn canonical_cost_below_universal_upper_bound() {
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            let dag = generate::gnp_dag(20, 0.3, 4, &mut rng);
            let inst = Instance::new(dag, 5, CostModel::oneshot());
            let c = canonical_cost(&inst);
            let ub = universal_upper_bound(&inst);
            assert!(c.transfers <= ub.transfers);
        }
    }

    #[test]
    fn infeasible_instance_detected() {
        let mut b = DagBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, 3);
        }
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::base());
        assert_eq!(
            check_feasible(&inst).unwrap_err(),
            PebblingError::Infeasible {
                required: 4,
                available: 3
            }
        );
        assert!(canonical_pebbling(&inst).is_err());
    }

    #[test]
    fn lower_bounds_per_model() {
        let dag = generate::chain(10);
        let r = 2;
        assert_eq!(
            trivial_lower_bound(&Instance::new(dag.clone(), r, CostModel::base())),
            Cost::ZERO
        );
        assert_eq!(
            trivial_lower_bound(&Instance::new(dag.clone(), r, CostModel::nodel())).transfers,
            8
        );
        assert_eq!(
            trivial_lower_bound(&Instance::new(dag.clone(), r, CostModel::compcost())).computes,
            10
        );
    }

    #[test]
    fn nodel_bound_sound_under_initially_blue_sources() {
        // Minimized fuzz-soak counterexample: two isolated source-sinks
        // start blue under InitiallyBlue, so the empty pebbling already
        // satisfies RequireBlue at cost 0 — the nodel bound must not
        // count nodes that are never computed.
        use crate::instance::SinkConvention;
        use crate::trace::Pebbling;
        let dag = DagBuilder::new(2).build().unwrap();
        let inst = Instance::new(dag, 1, CostModel::nodel())
            .with_source_convention(SourceConvention::InitiallyBlue)
            .with_sink_convention(SinkConvention::RequireBlue);
        assert_eq!(trivial_lower_bound(&inst), Cost::ZERO);
        let rep = simulate(&inst, &Pebbling::new()).expect("empty pebbling is complete");
        assert_eq!(rep.cost, Cost::ZERO);
        // and a chain under InitiallyBlue: only n − 1 nodes are computed
        let chain = generate::chain(10);
        let inst = Instance::new(chain, 2, CostModel::nodel())
            .with_source_convention(SourceConvention::InitiallyBlue);
        assert_eq!(trivial_lower_bound(&inst).transfers, 7);
    }

    #[test]
    fn nodel_bound_uses_total_red_capacity_under_mpp() {
        // 10-chain, R = 2: classic bound is 8 stores, but with p = 4
        // processors the total red capacity is 8, so only 2 stores are
        // forced — the classic figure would overclaim and break
        // upper_bound_quality on multiprocessor optima.
        let dag = generate::chain(10);
        let inst = Instance::new(dag, 2, CostModel::nodel());
        assert_eq!(trivial_lower_bound(&inst).transfers, 8);
        assert_eq!(trivial_lower_bound(&inst.with_procs(4)).transfers, 2);
        assert_eq!(trivial_lower_bound(&inst.with_procs(8)).transfers, 0);
    }

    #[test]
    fn lemma1_bound_exists_except_base() {
        let dag = generate::chain(5);
        for kind in ModelKind::ALL {
            let inst = Instance::new(dag.clone(), 2, CostModel::of_kind(kind));
            let bound = lemma1_length_bound(&inst);
            if kind == ModelKind::Base {
                assert!(bound.is_none());
            } else {
                let b = bound.unwrap();
                assert!(b >= dag.n() as u64);
            }
        }
    }

    #[test]
    fn canonical_pebbling_respects_initially_blue_sources() {
        let dag = generate::chain(6);
        let inst = Instance::new(dag, 2, CostModel::oneshot())
            .with_source_convention(SourceConvention::InitiallyBlue);
        let trace = canonical_pebbling(&inst).unwrap();
        let rep = simulate(&inst, &trace).unwrap();
        assert_eq!(rep.cost, canonical_cost(&inst));
    }

    #[test]
    fn optimum_bracket_is_ordered() {
        let dag = generate::chain(8);
        for kind in ModelKind::ALL {
            let inst = Instance::new(dag.clone(), 2, CostModel::of_kind(kind));
            let (lo, hi) = optimum_bracket(&inst);
            assert!(lo <= hi, "bracket inverted for {kind}");
        }
    }

    #[test]
    fn tradeoff_slope_is_two_n() {
        let dag = generate::chain(12);
        let inst = Instance::new(dag, 3, CostModel::oneshot());
        assert_eq!(max_tradeoff_slope(&inst), 24);
    }
}

//! Precise validation errors for pebbling traces.

use rbp_graph::NodeId;
use std::fmt;

/// Why a move sequence is not a legal pebbling for a given instance.
///
/// Every variant pinpoints the offending node (and step index, attached by
/// the engine) so that solver bugs surface immediately in tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PebblingError {
    /// Step 1 applied to a node that holds no blue pebble.
    LoadNotBlue { node: NodeId },
    /// Step 2 applied to a node that holds no red pebble.
    StoreNotRed { node: NodeId },
    /// Compute applied to a node with an input lacking a red pebble.
    InputNotRed { node: NodeId, input: NodeId },
    /// Compute applied to a node that already holds a red pebble.
    ComputeOnRed { node: NodeId },
    /// Second compute of a node in the oneshot model.
    RecomputeForbidden { node: NodeId },
    /// Compute of a source under the "sources start blue" convention
    /// (Appendix C), where sources are not computable.
    SourceNotComputable { node: NodeId },
    /// Delete in the nodel model.
    DeleteForbidden { node: NodeId },
    /// Delete applied to a node holding no pebble.
    DeleteEmpty { node: NodeId },
    /// An operation would leave more than R red pebbles on the DAG.
    RedLimitExceeded { node: NodeId, limit: usize },
    /// The trace ended but some sink lacks the required pebble.
    Incomplete { sink: NodeId },
    /// The instance itself is unpebblable: R < Δ+1 (Section 3).
    Infeasible { required: usize, available: usize },
    /// A move is tagged with a processor index ≥ the instance's p
    /// (multiprocessor traces only; classic instances have p = 1, so any
    /// nonzero tag trips this).
    ProcOutOfRange {
        node: NodeId,
        proc: u16,
        procs: usize,
    },
}

impl PebblingError {
    /// The node implicated, if any.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            PebblingError::LoadNotBlue { node }
            | PebblingError::StoreNotRed { node }
            | PebblingError::InputNotRed { node, .. }
            | PebblingError::ComputeOnRed { node }
            | PebblingError::RecomputeForbidden { node }
            | PebblingError::SourceNotComputable { node }
            | PebblingError::DeleteForbidden { node }
            | PebblingError::DeleteEmpty { node }
            | PebblingError::RedLimitExceeded { node, .. }
            | PebblingError::ProcOutOfRange { node, .. } => Some(node),
            PebblingError::Incomplete { sink } => Some(sink),
            PebblingError::Infeasible { .. } => None,
        }
    }
}

impl fmt::Display for PebblingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PebblingError::LoadNotBlue { node } => {
                write!(f, "load of v{} which holds no blue pebble", node.index())
            }
            PebblingError::StoreNotRed { node } => {
                write!(f, "store of v{} which holds no red pebble", node.index())
            }
            PebblingError::InputNotRed { node, input } => write!(
                f,
                "compute of v{} but input v{} holds no red pebble",
                node.index(),
                input.index()
            ),
            PebblingError::ComputeOnRed { node } => {
                write!(
                    f,
                    "compute of v{} which already holds a red pebble",
                    node.index()
                )
            }
            PebblingError::RecomputeForbidden { node } => write!(
                f,
                "v{} computed twice (forbidden in the oneshot model)",
                node.index()
            ),
            PebblingError::SourceNotComputable { node } => write!(
                f,
                "source v{} computed, but sources start blue and are not computable",
                node.index()
            ),
            PebblingError::DeleteForbidden { node } => write!(
                f,
                "delete of v{} (deletions are forbidden in the nodel model)",
                node.index()
            ),
            PebblingError::DeleteEmpty { node } => {
                write!(f, "delete of v{} which holds no pebble", node.index())
            }
            PebblingError::RedLimitExceeded { node, limit } => write!(
                f,
                "placing a red pebble on v{} would exceed the limit of {} red pebbles",
                node.index(),
                limit
            ),
            PebblingError::Incomplete { sink } => {
                write!(f, "pebbling ended with sink v{} unpebbled", sink.index())
            }
            PebblingError::Infeasible {
                required,
                available,
            } => write!(
                f,
                "instance is infeasible: needs R >= {required} red pebbles, has {available}"
            ),
            PebblingError::ProcOutOfRange { node, proc, procs } => write!(
                f,
                "move on v{} tagged for processor {proc}, but the instance has only {procs} processor(s)",
                node.index()
            ),
        }
    }
}

impl std::error::Error for PebblingError {}

/// A [`PebblingError`] located at a step index within a trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceError {
    /// Index of the offending move in the trace (`usize::MAX` for
    /// end-of-trace conditions such as incompleteness).
    pub step: usize,
    /// The underlying violation.
    pub error: PebblingError,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.step == usize::MAX {
            write!(f, "at end of trace: {}", self.error)
        } else {
            write!(f, "at step {}: {}", self.step, self.error)
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_node() {
        let e = PebblingError::LoadNotBlue {
            node: NodeId::new(7),
        };
        assert!(e.to_string().contains("v7"));
        assert_eq!(e.node(), Some(NodeId::new(7)));
    }

    #[test]
    fn infeasible_has_no_node() {
        let e = PebblingError::Infeasible {
            required: 4,
            available: 2,
        };
        assert_eq!(e.node(), None);
        assert!(e.to_string().contains("R >= 4"));
    }

    #[test]
    fn trace_error_formats_step() {
        let te = TraceError {
            step: 3,
            error: PebblingError::DeleteEmpty {
                node: NodeId::new(1),
            },
        };
        assert!(te.to_string().starts_with("at step 3"));
        let end = TraceError {
            step: usize::MAX,
            error: PebblingError::Incomplete {
                sink: NodeId::new(0),
            },
        };
        assert!(end.to_string().starts_with("at end of trace"));
    }
}

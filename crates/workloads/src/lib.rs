//! # rbp-workloads
//!
//! Realistic computation DAGs — the workloads the paper's introduction
//! motivates (HPC kernels on two-level memory hierarchies \[20\]), plus the
//! Hong–Kung reference bounds for the classical kernels:
//!
//! - [`matmul`]: dense matrix multiplication (I/O bound Ω(n³/√R));
//! - [`fft`]: the radix-2 butterfly (Θ(n·log n / log R));
//! - [`stencil`]: iterated 1-D stencils of configurable radius;
//! - [`tree`]: k-ary reduction trees;
//! - [`ensemble`]: seeded random *instance* ensembles (layered,
//!   series-parallel, random-order, in-tree) for the `rbp-verify`
//!   differential harness.
//!
//! Random layered/G(n,p)/series-parallel/chain DAG generators live in
//! [`rbp_graph::generate`]; [`ensemble`] lifts them to complete
//! [`rbp_core::Instance`]s with models, budgets, and conventions drawn
//! deterministically from a seed.

pub mod ensemble;
pub mod fft;
pub mod matmul;
pub mod stencil;
pub mod tree;

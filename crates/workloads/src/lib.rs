//! # rbp-workloads
//!
//! Realistic computation DAGs — the workloads the paper's introduction
//! motivates (HPC kernels on two-level memory hierarchies \[20\]), plus the
//! Hong–Kung reference bounds for the classical kernels:
//!
//! - [`matmul`]: dense matrix multiplication (I/O bound Ω(n³/√R));
//! - [`fft`]: the radix-2 butterfly (Θ(n·log n / log R));
//! - [`stencil`]: iterated 1-D stencils of configurable radius;
//! - [`tree`]: k-ary reduction trees.
//!
//! Random layered/G(n,p)/chain generators live in
//! [`rbp_graph::generate`].

pub mod fft;
pub mod matmul;
pub mod stencil;
pub mod tree;

//! Seeded random instance ensembles for the verification harness.
//!
//! Each ensemble maps `(base_seed, index)` deterministically to a
//! complete [`Instance`] — DAG family, size, red budget, cost model,
//! and start/finish conventions are all drawn from the vendored
//! [`rand::rngs::StdRng`], so a violating instance found by the fuzz
//! soak can always be regenerated from its `(base_seed, index)` pair
//! (or replayed from the written `instance v1` counterexample file).
//!
//! Four random DAG families are rotated through:
//!
//! | family | generator | probes |
//! |---|---|---|
//! | `layered` | [`generate::layered`] | staged pipelines, controlled Δ |
//! | `series-parallel` | [`generate::series_parallel`] | the tractable SP frontier |
//! | `random-order` | [`generate::gnp_dag`] | unstructured G(n,p) forward DAGs |
//! | `in-tree` | [`generate::random_in_tree`] | reduction trees to a single sink |
//!
//! Gadget families (pyramids, grids, CD gadgets, …) live in
//! `rbp-gadgets`; the `rbp-verify` harness composes both sources, since
//! the dependency arrow points gadgets → solvers → core and this crate
//! must stay below the solvers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbp_core::{CostModel, Instance, ModelKind, SinkConvention, SourceConvention};
use rbp_graph::generate;

/// The random DAG families an ensemble rotates through.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// Staged layered DAGs ([`generate::layered`]).
    Layered,
    /// Two-terminal series-parallel DAGs ([`generate::series_parallel`]).
    SeriesParallel,
    /// G(n,p) forward DAGs over a random topological order
    /// ([`generate::gnp_dag`]).
    RandomOrder,
    /// Random in-trees with a single sink ([`generate::random_in_tree`]).
    InTree,
}

impl Family {
    /// All families, in rotation order.
    pub const ALL: [Family; 4] = [
        Family::Layered,
        Family::SeriesParallel,
        Family::RandomOrder,
        Family::InTree,
    ];

    /// Short name used in generated-instance labels and counterexample
    /// file names.
    pub fn name(self) -> &'static str {
        match self {
            Family::Layered => "layered",
            Family::SeriesParallel => "series-parallel",
            Family::RandomOrder => "random-order",
            Family::InTree => "in-tree",
        }
    }
}

/// Size and shape bounds for generated instances.
///
/// The defaults are tuned for the differential harness: every registry
/// spec (including the unpruned reference solver and the parallel exact
/// family) must finish in well under a millisecond per instance so the
/// CI soak can afford ≥ 10,000 instances in a short wall-clock budget.
#[derive(Clone, Copy, Debug)]
pub struct EnsembleConfig {
    /// Largest DAG, in nodes (inclusive). Instances are drawn between
    /// 3 and this bound.
    pub max_nodes: usize,
    /// Indegree cap Δ handed to the generators; feasibility then only
    /// needs R ≥ Δ+1.
    pub max_indegree: usize,
    /// Red budgets are drawn from `min_feasible_r()` to
    /// `min_feasible_r() + r_slack` inclusive; slack 0 pins every
    /// instance to the feasibility threshold (the hardest regime),
    /// larger slack exercises the eviction-policy code paths.
    pub r_slack: usize,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            max_nodes: 10,
            max_indegree: 3,
            r_slack: 2,
        }
    }
}

/// One generated instance, with enough provenance to regenerate or
/// report it.
#[derive(Clone, Debug)]
pub struct GeneratedInstance {
    /// Human-readable label: `"<family>-n<nodes>-i<index>"`.
    pub name: String,
    /// The family the DAG was drawn from.
    pub family: Family,
    /// The ensemble index this instance occupies.
    pub index: u64,
    /// The complete, feasible pebbling instance.
    pub instance: Instance,
}

/// Deterministically generates the `index`-th instance of the ensemble
/// rooted at `base_seed`.
///
/// The same `(base_seed, index, cfg)` triple always yields a
/// byte-identical instance; distinct indices use independently seeded
/// RNG streams (SplitMix64 over `base_seed ⊕ f(index)`), so ensembles
/// can be sampled in any order or in parallel.
pub fn instance_at(base_seed: u64, index: u64, cfg: &EnsembleConfig) -> GeneratedInstance {
    let mut rng = StdRng::seed_from_u64(base_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let family = Family::ALL[(index % Family::ALL.len() as u64) as usize];
    let max_n = cfg.max_nodes.max(3);
    let max_d = cfg.max_indegree.max(1);
    let dag = match family {
        Family::Layered => {
            let layers = rng.gen_range(2..=4usize);
            let width = rng.gen_range(1..=(max_n / layers).max(1));
            generate::layered(layers, width, max_d, &mut rng)
        }
        Family::SeriesParallel => {
            let n = rng.gen_range(3..=max_n);
            generate::series_parallel(n, max_d, &mut rng)
        }
        Family::RandomOrder => {
            let n = rng.gen_range(3..=max_n);
            let p = 0.15 + 0.5 * rng.gen_range(0..=100u32) as f64 / 100.0;
            generate::gnp_dag(n, p, max_d, &mut rng)
        }
        Family::InTree => {
            let n = rng.gen_range(3..=max_n);
            generate::random_in_tree(n, max_d, &mut rng)
        }
    };
    // registry-driven model draw: a new ModelKind automatically joins
    // the rotation instead of needing this match extended
    let kind = ModelKind::ALL[rng.gen_range(0..ModelKind::ALL.len())];
    let model = CostModel::of_kind(kind);
    let n = dag.n();
    let base = Instance::new(dag, 1, model);
    let r_max = (base.min_feasible_r() + cfg.r_slack).min(n.max(base.min_feasible_r()));
    let r = rng.gen_range(base.min_feasible_r()..=r_max.max(base.min_feasible_r()));
    let mut inst = base.with_red_limit(r);
    // occasionally flip to the Hong–Kung / blue-output conventions so the
    // harness also exercises the Appendix C variants
    if rng.gen_bool(0.2) {
        inst = inst.with_source_convention(SourceConvention::InitiallyBlue);
    }
    if rng.gen_bool(0.2) {
        inst = inst.with_sink_convention(SinkConvention::RequireBlue);
    }
    GeneratedInstance {
        name: format!("{}-n{}-i{}", family.name(), n, index),
        family,
        index,
        instance: inst,
    }
}

/// An endless deterministic stream of ensemble instances starting at
/// index 0. `stream(seed, cfg).take(k)` is the canonical way to sample
/// a k-instance ensemble.
pub fn stream(base_seed: u64, cfg: EnsembleConfig) -> impl Iterator<Item = GeneratedInstance> {
    (0u64..).map(move |i| instance_at(base_seed, i, &cfg))
}

/// The processor counts the multiprocessor ensemble rotates through.
/// `p = 1` stays in the rotation deliberately: it pins the
/// `mpp:1 ≡ classic` equivalence on every soak.
pub const MPP_PROCS: [u32; 3] = [1, 2, 4];

/// The multiprocessor variant of [`instance_at`]: the same underlying
/// classic draw, lifted to `p` processors with `p` rotating through
/// [`MPP_PROCS`] by index. Labels gain a `-p<procs>` suffix.
pub fn mpp_instance_at(base_seed: u64, index: u64, cfg: &EnsembleConfig) -> GeneratedInstance {
    let mut g = instance_at(base_seed, index, cfg);
    let p = MPP_PROCS[(index % MPP_PROCS.len() as u64) as usize];
    g.instance = g.instance.with_procs(p);
    g.name = format!("{}-p{p}", g.name);
    g
}

/// An endless deterministic stream of multiprocessor ensemble instances
/// (the [`stream`] analogue of [`mpp_instance_at`]).
pub fn mpp_stream(base_seed: u64, cfg: EnsembleConfig) -> impl Iterator<Item = GeneratedInstance> {
    (0u64..).map(move |i| mpp_instance_at(base_seed, i, &cfg))
}

/// Size bounds for the large layered ensemble ([`large_layered_at`]).
///
/// These instances are hundreds of nodes — far beyond the exact
/// frontier — so they only make sense for the scale-out line: the
/// `coarse[:K]` solver's upper bounds against the fractional
/// lower-bound engine (`bounds::best_lower_bound`), the gap atlas'
/// coarse-vs-bound ratios, and throughput benchmarks.
#[derive(Clone, Copy, Debug)]
pub struct LargeConfig {
    /// Smallest DAG, in nodes (approximate lower edge of the draw).
    pub min_nodes: usize,
    /// Largest DAG, in nodes (inclusive upper edge of the draw).
    pub max_nodes: usize,
    /// Indegree cap Δ handed to the generator.
    pub max_indegree: usize,
    /// Red budgets are drawn from `min_feasible_r()` to
    /// `min_feasible_r() + r_slack` inclusive.
    pub r_slack: usize,
}

impl Default for LargeConfig {
    fn default() -> Self {
        LargeConfig {
            min_nodes: 150,
            max_nodes: 600,
            max_indegree: 3,
            r_slack: 2,
        }
    }
}

/// Deterministically generates the `index`-th *large* layered instance
/// of the ensemble rooted at `base_seed`: a staged layered DAG of
/// `min_nodes..=max_nodes` nodes under the Hong–Kung conventions
/// (`InitiallyBlue` sources, `RequireBlue` sinks), where both the
/// forced-load and forced-store terms of the fractional bound engine
/// are active. Cost models rotate through [`ModelKind::ALL`] by index.
pub fn large_layered_at(base_seed: u64, index: u64, cfg: &LargeConfig) -> GeneratedInstance {
    let mut rng = StdRng::seed_from_u64(base_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let min_n = cfg.min_nodes.max(16);
    let max_n = cfg.max_nodes.max(min_n);
    let target = rng.gen_range(min_n..=max_n);
    let layers = rng.gen_range(6..=16usize).min(target / 2);
    let width = (target / layers).max(2);
    let max_d = cfg.max_indegree.max(1);
    let dag = generate::layered(layers, width, max_d, &mut rng);
    let kind = ModelKind::ALL[(index % ModelKind::ALL.len() as u64) as usize];
    let n = dag.n();
    let base = Instance::new(dag, 1, CostModel::of_kind(kind));
    let r = rng.gen_range(base.min_feasible_r()..=base.min_feasible_r() + cfg.r_slack);
    let instance = base
        .with_red_limit(r)
        .with_source_convention(SourceConvention::InitiallyBlue)
        .with_sink_convention(SinkConvention::RequireBlue);
    GeneratedInstance {
        name: format!("large-layered-n{n}-i{index}"),
        family: Family::Layered,
        index,
        instance,
    }
}

/// An endless deterministic stream of large layered instances (the
/// [`stream`] analogue of [`large_layered_at`]).
pub fn large_layered(base_seed: u64, cfg: LargeConfig) -> impl Iterator<Item = GeneratedInstance> {
    (0u64..).map(move |i| large_layered_at(base_seed, i, &cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::ModelKind;

    #[test]
    fn ensembles_are_deterministic() {
        let cfg = EnsembleConfig::default();
        for i in 0..32 {
            let a = instance_at(7, i, &cfg);
            let b = instance_at(7, i, &cfg);
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.instance.canonical_key(),
                b.instance.canonical_key(),
                "index {i} must regenerate identically"
            );
        }
    }

    #[test]
    fn ensembles_are_always_feasible_and_bounded() {
        let cfg = EnsembleConfig::default();
        for g in stream(42, cfg).take(200) {
            assert!(g.instance.is_feasible(), "{} must be feasible", g.name);
            assert!(g.instance.dag().n() <= 16, "{} too large", g.name);
            assert!(g.instance.dag().n() >= 2);
        }
    }

    #[test]
    fn ensembles_rotate_families_and_models() {
        let cfg = EnsembleConfig::default();
        let sample: Vec<_> = stream(3, cfg).take(64).collect();
        for f in Family::ALL {
            assert!(
                sample.iter().any(|g| g.family == f),
                "family {} missing from rotation",
                f.name()
            );
        }
        for kind in ModelKind::ALL {
            assert!(
                sample.iter().any(|g| g.instance.model().kind() == kind),
                "model {kind:?} never drawn"
            );
        }
    }

    #[test]
    fn mpp_ensembles_rotate_processor_counts() {
        let cfg = EnsembleConfig::default();
        let sample: Vec<_> = mpp_stream(11, cfg).take(24).collect();
        for p in MPP_PROCS {
            assert!(
                sample.iter().any(|g| g.instance.procs() == p as usize),
                "processor count {p} missing from rotation"
            );
        }
        for g in &sample {
            assert!(g.instance.is_feasible(), "{} must stay feasible", g.name);
            assert!(g.name.contains("-p"), "{} lacks the -p suffix", g.name);
        }
        // the mpp draw shares the classic draw: same DAG and model
        let classic = instance_at(11, 5, &cfg);
        let lifted = mpp_instance_at(11, 5, &cfg);
        assert_eq!(
            classic.instance.canonical_key(),
            lifted.instance.without_mpp().canonical_key(),
            "lifting must only change the processor dimension"
        );
    }

    #[test]
    fn large_layered_sizes_and_conventions() {
        let cfg = LargeConfig::default();
        for g in large_layered(9, cfg).take(12) {
            let n = g.instance.dag().n();
            assert!(
                (100..=700).contains(&n),
                "{}: {} nodes outside the large band",
                g.name,
                n
            );
            assert!(g.instance.is_feasible(), "{} must be feasible", g.name);
            assert_eq!(
                g.instance.source_convention(),
                SourceConvention::InitiallyBlue
            );
            assert_eq!(g.instance.sink_convention(), SinkConvention::RequireBlue);
            assert!(g.name.starts_with("large-layered-n"));
        }
        // deterministic regeneration, like the small ensembles
        let a = large_layered_at(9, 3, &cfg);
        let b = large_layered_at(9, 3, &cfg);
        assert_eq!(a.instance.canonical_key(), b.instance.canonical_key());
        // models rotate
        for kind in ModelKind::ALL {
            assert!(
                large_layered(9, cfg)
                    .take(8)
                    .any(|g| g.instance.model().kind() == kind),
                "model {kind:?} never drawn in the large ensemble"
            );
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_ensembles() {
        let cfg = EnsembleConfig::default();
        let a: Vec<_> = stream(1, cfg).take(16).collect();
        let b: Vec<_> = stream(2, cfg).take(16).collect();
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.instance.canonical_key() != y.instance.canonical_key()),
            "seeds 1 and 2 generated identical ensembles"
        );
    }
}

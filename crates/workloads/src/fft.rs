//! The FFT butterfly DAG (radix-2): `stages = log2(n)` levels over `n`
//! lanes; node (s, i) depends on (s−1, i) and (s−1, i ^ 2^(s−1)).
//! Another classic red-blue pebbling subject: I/O complexity
//! Θ(n·log n / log R) (Hong & Kung \[12\]).

use rbp_graph::{Dag, DagBuilder, NodeId};

/// A built FFT DAG.
#[derive(Clone, Debug)]
pub struct Fft {
    /// The DAG.
    pub dag: Dag,
    /// `levels[s][i]`: node at stage s (0 = inputs), lane i.
    pub levels: Vec<Vec<NodeId>>,
    /// Number of lanes (a power of two).
    pub n: usize,
}

/// Builds the butterfly over `n = 2^log_n` lanes.
pub fn build(log_n: u32) -> Fft {
    let n = 1usize << log_n;
    let mut b = DagBuilder::new(0);
    let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(log_n as usize + 1);
    levels.push(
        (0..n)
            .map(|i| b.add_labeled_node(format!("x{i}")))
            .collect(),
    );
    for s in 1..=log_n as usize {
        let stride = 1usize << (s - 1);
        let prev = levels[s - 1].clone();
        let row: Vec<NodeId> = (0..n)
            .map(|i| {
                let v = b.add_labeled_node(format!("f{s}_{i}"));
                b.add_edge_ids(prev[i], v);
                b.add_edge_ids(prev[i ^ stride], v);
                v
            })
            .collect();
        levels.push(row);
    }
    Fft {
        dag: b.build().expect("butterfly is acyclic"),
        levels,
        n,
    }
}

/// Hong–Kung reference shape: Θ(n·log n / log R), no hidden constant.
pub fn hong_kung_bound(n: usize, r: usize) -> f64 {
    let n = n as f64;
    n * n.log2() / (r as f64).log2().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_solvers::registry;

    #[test]
    fn structure() {
        let f = build(3);
        assert_eq!(f.n, 8);
        assert_eq!(f.dag.n(), 8 * 4);
        assert_eq!(f.dag.max_indegree(), 2);
        assert_eq!(f.dag.sources().len(), 8);
        assert_eq!(f.dag.sinks().len(), 8);
    }

    #[test]
    fn butterfly_connectivity() {
        let f = build(2);
        // stage 1, lane 0 depends on lanes 0 and 1 of the inputs
        let preds = f.dag.preds(f.levels[1][0]);
        assert_eq!(preds, &[f.levels[0][0], f.levels[0][1]]);
        // stage 2, lane 0 depends on stage-1 lanes 0 and 2
        let preds2 = f.dag.preds(f.levels[2][0]);
        assert!(preds2.contains(&f.levels[1][0]));
        assert!(preds2.contains(&f.levels[1][2]));
    }

    #[test]
    fn every_output_reachable_from_every_input() {
        // the defining FFT property
        let f = build(3);
        for &input in &f.levels[0] {
            let desc = rbp_graph::algo::descendants(&f.dag, input);
            for &out in f.levels.last().unwrap() {
                assert!(desc.contains(out.index()));
            }
        }
    }

    #[test]
    fn large_builds_scale_exactly() {
        // n lanes × (log n + 1) stages
        for log_n in [6u32, 7] {
            let f = build(log_n);
            let n = 1usize << log_n;
            assert_eq!(f.n, n);
            assert_eq!(f.dag.n(), n * (log_n as usize + 1), "log_n={log_n}");
            assert_eq!(f.dag.sources().len(), n);
            assert_eq!(f.dag.sinks().len(), n);
            assert_eq!(f.dag.max_indegree(), 2);
        }
    }

    #[test]
    fn io_cost_shrinks_with_cache() {
        let f = build(3);
        let cost = |r: usize| {
            let inst = Instance::new(f.dag.clone(), r, CostModel::oneshot());
            registry::solve("greedy", &inst).unwrap().cost.transfers
        };
        assert!(cost(32) <= cost(4));
        assert_eq!(cost(f.dag.n()), 0);
    }
}

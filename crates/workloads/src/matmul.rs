//! Naive dense matrix-multiplication DAG — the original subject of
//! red-blue pebbling analysis (Hong & Kung \[12\]).
//!
//! C = A·B for n×n matrices: entries of A and B are sources; each product
//! `A[i][k]·B[k][j]` is a multiply node; the products accumulate along a
//! summation chain per output entry. Every node has indegree ≤ 2, so the
//! DAG is pebblable from R = 3.

use rbp_graph::{Dag, DagBuilder, NodeId};

/// A built matmul DAG.
#[derive(Clone, Debug)]
pub struct MatMul {
    /// The DAG.
    pub dag: Dag,
    /// `a[i][k]` input nodes.
    pub a: Vec<Vec<NodeId>>,
    /// `b[k][j]` input nodes.
    pub b: Vec<Vec<NodeId>>,
    /// `c[i][j]`: the final accumulation node per output entry (sinks).
    pub c: Vec<Vec<NodeId>>,
    /// Matrix dimension n.
    pub n: usize,
}

/// Builds the n×n×n multiply-accumulate DAG (`n ≥ 1`).
pub fn build(n: usize) -> MatMul {
    assert!(n >= 1);
    let mut bld = DagBuilder::new(0);
    let a: Vec<Vec<NodeId>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|k| bld.add_labeled_node(format!("a{i}_{k}")))
                .collect()
        })
        .collect();
    let b: Vec<Vec<NodeId>> = (0..n)
        .map(|k| {
            (0..n)
                .map(|j| bld.add_labeled_node(format!("b{k}_{j}")))
                .collect()
        })
        .collect();
    let mut c = vec![vec![NodeId::new(0); n]; n];
    for i in 0..n {
        for j in 0..n {
            let mut acc: Option<NodeId> = None;
            for k in 0..n {
                let m = bld.add_labeled_node(format!("m{i}_{j}_{k}"));
                bld.add_edge_ids(a[i][k], m);
                bld.add_edge_ids(b[k][j], m);
                acc = Some(match acc {
                    None => m,
                    Some(prev) => {
                        let s = bld.add_labeled_node(format!("s{i}_{j}_{k}"));
                        bld.add_edge_ids(prev, s);
                        bld.add_edge_ids(m, s);
                        s
                    }
                });
            }
            c[i][j] = acc.expect("n >= 1");
        }
    }
    MatMul {
        dag: bld.build().expect("matmul DAG is acyclic"),
        a,
        b,
        c,
        n,
    }
}

/// The Hong–Kung asymptotic I/O lower bound for matmul with cache size R:
/// Ω(n³ / √R). Returned without hidden constant, as the reference *shape*
/// for the workloads experiment.
pub fn hong_kung_bound(n: usize, r: usize) -> f64 {
    (n as f64).powi(3) / (r as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_solvers::registry;

    #[test]
    fn structure() {
        let m = build(3);
        // inputs 2n², multiplies n³, adds n²(n−1)
        assert_eq!(m.dag.n(), 2 * 9 + 27 + 9 * 2);
        assert_eq!(m.dag.max_indegree(), 2);
        assert_eq!(m.dag.sources().len(), 18);
        assert_eq!(m.dag.sinks().len(), 9);
        for i in 0..3 {
            for j in 0..3 {
                assert!(m.dag.is_sink(m.c[i][j]));
            }
        }
    }

    #[test]
    fn n_equals_one() {
        let m = build(1);
        // a, b, one multiply
        assert_eq!(m.dag.n(), 3);
        assert!(m.dag.is_sink(m.c[0][0]));
    }

    #[test]
    fn io_cost_decreases_with_cache_size() {
        let m = build(3);
        let cost = |r: usize| {
            let inst = Instance::new(m.dag.clone(), r, CostModel::oneshot());
            registry::solve("greedy", &inst).unwrap().cost.transfers
        };
        let small = cost(3);
        let large = cost(24);
        assert!(
            large <= small,
            "more cache cannot hurt greedy: {small} -> {large}"
        );
        // with room for everything the computation is transfer-free
        let huge = cost(m.dag.n());
        assert_eq!(huge, 0);
    }

    #[test]
    fn large_builds_scale_exactly() {
        // 2n² inputs, n³ multiplies, n²(n−1) accumulation adds
        for n in [8usize, 12, 16] {
            let m = build(n);
            assert_eq!(m.dag.n(), 2 * n * n + n * n * n + n * n * (n - 1), "n={n}");
            assert_eq!(m.dag.sources().len(), 2 * n * n);
            assert_eq!(m.dag.sinks().len(), n * n);
            assert_eq!(m.dag.max_indegree(), 2, "pebblable from R = 3 at any n");
        }
    }

    #[test]
    fn hong_kung_shape() {
        // quadrupling the cache halves the bound
        let b1 = hong_kung_bound(16, 4);
        let b2 = hong_kung_bound(16, 16);
        assert!((b1 / b2 - 2.0).abs() < 1e-9);
    }
}

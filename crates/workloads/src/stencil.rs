//! Iterated stencil DAGs: `steps` sweeps over a line of `width` cells,
//! cell (t, i) depending on cells (t−1, i−radius ..= i+radius) clamped to
//! the boundary. Models the time-tiled kernels that dominate scientific
//! computing (the intro’s HPC motivation \[20\]).

use rbp_graph::{Dag, DagBuilder, NodeId};

/// A built stencil DAG.
#[derive(Clone, Debug)]
pub struct Stencil {
    /// The DAG.
    pub dag: Dag,
    /// `rows[t][i]`: cell at time t (0 = initial condition).
    pub rows: Vec<Vec<NodeId>>,
    /// Line width.
    pub width: usize,
    /// Neighbourhood radius.
    pub radius: usize,
}

/// Builds a 1-D stencil: `steps` time steps over `width` cells with the
/// given neighbourhood `radius` (radius 1 = the classic 3-point stencil).
pub fn build(width: usize, steps: usize, radius: usize) -> Stencil {
    assert!(width >= 1 && steps >= 1 && radius >= 1);
    let mut b = DagBuilder::new(0);
    let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(steps + 1);
    rows.push(
        (0..width)
            .map(|i| b.add_labeled_node(format!("u0_{i}")))
            .collect(),
    );
    for t in 1..=steps {
        let prev = rows[t - 1].clone();
        let row: Vec<NodeId> = (0..width)
            .map(|i| {
                let v = b.add_labeled_node(format!("u{t}_{i}"));
                let lo = i.saturating_sub(radius);
                let hi = (i + radius).min(width - 1);
                for &p in &prev[lo..=hi] {
                    b.add_edge_ids(p, v);
                }
                v
            })
            .collect();
        rows.push(row);
    }
    Stencil {
        dag: b.build().expect("stencil is acyclic"),
        rows,
        width,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_solvers::registry;

    #[test]
    fn structure() {
        let s = build(5, 3, 1);
        assert_eq!(s.dag.n(), 20);
        assert_eq!(s.dag.max_indegree(), 3);
        assert_eq!(s.dag.sources().len(), 5);
        assert_eq!(s.dag.sinks().len(), 5);
    }

    #[test]
    fn boundary_cells_have_clamped_neighbourhoods() {
        let s = build(5, 1, 1);
        assert_eq!(s.dag.indegree(s.rows[1][0]), 2);
        assert_eq!(s.dag.indegree(s.rows[1][2]), 3);
        assert_eq!(s.dag.indegree(s.rows[1][4]), 2);
    }

    #[test]
    fn wider_radius_raises_delta() {
        let s = build(7, 1, 2);
        assert_eq!(s.dag.max_indegree(), 5);
    }

    #[test]
    fn large_builds_scale_exactly() {
        // width × (steps + 1) cells; Δ = 2·radius + 1 away from boundaries
        for (w, t, r) in [(64usize, 16usize, 1usize), (48, 24, 2)] {
            let s = build(w, t, r);
            assert_eq!(s.dag.n(), w * (t + 1), "width={w} steps={t}");
            assert_eq!(s.dag.sources().len(), w);
            assert_eq!(s.dag.sinks().len(), w);
            assert_eq!(s.dag.max_indegree(), 2 * r + 1);
        }
    }

    #[test]
    fn stencil_pebbles_free_with_two_rows_of_cache() {
        // R = 2·width is enough to keep two full rows resident
        let s = build(4, 3, 1);
        let inst = Instance::new(s.dag.clone(), 2 * s.width, CostModel::oneshot());
        let rep = registry::solve("greedy", &inst).unwrap();
        assert_eq!(rep.cost.transfers, 0);
    }

    #[test]
    fn portfolio_handles_tight_cache() {
        let s = build(6, 4, 1);
        let inst = Instance::new(s.dag.clone(), 4, CostModel::oneshot());
        let rep = registry::solve("portfolio", &inst).unwrap();
        let ub = rbp_core::bounds::universal_upper_bound(&inst);
        assert!(rep.cost.transfers <= ub.transfers);
    }
}

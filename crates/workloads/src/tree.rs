//! k-ary reduction trees: `leaves` inputs combined pairwise (or k-wise)
//! down to a single root — the shape of parallel reductions, and a
//! workload where pebbling is cheap at tiny R (a useful contrast to
//! matmul/FFT in the workloads experiment).

use rbp_graph::{Dag, DagBuilder, NodeId};

/// A built reduction tree.
#[derive(Clone, Debug)]
pub struct ReductionTree {
    /// The DAG.
    pub dag: Dag,
    /// The leaves (sources).
    pub leaves: Vec<NodeId>,
    /// The root (single sink).
    pub root: NodeId,
    /// Arity.
    pub arity: usize,
}

/// Builds a k-ary reduction over `leaves` inputs (`arity ≥ 2`). The last
/// internal node of a level absorbs any remainder smaller than `arity`.
pub fn build(leaves: usize, arity: usize) -> ReductionTree {
    assert!(leaves >= 1 && arity >= 2);
    let mut b = DagBuilder::new(0);
    let leaf_nodes: Vec<NodeId> = (0..leaves)
        .map(|i| b.add_labeled_node(format!("l{i}")))
        .collect();
    let mut level = leaf_nodes.clone();
    let mut depth = 0;
    while level.len() > 1 {
        depth += 1;
        let mut next = Vec::with_capacity(level.len().div_ceil(arity));
        for (gi, chunk) in level.chunks(arity).enumerate() {
            if chunk.len() == 1 {
                next.push(chunk[0]);
                continue;
            }
            let v = b.add_labeled_node(format!("r{depth}_{gi}"));
            for &c in chunk {
                b.add_edge_ids(c, v);
            }
            next.push(v);
        }
        level = next;
    }
    let root = level[0];
    ReductionTree {
        dag: b.build().expect("tree is acyclic"),
        leaves: leaf_nodes,
        root,
        arity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_solvers::registry;

    #[test]
    fn binary_tree_structure() {
        let t = build(8, 2);
        assert_eq!(t.dag.n(), 15);
        assert_eq!(t.dag.max_indegree(), 2);
        assert_eq!(t.dag.sinks(), vec![t.root]);
        assert_eq!(t.dag.sources().len(), 8);
    }

    #[test]
    fn non_power_leaf_counts() {
        let t = build(5, 2);
        assert_eq!(t.dag.sources().len(), 5);
        assert_eq!(t.dag.sinks().len(), 1);
    }

    #[test]
    fn quaternary_tree() {
        let t = build(16, 4);
        assert_eq!(t.dag.max_indegree(), 4);
        assert_eq!(t.dag.n(), 16 + 4 + 1);
    }

    #[test]
    fn tree_pebble_number_is_height_plus_two() {
        // depth-first evaluation of a height-h binary tree holds one
        // pending value per level plus the 3 pebbles of the current join:
        // h+2 pebbles are transfer-free, h+1 force exactly one round trip
        let t = build(8, 2); // height 3
        let free = registry::solve(
            "exact",
            &Instance::new(t.dag.clone(), 5, CostModel::oneshot()),
        )
        .unwrap();
        assert_eq!(free.cost.transfers, 0, "h+2 pebbles suffice");
        let tight = registry::solve(
            "exact",
            &Instance::new(t.dag.clone(), 4, CostModel::oneshot()),
        )
        .unwrap();
        assert_eq!(tight.cost.transfers, 2, "h+1 pebbles force one spill");
    }

    #[test]
    fn greedy_stays_within_internal_node_budget() {
        // greedy proceeds level-wise rather than depth-first, so it may
        // spill pending internal values — but never more than one store +
        // reload per internal node
        let t = build(8, 2);
        let internal = t.dag.n() as u64 - 8;
        let inst = Instance::new(t.dag.clone(), 4, CostModel::oneshot());
        let g = registry::solve("greedy", &inst).unwrap();
        assert!(g.cost.transfers <= 2 * internal);
        let exact = registry::solve("exact", &inst).unwrap();
        assert!(g.cost.transfers >= exact.cost.transfers);
    }

    #[test]
    fn single_leaf_is_root() {
        let t = build(1, 2);
        assert_eq!(t.dag.n(), 1);
        assert_eq!(t.leaves[0], t.root);
    }
}

//! # rbp-graph
//!
//! Graph substrate for the red-blue pebbling suite: a compact immutable
//! [`Dag`] with CSR adjacency, a validating [`DagBuilder`], topological and
//! reachability algorithms, a [`BitSet`] tuned for pebbling-state use, an
//! undirected [`Graph`] type for reduction inputs, random generators, and
//! DOT export.
//!
//! The crate is deliberately dependency-light (only `rand` for the
//! generators) and allocation-conscious: adjacency scans are contiguous and
//! states hash as raw `u64` words.

pub mod algo;
pub mod bitset;
pub mod builder;
pub mod dag;
pub mod dot;
pub mod generate;
pub mod hash;
pub mod io;
pub mod partition;
pub mod topo;
pub mod undirected;

pub use bitset::{words_for, BitSet, WORD_BITS};
pub use builder::DagBuilder;
pub use dag::{Dag, GraphError, NodeId};
pub use partition::{partition, partition_by_size, Partition};
pub use topo::{is_topological_order, levels, longest_path_len, topological_order};
pub use undirected::Graph;

//! K-way acyclic partitioning for hierarchical (coarsened) pebbling.
//!
//! A [`Partition`] splits a [`Dag`] into `k` non-empty groups such that
//! every edge goes from a group to the same or a later group
//! (`group(u) <= group(v)` for every edge `u -> v`). That monotonicity
//! invariant makes the *quotient* graph — one supernode per group, one
//! edge per pair of groups connected by at least one crossing edge —
//! acyclic by construction, so groups can be solved independently in
//! quotient topological order and stitched back together.
//!
//! Construction is level-banded: nodes are arranged in a
//! level-then-index topological order (the DAG's longest-path levels,
//! [`crate::topo::levels`]) and cut into `k` contiguous, size-balanced
//! bands. A local refinement pass then shifts nodes across adjacent
//! band boundaries whenever the move strictly reduces the number of
//! crossing edges without violating monotonicity or emptying a group —
//! a min-cut-flavoured cleanup, not a global optimum.

use crate::builder::DagBuilder;
use crate::dag::{Dag, NodeId};
use crate::topo::levels;

/// An assignment of every node to exactly one of `k` acyclic groups.
///
/// Invariants (established by [`partition`] and preserved by
/// refinement, property-tested downstream):
/// - every node belongs to exactly one group;
/// - every group is non-empty (so `k <= n` for non-empty DAGs);
/// - `group_of(u) <= group_of(v)` for every edge `u -> v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    group_of: Vec<u32>,
    groups: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Number of groups.
    #[inline]
    pub fn k(&self) -> usize {
        self.groups.len()
    }

    /// The group index of `v`.
    #[inline]
    pub fn group_of(&self, v: NodeId) -> usize {
        self.group_of[v.index()] as usize
    }

    /// The nodes of group `g`, in index order.
    #[inline]
    pub fn group(&self, g: usize) -> &[NodeId] {
        &self.groups[g]
    }

    /// All groups in order, as slices of node ids.
    pub fn groups(&self) -> impl Iterator<Item = &[NodeId]> {
        self.groups.iter().map(|g| g.as_slice())
    }

    /// Size of the largest group.
    pub fn max_group_size(&self) -> usize {
        self.groups.iter().map(|g| g.len()).max().unwrap_or(0)
    }

    /// Whether `group_of(u) <= group_of(v)` holds for every edge — the
    /// invariant that makes the quotient acyclic.
    pub fn is_monotone(&self, dag: &Dag) -> bool {
        dag.edges()
            .all(|(u, v)| self.group_of(u) <= self.group_of(v))
    }

    /// Number of edges crossing a group boundary.
    pub fn cut_size(&self, dag: &Dag) -> usize {
        dag.edges()
            .filter(|&(u, v)| self.group_of(u) != self.group_of(v))
            .count()
    }

    /// All crossing edges `(u, v)` with `group_of(u) < group_of(v)` —
    /// the values that must travel through slow memory when groups are
    /// pebbled independently.
    pub fn interface_edges<'a>(
        &'a self,
        dag: &'a Dag,
    ) -> impl Iterator<Item = (NodeId, NodeId)> + 'a {
        dag.edges()
            .filter(move |&(u, v)| self.group_of(u) != self.group_of(v))
    }

    /// The external inputs of group `g`: nodes outside `g` with at
    /// least one successor inside `g`, in index order, deduplicated. By
    /// monotonicity they all live in strictly earlier groups.
    pub fn external_inputs(&self, dag: &Dag, g: usize) -> Vec<NodeId> {
        let mut ext: Vec<NodeId> = self.groups[g]
            .iter()
            .flat_map(|&v| dag.preds(v).iter().copied())
            .filter(|&u| self.group_of(u) != g)
            .collect();
        ext.sort_unstable();
        ext.dedup();
        ext
    }

    /// The quotient graph: one node per group, labelled `g0, g1, …`,
    /// one edge per ordered pair of groups joined by a crossing edge.
    /// Monotonicity means every quotient edge goes from a lower to a
    /// strictly higher group index, so the builder's cycle check can
    /// never fire.
    pub fn quotient(&self, dag: &Dag) -> Dag {
        let mut b = DagBuilder::new(0);
        for g in 0..self.k() {
            b.add_labeled_node(format!("g{g}"));
        }
        for (u, v) in self.interface_edges(dag) {
            b.add_edge(self.group_of(u), self.group_of(v));
        }
        b.build()
            .expect("monotone partitions quotient to a DAG by construction")
    }

    fn rebuild_groups(group_of: &[u32], k: usize) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); k];
        for (i, &g) in group_of.iter().enumerate() {
            groups[g as usize].push(NodeId::new(i));
        }
        groups
    }
}

/// Partitions `dag` into (at most) `k` groups. `k` is clamped to
/// `[1, n]` for non-empty DAGs; an empty DAG yields zero groups.
///
/// The split is level-banded and size-balanced, followed by
/// [`REFINEMENT_SWEEPS`] local boundary-refinement sweeps that shift
/// nodes between adjacent groups when that strictly reduces the cut.
pub fn partition(dag: &Dag, k: usize) -> Partition {
    let n = dag.n();
    if n == 0 {
        return Partition {
            group_of: Vec::new(),
            groups: Vec::new(),
        };
    }
    let k = k.clamp(1, n);

    // Level-then-index order is topological: every edge raises the level.
    let level = levels(dag);
    let mut order: Vec<NodeId> = dag.nodes().collect();
    order.sort_by_key(|&v| (level[v.index()], v.index()));

    // Contiguous size-balanced bands over that order: the first `n % k`
    // groups get one extra node. Contiguity in a topological order is
    // exactly the monotonicity invariant.
    let mut group_of = vec![0u32; n];
    let (base, extra) = (n / k, n % k);
    let mut pos = 0;
    for g in 0..k {
        let size = base + usize::from(g < extra);
        for &v in &order[pos..pos + size] {
            group_of[v.index()] = g as u32;
        }
        pos += size;
    }

    refine(dag, &mut group_of, k);

    let groups = Partition::rebuild_groups(&group_of, k);
    Partition { group_of, groups }
}

/// Partitions `dag` so no group exceeds `target_size` nodes (the knob
/// hierarchical solvers use: pick the largest group size an inner
/// solver handles comfortably).
pub fn partition_by_size(dag: &Dag, target_size: usize) -> Partition {
    let target = target_size.max(1);
    partition(dag, dag.n().div_ceil(target))
}

/// Boundary-refinement sweeps performed by [`partition`].
pub const REFINEMENT_SWEEPS: usize = 2;

/// Local refinement: forward then backward passes trying to move each
/// node one group up or down. A move is accepted only when it strictly
/// reduces the cut, keeps the partition monotone, and keeps both the
/// source group non-empty and the target group within a 25% size slack
/// of the balanced size (so refinement cannot collapse the banding).
fn refine(dag: &Dag, group_of: &mut [u32], k: usize) {
    if k <= 1 {
        return;
    }
    let n = dag.n();
    let max_size = n.div_ceil(k) + n.div_ceil(k * 4).max(1);
    let mut sizes = vec![0usize; k];
    for &g in group_of.iter() {
        sizes[g as usize] += 1;
    }

    // Cut-delta of reassigning v to g_new: each incident edge flips
    // between internal and crossing depending only on whether the
    // endpoint groups match.
    let delta = |group_of: &[u32], v: NodeId, g_new: u32| -> i64 {
        let g_old = group_of[v.index()];
        let mut d = 0i64;
        for &u in dag.preds(v).iter().chain(dag.succs(v).iter()) {
            let gu = group_of[u.index()];
            d += i64::from(gu != g_new) - i64::from(gu != g_old);
        }
        d
    };

    for sweep in 0..REFINEMENT_SWEEPS {
        let mut moved = false;
        let ids: Box<dyn Iterator<Item = usize>> = if sweep % 2 == 0 {
            Box::new(0..n)
        } else {
            Box::new((0..n).rev())
        };
        for i in ids {
            let v = NodeId::new(i);
            let g = group_of[i];
            for g_new in [g.checked_sub(1), (g + 1 < k as u32).then_some(g + 1)]
                .into_iter()
                .flatten()
            {
                if sizes[g as usize] <= 1 || sizes[g_new as usize] >= max_size {
                    continue;
                }
                // Monotonicity: moving down needs all preds at or below
                // the new group; moving up needs all succs at or above.
                let legal = if g_new < g {
                    dag.preds(v).iter().all(|&u| group_of[u.index()] <= g_new)
                } else {
                    dag.succs(v).iter().all(|&u| group_of[u.index()] >= g_new)
                };
                if legal && delta(group_of, v, g_new) < 0 {
                    group_of[i] = g_new;
                    sizes[g as usize] -= 1;
                    sizes[g_new as usize] += 1;
                    moved = true;
                    break;
                }
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layered_seeded(layers: usize, width: usize, max_indeg: usize, seed: u64) -> Dag {
        generate::layered(layers, width, max_indeg, &mut StdRng::seed_from_u64(seed))
    }

    fn gnp_seeded(n: usize, p: f64, max_indeg: usize, seed: u64) -> Dag {
        generate::gnp_dag(n, p, max_indeg, &mut StdRng::seed_from_u64(seed))
    }

    fn diamond() -> Dag {
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn k1_is_the_identity_partition() {
        let d = diamond();
        let p = partition(&d, 1);
        assert_eq!(p.k(), 1);
        assert_eq!(p.group(0).len(), 4);
        assert_eq!(p.cut_size(&d), 0);
        assert_eq!(p.quotient(&d).n(), 1);
    }

    #[test]
    fn every_node_in_exactly_one_group() {
        let d = layered_seeded(5, 4, 3, 42);
        for k in 1..=d.n() {
            let p = partition(&d, k);
            let mut seen = vec![0usize; d.n()];
            for (g, nodes) in p.groups().enumerate() {
                assert!(!nodes.is_empty(), "group {g} of k={k} is empty");
                for &v in nodes {
                    seen[v.index()] += 1;
                    assert_eq!(p.group_of(v), g);
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "k={k}: {seen:?}");
        }
    }

    #[test]
    fn partitions_are_monotone_and_quotients_acyclic() {
        let d = layered_seeded(6, 5, 3, 7);
        for k in [1, 2, 3, 5, 8, d.n()] {
            let p = partition(&d, k);
            assert!(p.is_monotone(&d), "k={k}");
            let q = p.quotient(&d); // DagBuilder::build panics on cycles
            assert_eq!(q.n(), p.k());
        }
    }

    #[test]
    fn k_is_clamped_to_node_count() {
        let d = diamond();
        let p = partition(&d, 100);
        assert_eq!(p.k(), 4);
        assert!(p.groups().all(|g| g.len() == 1));
        assert_eq!(partition(&d, 0).k(), 1, "k=0 clamps to a single group");
    }

    #[test]
    fn empty_dag_partitions_to_zero_groups() {
        let d = DagBuilder::new(0).build().unwrap();
        let p = partition(&d, 3);
        assert_eq!(p.k(), 0);
        assert_eq!(p.cut_size(&d), 0);
    }

    #[test]
    fn groups_are_size_balanced() {
        let d = generate::chain(10);
        let p = partition(&d, 3);
        let sizes: Vec<usize> = p.groups().map(|g| g.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        // banding gives 4/3/3; refinement cannot empty or overfill
        assert!(sizes.iter().all(|&s| (1..=5).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn chain_partition_cuts_exactly_k_minus_1_edges() {
        let d = generate::chain(12);
        let p = partition(&d, 4);
        assert_eq!(p.cut_size(&d), 3);
        let q = p.quotient(&d);
        assert_eq!(q.num_edges(), 3);
    }

    #[test]
    fn external_inputs_are_cross_group_preds() {
        let d = diamond();
        let p = partition(&d, 2);
        // groups: {0,1,2} then {3} under level banding (levels 0,1,1,2)
        let ext = p.external_inputs(&d, 1);
        for u in &ext {
            assert_ne!(p.group_of(*u), 1);
            assert!(d.succs(*u).iter().any(|&v| p.group_of(v) == 1));
        }
        assert!(!ext.is_empty());
        assert!(p.external_inputs(&d, 0).is_empty());
    }

    #[test]
    fn partition_by_size_bounds_group_sizes() {
        let d = layered_seeded(8, 6, 2, 3);
        let p = partition_by_size(&d, 7);
        assert!(p.max_group_size() <= 7 + 2, "balanced banding + slack");
        assert!(p.is_monotone(&d));
    }

    #[test]
    fn refinement_never_increases_the_cut() {
        for seed in 0..20u64 {
            let d = gnp_seeded(24, 0.15, 4, seed);
            let p = partition(&d, 4);
            // recompute the unrefined banding for comparison
            let level = levels(&d);
            let mut order: Vec<NodeId> = d.nodes().collect();
            order.sort_by_key(|&v| (level[v.index()], v.index()));
            let mut banded = vec![0u32; d.n()];
            let (base, extra) = (d.n() / 4, d.n() % 4);
            let mut pos = 0;
            for g in 0..4 {
                let size = base + usize::from(g < extra);
                for &v in &order[pos..pos + size] {
                    banded[v.index()] = g as u32;
                }
                pos += size;
            }
            let banded_cut = d
                .edges()
                .filter(|&(u, v)| banded[u.index()] != banded[v.index()])
                .count();
            assert!(p.cut_size(&d) <= banded_cut, "seed {seed}");
        }
    }
}

//! Mutable construction of [`Dag`]s with validation.

use crate::dag::{Dag, GraphError, NodeId};

/// Incremental builder for a [`Dag`].
///
/// Nodes are pre-declared by count (or added with [`add_node`]); edges may
/// be added in any order and duplicates are coalesced. [`build`] validates
/// that the edge set is acyclic and produces the immutable CSR form.
///
/// [`add_node`]: DagBuilder::add_node
/// [`build`]: DagBuilder::build
///
/// # Example
/// ```
/// use rbp_graph::DagBuilder;
/// let mut b = DagBuilder::new(3);
/// b.add_edge(0, 2);
/// b.add_edge(1, 2);
/// let dag = b.build().unwrap();
/// assert_eq!(dag.indegree(rbp_graph::NodeId::new(2)), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DagBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
    labels: Vec<(u32, String)>,
}

impl DagBuilder {
    /// Starts a builder with `n` initial nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        DagBuilder {
            n,
            edges: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Current number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.n);
        self.n += 1;
        id
    }

    /// Adds a fresh labelled node and returns its id. Labels are carried
    /// into the built [`Dag`] for diagnostics and DOT export.
    pub fn add_labeled_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = self.add_node();
        self.labels.push((id.index() as u32, label.into()));
        id
    }

    /// Adds `count` fresh nodes and returns their ids.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Sets the label of an existing node.
    pub fn set_label(&mut self, v: NodeId, label: impl Into<String>) {
        self.labels.push((v.index() as u32, label.into()));
    }

    /// Adds the directed edge `from -> to` by raw index.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.edges.push((from as u32, to as u32));
    }

    /// Adds the directed edge `from -> to` by node id.
    pub fn add_edge_ids(&mut self, from: NodeId, to: NodeId) {
        self.edges.push((from.index() as u32, to.index() as u32));
    }

    /// Adds edges from every node in `from` to `to` (an *input group* edge
    /// bundle, the basic element of the paper's constructions).
    pub fn add_group_edges(&mut self, from: &[NodeId], to: NodeId) {
        for &u in from {
            self.add_edge_ids(u, to);
        }
    }

    /// Validates and freezes the graph.
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`]
    /// for malformed edges and [`GraphError::Cycle`] if the edge set is not
    /// acyclic. Duplicate edges are merged silently.
    pub fn build(mut self) -> Result<Dag, GraphError> {
        let n = self.n;
        for &(u, v) in &self.edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: u as usize,
                    n,
                });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: v as usize,
                    n,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u as usize });
            }
        }
        self.edges.sort_unstable();
        self.edges.dedup();

        // Build successor CSR (edges sorted by source already).
        let mut succ_offsets = vec![0u32; n + 1];
        for &(u, _) in &self.edges {
            succ_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
        }
        let succ_targets: Vec<NodeId> = self
            .edges
            .iter()
            .map(|&(_, v)| NodeId::new(v as usize))
            .collect();

        // Build predecessor CSR by counting then placing.
        let mut pred_offsets = vec![0u32; n + 1];
        for &(_, v) in &self.edges {
            pred_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            pred_offsets[i + 1] += pred_offsets[i];
        }
        let mut cursor: Vec<u32> = pred_offsets[..n].to_vec();
        let mut pred_targets = vec![NodeId::new(0); self.edges.len()];
        for &(u, v) in &self.edges {
            let c = &mut cursor[v as usize];
            pred_targets[*c as usize] = NodeId::new(u as usize);
            *c += 1;
        }
        // Sources were sorted by (u, v); per-target pred lists need their
        // own sort for binary-search lookups.
        for v in 0..n {
            pred_targets[pred_offsets[v] as usize..pred_offsets[v + 1] as usize].sort_unstable();
        }

        let mut labels = vec![String::new(); n];
        for (i, l) in self.labels {
            labels[i as usize] = l;
        }

        let dag = Dag {
            pred_offsets,
            pred_targets,
            succ_offsets,
            succ_targets,
            labels,
            masks: Default::default(),
        };

        if let Some(witness) = crate::topo::find_cycle_witness(&dag) {
            return Err(GraphError::Cycle {
                witness: witness.index(),
            });
        }
        Ok(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_merge() {
        let mut b = DagBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let d = b.build().unwrap();
        assert_eq!(d.num_edges(), 1);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let mut b = DagBuilder::new(2);
        b.add_edge(0, 5);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::NodeOutOfRange { node: 5, n: 2 }
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = DagBuilder::new(2);
        b.add_edge(1, 1);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn cycle_rejected_with_witness() {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        match b.build().unwrap_err() {
            GraphError::Cycle { witness } => assert!(witness < 3),
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn add_node_grows_graph() {
        let mut b = DagBuilder::new(0);
        let a = b.add_node();
        let c = b.add_labeled_node("sink");
        b.add_edge_ids(a, c);
        let d = b.build().unwrap();
        assert_eq!(d.n(), 2);
        assert_eq!(d.label(c), "sink");
        assert_eq!(d.label(a), "");
    }

    #[test]
    fn group_edges_bundle() {
        let mut b = DagBuilder::new(0);
        let group = b.add_nodes(3);
        let t = b.add_node();
        b.add_group_edges(&group, t);
        let d = b.build().unwrap();
        assert_eq!(d.indegree(t), 3);
        assert_eq!(d.preds(t), group.as_slice());
    }

    #[test]
    fn pred_lists_sorted_even_with_unsorted_input() {
        let mut b = DagBuilder::new(4);
        b.add_edge(2, 3);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        let d = b.build().unwrap();
        let p: Vec<usize> = d.preds(NodeId::new(3)).iter().map(|v| v.index()).collect();
        assert_eq!(p, vec![0, 1, 2]);
    }
}

//! Topological orderings and cycle detection.

use crate::dag::{Dag, NodeId};

/// Returns the nodes of `dag` in a topological order (Kahn's algorithm,
/// smallest-index-first among ready nodes, so the order is deterministic).
///
/// `Dag`s are acyclic by construction, so this always returns all nodes.
pub fn topological_order(dag: &Dag) -> Vec<NodeId> {
    kahn(dag).order
}

/// Returns `Some(witness)` for a node lying on a directed cycle, or `None`
/// if the edge set is acyclic. Used by the builder before the `Dag`
/// invariant is established.
pub(crate) fn find_cycle_witness(dag: &Dag) -> Option<NodeId> {
    let r = kahn(dag);
    if r.order.len() == dag.n() {
        None
    } else {
        // Any node missing from the order has an in-edge from the cycle.
        let mut seen = vec![false; dag.n()];
        for v in &r.order {
            seen[v.index()] = true;
        }
        dag.nodes().find(|v| !seen[v.index()])
    }
}

struct KahnResult {
    order: Vec<NodeId>,
}

fn kahn(dag: &Dag) -> KahnResult {
    let n = dag.n();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| dag.indegree(NodeId::new(i)) as u32)
        .collect();
    // A binary heap would give lexicographically-smallest order; a simple
    // sorted frontier suffices and keeps this allocation-light. We use a
    // BinaryHeap of Reverse for determinism.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut ready: BinaryHeap<Reverse<u32>> = (0..n as u32)
        .filter(|&i| indeg[i as usize] == 0)
        .map(Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(i)) = ready.pop() {
        let v = NodeId::new(i as usize);
        order.push(v);
        for &w in dag.succs(v) {
            let d = &mut indeg[w.index()];
            *d -= 1;
            if *d == 0 {
                ready.push(Reverse(w.index() as u32));
            }
        }
    }
    KahnResult { order }
}

/// Returns for each node its *level*: the length of the longest path from
/// any source to it (sources have level 0). This is the DAG's critical-path
/// structure; `levels().max()` is the longest path length.
pub fn levels(dag: &Dag) -> Vec<usize> {
    let mut level = vec![0usize; dag.n()];
    for v in topological_order(dag) {
        for &u in dag.preds(v) {
            level[v.index()] = level[v.index()].max(level[u.index()] + 1);
        }
    }
    level
}

/// Length of the longest directed path (number of edges) in the DAG.
pub fn longest_path_len(dag: &Dag) -> usize {
    levels(dag).into_iter().max().unwrap_or(0)
}

/// Checks that `order` is a permutation of all nodes consistent with the
/// edge direction (every edge goes from earlier to later in `order`).
pub fn is_topological_order(dag: &Dag, order: &[NodeId]) -> bool {
    if order.len() != dag.n() {
        return false;
    }
    let mut pos = vec![usize::MAX; dag.n()];
    for (i, v) in order.iter().enumerate() {
        if pos[v.index()] != usize::MAX {
            return false; // duplicate
        }
        pos[v.index()] = i;
    }
    dag.edges().all(|(u, v)| pos[u.index()] < pos[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;

    fn chain(n: usize) -> Dag {
        let mut b = DagBuilder::new(n);
        for i in 1..n {
            b.add_edge(i - 1, i);
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_order_is_identity() {
        let d = chain(5);
        let order = topological_order(&d);
        assert_eq!(order, (0..5).map(NodeId::new).collect::<Vec<_>>());
        assert!(is_topological_order(&d, &order));
    }

    #[test]
    fn diamond_order_valid_and_deterministic() {
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        let d = b.build().unwrap();
        let order = topological_order(&d);
        assert!(is_topological_order(&d, &order));
        // smallest-index-first tie-breaking
        assert_eq!(
            order,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn levels_and_longest_path() {
        let d = chain(6);
        assert_eq!(levels(&d), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(longest_path_len(&d), 5);
    }

    #[test]
    fn levels_on_diamond() {
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        let d = b.build().unwrap();
        assert_eq!(levels(&d), vec![0, 1, 1, 2]);
    }

    #[test]
    fn bad_orders_rejected() {
        let d = chain(3);
        let rev: Vec<NodeId> = (0..3).rev().map(NodeId::new).collect();
        assert!(!is_topological_order(&d, &rev));
        assert!(!is_topological_order(&d, &[NodeId::new(0)]));
        assert!(!is_topological_order(
            &d,
            &[NodeId::new(0), NodeId::new(0), NodeId::new(2)]
        ));
    }

    #[test]
    fn empty_graph_topo() {
        let d = DagBuilder::new(0).build().unwrap();
        assert!(topological_order(&d).is_empty());
        assert_eq!(longest_path_len(&d), 0);
    }
}

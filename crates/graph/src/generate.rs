//! Random DAG generators for tests, property checks, and Table 2
//! experiments.

use crate::builder::DagBuilder;
use crate::dag::Dag;
use rand::seq::SliceRandom;
use rand::Rng;

/// A random layered DAG: `layers` layers of `width` nodes each; each
/// non-first-layer node draws between 1 and `max_indegree` predecessors
/// uniformly from the previous layer.
///
/// Layered DAGs model staged computations (the common case in HPC
/// pipelines) and keep Δ controlled, which matters because pebbling
/// feasibility requires R ≥ Δ+1.
pub fn layered<R: Rng>(layers: usize, width: usize, max_indegree: usize, rng: &mut R) -> Dag {
    assert!(layers >= 1 && width >= 1);
    let max_indegree = max_indegree.clamp(1, width);
    let mut b = DagBuilder::new(layers * width);
    let node = |l: usize, w: usize| l * width + w;
    let mut pool: Vec<usize> = (0..width).collect();
    for l in 1..layers {
        for w in 0..width {
            let d = rng.gen_range(1..=max_indegree);
            pool.shuffle(rng);
            for &p in pool.iter().take(d) {
                b.add_edge(node(l - 1, p), node(l, w));
            }
        }
    }
    b.build().expect("layered construction is acyclic")
}

/// A uniform random DAG on `n` nodes: take the identity order as the
/// topological order and include each forward edge `(i, j)`, `i < j`, with
/// probability `p` — then drop edges at nodes whose indegree would exceed
/// `max_indegree` (keeping a uniform sample of the incoming candidates).
pub fn gnp_dag<R: Rng>(n: usize, p: f64, max_indegree: usize, rng: &mut R) -> Dag {
    let mut b = DagBuilder::new(n);
    for j in 1..n {
        let mut incoming: Vec<usize> = (0..j).filter(|_| rng.gen_bool(p)).collect();
        if incoming.len() > max_indegree {
            incoming.shuffle(rng);
            incoming.truncate(max_indegree);
        }
        for i in incoming {
            b.add_edge(i, j);
        }
    }
    b.build().expect("forward edges cannot form a cycle")
}

/// A random in-tree: node 0 is the root *sink*; every other node points
/// toward the root through a random parent among lower indices, giving a
/// tree where all paths flow to node 0. `max_indegree` caps children per
/// node.
pub fn random_in_tree<R: Rng>(n: usize, max_indegree: usize, rng: &mut R) -> Dag {
    assert!(n >= 1);
    let mut b = DagBuilder::new(n);
    let mut child_count = vec![0usize; n];
    for v in 1..n {
        // choose a parent among 0..v with remaining capacity
        let candidates: Vec<usize> = (0..v).filter(|&u| child_count[u] < max_indegree).collect();
        let &parent = candidates
            .choose(rng)
            .expect("node 0 always has capacity while tree is small");
        child_count[parent] += 1;
        b.add_edge(v, parent);
    }
    b.build().expect("tree is acyclic")
}

/// A random two-terminal series-parallel DAG on `n ≥ 2` nodes.
///
/// Grown by repeated expansion from the single edge `0 → 1`: each step
/// picks a random edge `(u, v)` and either *series-splits* it into
/// `u → w → v` or adds a *parallel* branch `u → w → v` alongside it
/// (only while `v`'s indegree stays below `max_indegree`). Every DAG
/// produced this way is series-parallel, which matters for the
/// verification harness: SP DAGs are the tractable frontier where many
/// pebbling heuristics are conjectured near-optimal, so they probe a
/// different failure surface than layered or G(n,p) ensembles.
pub fn series_parallel<R: Rng>(n: usize, max_indegree: usize, rng: &mut R) -> Dag {
    assert!(n >= 2, "a two-terminal SP DAG needs at least 2 nodes");
    let max_indegree = max_indegree.max(1);
    let mut edges: Vec<(usize, usize)> = vec![(0, 1)];
    let mut indeg = vec![0usize; n];
    indeg[1] = 1;
    for w in 2..n {
        let ei = rng.gen_range(0..edges.len());
        let (u, v) = edges[ei];
        if indeg[v] < max_indegree && rng.gen_bool(0.5) {
            // parallel: keep (u, v), add the branch u → w → v
            edges.push((u, w));
            edges.push((w, v));
            indeg[v] += 1;
        } else {
            // series: replace (u, v) with u → w → v
            edges[ei] = (u, w);
            edges.push((w, v));
        }
        indeg[w] = 1;
    }
    let mut b = DagBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().expect("series-parallel expansion is acyclic")
}

/// A long dependency chain of `n` nodes — the minimal sequential workload.
pub fn chain(n: usize) -> Dag {
    let mut b = DagBuilder::new(n);
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.build().expect("chain is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layered_respects_structure() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = layered(4, 5, 3, &mut rng);
        assert_eq!(d.n(), 20);
        assert!(d.max_indegree() <= 3);
        // first layer are sources
        for w in 0..5 {
            assert!(d.is_source(crate::NodeId::new(w)));
        }
        // every non-first-layer node has at least one predecessor
        for i in 5..20 {
            assert!(d.indegree(crate::NodeId::new(i)) >= 1);
        }
    }

    #[test]
    fn gnp_dag_bounds_indegree() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = gnp_dag(40, 0.5, 4, &mut rng);
        assert!(d.max_indegree() <= 4);
        assert_eq!(d.n(), 40);
    }

    #[test]
    fn gnp_dag_extreme_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = gnp_dag(10, 0.0, 3, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let dense = gnp_dag(10, 1.0, 100, &mut rng);
        assert_eq!(dense.num_edges(), 45);
    }

    #[test]
    fn in_tree_has_single_sink() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = random_in_tree(30, 2, &mut rng);
        assert_eq!(d.sinks().len(), 1);
        assert_eq!(d.sinks()[0].index(), 0);
        assert!(d.max_indegree() <= 2);
        assert_eq!(d.num_edges(), 29);
    }

    #[test]
    fn chain_shape() {
        let d = chain(10);
        assert_eq!(d.num_edges(), 9);
        assert_eq!(d.max_indegree(), 1);
        assert_eq!(d.sources().len(), 1);
        assert_eq!(d.sinks().len(), 1);
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let d1 = layered(3, 4, 2, &mut StdRng::seed_from_u64(42));
        let d2 = layered(3, 4, 2, &mut StdRng::seed_from_u64(42));
        assert_eq!(d1, d2);
    }
}

//! A fast, non-cryptographic hasher for `u64`-word keys.
//!
//! The exact solvers hash millions of short `u64`-word state keys, and
//! the instance canonicalizer (`rbp-core`) digests whole DAGs with the
//! same scheme; SipHash is needlessly slow for that, and HashDoS is not
//! a concern for these internals. This is the Fx/rustc multiply-rotate
//! scheme specialized to word-sized writes.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word hasher (the rustc "Fx" scheme).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only used for padding/odd cases; keys hash via write_u64 below.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hashes a `u64` word slice directly, bypassing the `Hash` trait's
/// length-prefix and byte-slice machinery. This is the hot hash of the
/// exact solver's arena intern table: one rotate-xor-multiply per word.
#[inline]
pub fn hash_words(words: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &w in words {
        h.add_word(w);
    }
    h.finish()
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_words_hash_differently() {
        let mut a = FxHasher::default();
        a.write_u64(1);
        let mut b = FxHasher::default();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hash_depends_on_order() {
        let mut a = FxHasher::default();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = FxHasher::default();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_works_with_fx() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(42, "x");
        assert_eq!(m.get(&42), Some(&"x"));
    }

    #[test]
    fn byte_writes_cover_padding_path() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hash_words_matches_sequential_u64_writes() {
        let words = [0u64, 7, u64::MAX, 42];
        let mut h = FxHasher::default();
        for &w in &words {
            h.write_u64(w);
        }
        assert_eq!(hash_words(&words), h.finish());
        assert_ne!(hash_words(&words), hash_words(&words[..3]));
    }
}

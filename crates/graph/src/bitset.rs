//! A fixed-capacity bitset used for pebbling states and graph algorithms.
//!
//! Pebbling solvers hash millions of states, so the representation is kept
//! as lean as possible: a boxed slice of `u64` words with no stored length
//! beyond the word count. All operations are branch-light and allocation-free
//! after construction.

use std::fmt;

/// Number of bits per storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `capacity` bits (at least one, so
/// empty universes still have a valid word row).
///
/// This is the shared sizing rule for every packed-word representation in
/// the workspace: [`BitSet`], the [`Dag`](crate::Dag) adjacency masks, and
/// the exact solver's state keys all agree on it, which lets them combine
/// word rows with plain `AND`/`ANDN` loops.
#[inline]
pub const fn words_for(capacity: usize) -> usize {
    let w = capacity.div_ceil(WORD_BITS);
    if w == 0 {
        1
    } else {
        w
    }
}

/// A fixed-capacity set of `usize` indices backed by `u64` words.
///
/// Capacity is fixed at construction; indices must be `< capacity`.
/// Two bitsets are equal iff they have the same words (the capacity is
/// intentionally not part of equality so that sets from equally-sized
/// universes compare cheaply).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Box<[u64]>,
}

impl BitSet {
    /// Creates an empty set with room for `capacity` indices.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0u64; words_for(capacity)].into_boxed_slice(),
        }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Creates a set from an iterator of indices, sized to `capacity`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, iter: I) -> Self {
        let mut s = Self::new(capacity);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Number of bits this set can hold (rounded up to whole words).
    #[inline]
    pub fn word_capacity(&self) -> usize {
        self.words.len() * WORD_BITS
    }

    /// Inserts `index`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        let mask = 1u64 << b;
        let had = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !had
    }

    /// Removes `index`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        let mask = 1u64 << b;
        let had = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        had
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// `self ∪= other`. Panics if word counts differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.words.len(), other.words.len(), "bitset size mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// `self ∩= other`. Panics if word counts differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.words.len(), other.words.len(), "bitset size mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// `self \= other`. Panics if word counts differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.words.len(), other.words.len(), "bitset size mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Whether `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Size of `self ∩ other` without materializing it.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the contained indices in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Raw words, little-endian bit order; used by state hashing.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a bitset sized to the maximum index seen.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let cap = indices.iter().copied().max().map_or(0, |m| m + 1);
        Self::from_indices(cap, indices)
    }
}

/// Iterator over set bits, produced by [`BitSet::iter`].
pub struct BitSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert!(!s.contains(99));
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.len(), 4);
        assert!(s.contains(129));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let s = BitSet::from_indices(200, [5, 199, 0, 64, 63]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn full_contains_everything_below_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70), "bits beyond capacity stay clear");
    }

    #[test]
    fn union_intersect_difference() {
        let a0 = BitSet::from_indices(10, [1, 2, 3]);
        let b = BitSet::from_indices(10, [3, 4]);

        let mut u = a0.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);

        let mut i = a0.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);

        let mut d = a0.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn subset_and_disjoint_relations() {
        let a = BitSet::from_indices(100, [10, 20]);
        let b = BitSet::from_indices(100, [10, 20, 30]);
        let c = BitSet::from_indices(100, [40]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.intersection_len(&c), 0);
    }

    #[test]
    fn equality_and_hash_follow_content() {
        use std::collections::HashSet;
        let a = BitSet::from_indices(64, [1, 2]);
        let mut b = BitSet::new(64);
        b.insert(2);
        b.insert(1);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::from_indices(10, [0, 9]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn words_for_rounds_up_and_never_returns_zero() {
        assert_eq!(words_for(0), 1);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [3usize, 7, 1].into_iter().collect();
        assert!(s.contains(7));
        assert_eq!(s.len(), 3);
    }
}

//! A minimal text format for DAGs, for saving and sharing pebbling
//! instances.
//!
//! Format (line-oriented, `#` comments allowed):
//! ```text
//! dag <n>
//! label <node> <text>       # optional, any number
//! edge <from> <to>          # one per edge
//! ```
//! Node ids are dense indices `0..n`. The parser validates ranges and
//! acyclicity through [`DagBuilder`], so a loaded graph carries the same
//! invariants as a built one.
//!
//! This block is also the graph section of the versioned instance and
//! solution documents (`rbp-core`'s `io` module and the `rbp-service`
//! wire protocol). Embedding parsers call [`parse_dag_at`] with the
//! block's position in the enclosing document so every [`ParseError`]
//! reports the *document* line number, not the block-relative one.

use crate::builder::DagBuilder;
use crate::dag::{Dag, GraphError};
use std::fmt::Write as _;

/// Largest node count [`parse_dag`] accepts from a `dag <n>` header.
///
/// The header is untrusted wire input and the builder sizes per-node
/// storage from it, so an absurd declaration (`dag 99999999999`) would
/// otherwise abort the process on an impossible allocation before a
/// single node line is read. 16M nodes is orders of magnitude beyond
/// any instance this workspace generates while keeping the eager
/// reservation in the tens of megabytes.
pub const MAX_WIRE_NODES: usize = 1 << 24;

/// Errors from [`parse_dag`] / [`parse_dag_at`]. Every syntactic variant
/// carries the 1-based line number it was raised on (offset by the
/// `first_line` of [`parse_dag_at`] when the block is embedded in a
/// larger document) plus the offending token, so wire-protocol callers
/// can report errors without re-lexing the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The first non-comment line must be `dag <n>`.
    MissingHeader,
    /// A statement could not be parsed.
    Malformed {
        /// 1-based line number of the offending statement.
        line: usize,
        /// The token (or statement fragment) that was rejected.
        token: String,
        /// What the parser expected in its place.
        expected: &'static str,
    },
    /// The edge set was rejected (cycle, range, self-loop).
    Graph(GraphError),
}

impl ParseError {
    fn malformed(line: usize, token: impl Into<String>, expected: &'static str) -> Self {
        ParseError::Malformed {
            line,
            token: token.into(),
            expected,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing 'dag <n>' header"),
            ParseError::Malformed {
                line,
                token,
                expected,
            } => write!(f, "line {line}: unexpected '{token}', expected {expected}"),
            ParseError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a DAG in the text format (stable output: header, labels in
/// id order, edges grouped by target).
pub fn write_dag(dag: &Dag) -> String {
    let mut out = String::with_capacity(16 + dag.n() * 8 + dag.num_edges() * 12);
    let _ = writeln!(out, "dag {}", dag.n());
    for v in dag.nodes() {
        let label = dag.label(v);
        if !label.is_empty() {
            let _ = writeln!(out, "label {} {}", v.index(), label);
        }
    }
    for (u, v) in dag.edges() {
        let _ = writeln!(out, "edge {} {}", u.index(), v.index());
    }
    out
}

/// Parses the text format back into a validated [`Dag`].
pub fn parse_dag(text: &str) -> Result<Dag, ParseError> {
    parse_dag_at(text, 1)
}

/// Like [`parse_dag`], for a `dag` block embedded in a larger document:
/// `first_line` is the 1-based line number (in the enclosing document)
/// of the first line of `text`, and every reported [`ParseError`] line
/// number is in document coordinates.
pub fn parse_dag_at(text: &str, first_line: usize) -> Result<Dag, ParseError> {
    let mut builder: Option<DagBuilder> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = first_line + i;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("nonempty line");
        match (keyword, &mut builder) {
            ("dag", b @ None) => {
                let token = parts.next().unwrap_or("");
                let n: usize = token
                    .parse()
                    .map_err(|_| ParseError::malformed(lineno, token, "node count in 'dag <n>'"))?;
                if n > MAX_WIRE_NODES {
                    return Err(ParseError::malformed(
                        lineno,
                        token,
                        "a node count within the wire limit (see MAX_WIRE_NODES)",
                    ));
                }
                *b = Some(DagBuilder::new(n));
            }
            ("edge", Some(b)) => {
                let (Some(u), Some(v)) = (
                    parts.next().and_then(|s| s.parse::<usize>().ok()),
                    parts.next().and_then(|s| s.parse::<usize>().ok()),
                ) else {
                    return Err(ParseError::malformed(
                        lineno,
                        line,
                        "two node ids in 'edge <from> <to>'",
                    ));
                };
                b.add_edge(u, v);
            }
            ("label", Some(b)) => {
                let token = parts.next().unwrap_or("");
                let Ok(v) = token.parse::<usize>() else {
                    return Err(ParseError::malformed(
                        lineno,
                        token,
                        "node id in 'label <node> <text>'",
                    ));
                };
                if v >= b.n() {
                    return Err(ParseError::malformed(
                        lineno,
                        token,
                        "node id within the declared 'dag <n>' range",
                    ));
                }
                let label: Vec<&str> = parts.collect();
                b.set_label(crate::dag::NodeId::new(v), label.join(" "));
            }
            (_, None) => return Err(ParseError::MissingHeader),
            _ => {
                return Err(ParseError::malformed(
                    lineno,
                    keyword,
                    "'edge', 'label', or a comment after the 'dag <n>' header",
                ))
            }
        }
    }
    builder
        .ok_or(ParseError::MissingHeader)?
        .build()
        .map_err(ParseError::Graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use crate::generate;

    fn line_of(err: ParseError) -> usize {
        match err {
            ParseError::Malformed { line, .. } => line,
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_structure_and_labels() {
        let mut b = DagBuilder::new(0);
        let x = b.add_labeled_node("input x");
        let y = b.add_node();
        let z = b.add_labeled_node("out");
        b.add_edge_ids(x, z);
        b.add_edge_ids(y, z);
        let dag = b.build().unwrap();
        let text = write_dag(&dag);
        let back = parse_dag(&text).unwrap();
        assert_eq!(back, dag);
        assert_eq!(back.label(x), "input x");
        assert_eq!(back.label(y), "");
    }

    #[test]
    fn round_trip_random_dags() {
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            let dag = generate::gnp_dag(15, 0.3, 4, &mut rng);
            assert_eq!(parse_dag(&write_dag(&dag)).unwrap(), dag);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\ndag 2\n# another\nedge 0 1\n";
        let dag = parse_dag(text).unwrap();
        assert_eq!(dag.n(), 2);
        assert_eq!(dag.num_edges(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(parse_dag("edge 0 1\n"), Err(ParseError::MissingHeader));
        assert_eq!(parse_dag(""), Err(ParseError::MissingHeader));
    }

    #[test]
    fn malformed_lines_located() {
        assert_eq!(line_of(parse_dag("dag 2\nedge 0\n").unwrap_err()), 2);
        assert_eq!(line_of(parse_dag("dag x\n").unwrap_err()), 1);
        assert_eq!(line_of(parse_dag("dag 2\nfrob 1 2\n").unwrap_err()), 2);
    }

    #[test]
    fn malformed_errors_name_the_offending_token() {
        let err = parse_dag("dag 2\nfrob 1 2\n").unwrap_err();
        match &err {
            ParseError::Malformed { token, .. } => assert_eq!(token, "frob"),
            other => panic!("{other:?}"),
        }
        assert!(err.to_string().contains("frob"), "{err}");
        let err = parse_dag("dag x\n").unwrap_err();
        assert!(err.to_string().contains("'x'"), "{err}");
    }

    #[test]
    fn embedded_blocks_report_document_line_numbers() {
        // the block starts on document line 5, the bad edge is its 2nd line
        let err = parse_dag_at("dag 2\nedge 0\n", 5).unwrap_err();
        assert_eq!(line_of(err), 6);
        // offset parsing succeeds on a valid block
        let dag = parse_dag_at("dag 2\nedge 0 1\n", 40).unwrap();
        assert_eq!(dag.num_edges(), 1);
    }

    #[test]
    fn cyclic_input_rejected_via_graph_error() {
        let text = "dag 2\nedge 0 1\nedge 1 0\n";
        assert!(matches!(parse_dag(text), Err(ParseError::Graph(_))));
    }

    #[test]
    fn label_with_spaces_survives() {
        let text = "dag 1\nlabel 0 a long node name\n";
        let dag = parse_dag(text).unwrap();
        assert_eq!(dag.label(crate::NodeId::new(0)), "a long node name");
    }

    #[test]
    fn out_of_range_label_rejected() {
        assert_eq!(line_of(parse_dag("dag 1\nlabel 5 x\n").unwrap_err()), 2);
    }

    #[test]
    fn hostile_node_count_rejected_without_allocating() {
        // a hostile header must be a located parse error, not an abort
        // on a multi-gigabyte reservation
        assert_eq!(line_of(parse_dag("dag 99999999999\n").unwrap_err()), 1);
        let just_over = format!("dag {}\n", MAX_WIRE_NODES + 1);
        assert_eq!(line_of(parse_dag(&just_over).unwrap_err()), 1);
    }
}

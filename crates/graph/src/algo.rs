//! Reachability and structural queries on DAGs.

use crate::bitset::BitSet;
use crate::dag::{Dag, NodeId};

/// The set of nodes reachable from `start` by following edges forward,
/// including `start` itself (i.e. `start` and its descendants).
pub fn descendants(dag: &Dag, start: NodeId) -> BitSet {
    let mut seen = BitSet::new(dag.n());
    let mut stack = vec![start];
    seen.insert(start.index());
    while let Some(v) = stack.pop() {
        for &w in dag.succs(v) {
            if seen.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    seen
}

/// The set of nodes that reach `target` by following edges forward,
/// including `target` itself (i.e. `target` and its ancestors).
pub fn ancestors(dag: &Dag, target: NodeId) -> BitSet {
    let mut seen = BitSet::new(dag.n());
    let mut stack = vec![target];
    seen.insert(target.index());
    while let Some(v) = stack.pop() {
        for &w in dag.preds(v) {
            if seen.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    seen
}

/// Whether there is a directed path from `u` to `v` (including `u == v`).
pub fn reaches(dag: &Dag, u: NodeId, v: NodeId) -> bool {
    descendants(dag, u).contains(v.index())
}

/// For every node, the number of sinks among its descendants. A node with
/// zero *live* sinks below it can never matter again once its last
/// successor is computed — the quantity driving eviction heuristics.
pub fn sinks_below(dag: &Dag) -> Vec<u32> {
    // Count reachable sinks exactly via per-node bitsets in reverse
    // topological order. O(n^2/64) — fine at solver scales.
    let n = dag.n();
    let mut reach: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    let order = crate::topo::topological_order(dag);
    for &v in order.iter().rev() {
        if dag.is_sink(v) {
            reach[v.index()].insert(v.index());
        }
        let succs: Vec<NodeId> = dag.succs(v).to_vec();
        for w in succs {
            let (a, b) = if v.index() < w.index() {
                let (lo, hi) = reach.split_at_mut(w.index());
                (&mut lo[v.index()], &hi[0])
            } else {
                let (lo, hi) = reach.split_at_mut(v.index());
                (&mut hi[0], &lo[w.index()])
            };
            a.union_with(b);
        }
    }
    reach.iter().map(|s| s.len() as u32).collect()
}

/// Transitive closure as one reachability bitset per node (descendants,
/// inclusive). Quadratic memory; intended for analysis of small graphs.
pub fn transitive_closure(dag: &Dag) -> Vec<BitSet> {
    let n = dag.n();
    let mut reach: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    let order = crate::topo::topological_order(dag);
    for &v in order.iter().rev() {
        reach[v.index()].insert(v.index());
        let succs: Vec<NodeId> = dag.succs(v).to_vec();
        for w in succs {
            let (a, b) = if v.index() < w.index() {
                let (lo, hi) = reach.split_at_mut(w.index());
                (&mut lo[v.index()], &hi[0])
            } else {
                let (lo, hi) = reach.split_at_mut(v.index());
                (&mut hi[0], &lo[w.index()])
            };
            a.union_with(b);
        }
    }
    reach
}

/// Number of distinct source-to-`v` paths per node, saturating at
/// `u64::MAX`. Useful as a quick structural fingerprint in tests.
pub fn path_counts(dag: &Dag) -> Vec<u64> {
    let mut counts = vec![0u64; dag.n()];
    for v in crate::topo::topological_order(dag) {
        if dag.is_source(v) {
            counts[v.index()] = 1;
        } else {
            let mut total: u64 = 0;
            for &u in dag.preds(v) {
                total = total.saturating_add(counts[u.index()]);
            }
            counts[v.index()] = total;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn descendants_inclusive() {
        let d = diamond();
        let desc = descendants(&d, NodeId::new(1));
        assert_eq!(desc.iter().collect::<Vec<_>>(), vec![1, 3]);
        let all = descendants(&d, NodeId::new(0));
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn ancestors_inclusive() {
        let d = diamond();
        let anc = ancestors(&d, NodeId::new(3));
        assert_eq!(anc.len(), 4);
        let anc1 = ancestors(&d, NodeId::new(1));
        assert_eq!(anc1.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn reaches_is_reflexive_and_directional() {
        let d = diamond();
        assert!(reaches(&d, NodeId::new(0), NodeId::new(3)));
        assert!(reaches(&d, NodeId::new(2), NodeId::new(2)));
        assert!(!reaches(&d, NodeId::new(3), NodeId::new(0)));
        assert!(!reaches(&d, NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn sinks_below_counts() {
        // Two sinks: 3 and 4; node 1 reaches only 3, node 2 reaches both.
        let mut b = DagBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.add_edge(2, 4);
        let d = b.build().unwrap();
        assert_eq!(sinks_below(&d), vec![2, 1, 2, 1, 1]);
    }

    #[test]
    fn path_counts_diamond() {
        let d = diamond();
        assert_eq!(path_counts(&d), vec![1, 1, 1, 2]);
    }

    #[test]
    fn transitive_closure_matches_reaches() {
        let d = diamond();
        let tc = transitive_closure(&d);
        for u in d.nodes() {
            for v in d.nodes() {
                assert_eq!(tc[u.index()].contains(v.index()), reaches(&d, u, v));
            }
        }
    }
}

//! Simple undirected graphs.
//!
//! These are the *inputs* of the paper's reductions: Hamiltonian Path
//! instances (Theorem 2) and Vertex Cover instances (Theorem 3) live on
//! undirected graphs, which the reductions then compile into pebbling DAGs.

use crate::bitset::BitSet;
use std::fmt;

/// An undirected simple graph on nodes `0..n`.
///
/// Stores an adjacency matrix (as bitset rows) plus an edge list, which is
/// the right trade-off for the small, dense instances reductions operate
/// on: O(1) `has_edge`, linear edge iteration.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<BitSet>,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Creates an empty graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: (0..n).map(|_| BitSet::new(n)).collect(),
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list. Self-loops are rejected by panic
    /// (reduction inputs are simple graphs); duplicate edges are ignored.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if newly added.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert_ne!(u, v, "self-loops not allowed in simple graphs");
        if self.adj[u].contains(v) {
            return false;
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
        self.edges.push((u.min(v), u.max(v)));
        true
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(v)
    }

    /// The neighbourhood of `u` as a bitset.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &BitSet {
        &self.adj[u]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// The edges as `(min, max)` pairs in insertion order.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// The complement graph (same nodes, complemented edge set).
    pub fn complement(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Whether `set` (bitmask over nodes) is an independent set.
    pub fn is_independent_set(&self, set: &BitSet) -> bool {
        self.edges
            .iter()
            .all(|&(u, v)| !(set.contains(u) && set.contains(v)))
    }

    /// Whether `cover` (bitmask over nodes) covers every edge.
    pub fn is_vertex_cover(&self, cover: &BitSet) -> bool {
        self.edges
            .iter()
            .all(|&(u, v)| cover.contains(u) || cover.contains(v))
    }

    // ---- standard families (used across tests and experiments) ----

    /// Path graph `0 - 1 - ... - (n-1)`.
    pub fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    /// Cycle graph on `n >= 3` nodes.
    pub fn cycle(n: usize) -> Graph {
        assert!(n >= 3, "cycle needs at least 3 nodes");
        let mut g = Graph::path(n);
        g.add_edge(n - 1, 0);
        g
    }

    /// Complete graph K_n.
    pub fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Star graph: node 0 joined to all others.
    pub fn star(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge(0, v);
        }
        g
    }

    /// Complete bipartite graph K_{a,b} (left part `0..a`).
    pub fn complete_bipartite(a: usize, b: usize) -> Graph {
        let mut g = Graph::new(a + b);
        for u in 0..a {
            for v in a..(a + b) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// The Petersen graph (classic non-Hamiltonian-path... it *does* have
    /// a Hamiltonian path but no Hamiltonian cycle; useful as a structured
    /// test instance).
    pub fn petersen() -> Graph {
        let mut g = Graph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5); // outer cycle
            g.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
            g.add_edge(i, 5 + i); // spokes
        }
        g
    }

    /// Erdős–Rényi G(n, p) with the given RNG.
    pub fn gnp<R: rand::Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_structure() {
        let g = Graph::path(4);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0), "undirected symmetry");
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert_eq!(g.m(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = Graph::complete(5);
        assert_eq!(g.m(), 10);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn complement_roundtrip() {
        let g = Graph::path(4);
        let cc = g.complement().complement();
        assert_eq!(g, cc);
        assert_eq!(g.m() + g.complement().m(), 6);
    }

    #[test]
    fn vertex_cover_and_independent_set_duality() {
        let g = Graph::cycle(5);
        let cover = BitSet::from_indices(5, [0, 2, 4]);
        assert!(g.is_vertex_cover(&cover));
        let mut is = BitSet::full(5);
        is.difference_with(&cover);
        assert!(g.is_independent_set(&is));
        let bad = BitSet::from_indices(5, [0, 1]);
        assert!(!g.is_vertex_cover(&bad));
    }

    #[test]
    fn petersen_is_3_regular() {
        let g = Graph::petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        for v in 0..10 {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = Graph::complete_bipartite(2, 3);
        assert_eq!(g.m(), 6);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = rand::thread_rng();
        let empty = Graph::gnp(6, 0.0, &mut rng);
        assert_eq!(empty.m(), 0);
        let full = Graph::gnp(6, 1.0, &mut rng);
        assert_eq!(full.m(), 15);
    }
}

//! Graphviz DOT export for DAGs, for debugging constructions visually.

use crate::dag::Dag;
use std::fmt::Write as _;

/// Renders the DAG in Graphviz DOT syntax. Node labels fall back to the
/// numeric id when no label was set at build time; sources are drawn as
/// boxes and sinks as double circles so the pebbling roles stand out.
pub fn to_dot(dag: &Dag, graph_name: &str) -> String {
    let mut out = String::with_capacity(64 + dag.n() * 24 + dag.num_edges() * 12);
    let _ = writeln!(out, "digraph \"{graph_name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for v in dag.nodes() {
        let label = dag.label(v);
        let shown = if label.is_empty() {
            format!("{}", v.index())
        } else {
            label.to_string()
        };
        let shape = if dag.is_source(v) {
            "box"
        } else if dag.is_sink(v) {
            "doublecircle"
        } else {
            "ellipse"
        };
        let _ = writeln!(out, "  n{} [label=\"{shown}\", shape={shape}];", v.index());
    }
    for (u, v) in dag.edges() {
        let _ = writeln!(out, "  n{} -> n{};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = DagBuilder::new(0);
        let a = b.add_labeled_node("input");
        let c = b.add_labeled_node("output");
        b.add_edge_ids(a, c);
        let d = b.build().unwrap();
        let dot = to_dot(&d, "g");
        assert!(dot.starts_with("digraph \"g\""));
        assert!(dot.contains("label=\"input\""));
        assert!(dot.contains("shape=box"), "source rendered as box");
        assert!(
            dot.contains("shape=doublecircle"),
            "sink rendered as doublecircle"
        );
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn unlabeled_nodes_use_index() {
        let d = DagBuilder::new(1).build().unwrap();
        let dot = to_dot(&d, "x");
        assert!(dot.contains("label=\"0\""));
    }
}

//! Compact directed acyclic graph storage.
//!
//! A [`Dag`] is immutable after construction and stores both predecessor and
//! successor adjacency in CSR (compressed sparse row) form: one offsets
//! array and one flat targets array per direction. This keeps neighbour
//! scans contiguous, which dominates the inner loops of every solver.
//!
//! Build one with [`DagBuilder`](crate::builder::DagBuilder), which
//! validates acyclicity.

use crate::bitset::{words_for, WORD_BITS};
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a node in a [`Dag`] (a dense index in `0..n`).
///
/// A `u32` index keeps solver state small; graphs beyond 4 billion nodes
/// are far outside pebbling-solver reach anyway.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// The dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors produced while constructing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node index `>= n`.
    NodeOutOfRange { node: usize, n: usize },
    /// An edge `(v, v)` was added.
    SelfLoop { node: usize },
    /// The edge set contains a directed cycle; a witness node on the cycle
    /// is reported.
    Cycle { witness: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range (graph has {n} nodes)")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            GraphError::Cycle { witness } => {
                write!(f, "edge set is cyclic (node {witness} lies on a cycle)")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable directed acyclic graph in CSR form.
///
/// In pebbling terms (paper, Section 1): sources are the computation
/// inputs, sinks the outputs, and the predecessors of `v` are the values
/// required in fast memory to compute `v`.
#[derive(Clone)]
pub struct Dag {
    pub(crate) pred_offsets: Vec<u32>,
    pub(crate) pred_targets: Vec<NodeId>,
    pub(crate) succ_offsets: Vec<u32>,
    pub(crate) succ_targets: Vec<NodeId>,
    pub(crate) labels: Vec<String>,
    /// Packed per-node adjacency masks, built lazily on first use (they
    /// cost O(n²/8) bytes, which only state-space solvers should pay).
    pub(crate) masks: OnceLock<AdjMasks>,
}

/// Per-node predecessor/successor sets as packed `u64` word rows.
///
/// Row `v` occupies `words` consecutive `u64`s; bit `i` of the row is set
/// iff node `i` is adjacent to `v` in the given direction. The row width
/// follows [`words_for`], the same rule the solvers use for their state
/// keys, so "are all inputs of `v` red" is a word-wise `ANDN` loop.
#[derive(Clone, Debug)]
pub(crate) struct AdjMasks {
    words: usize,
    pred: Vec<u64>,
    succ: Vec<u64>,
}

impl AdjMasks {
    fn build(dag: &Dag) -> Self {
        let n = dag.n();
        let words = words_for(n);
        let mut pred = vec![0u64; n * words];
        let mut succ = vec![0u64; n * words];
        for (u, v) in dag.edges() {
            let (ui, vi) = (u.index(), v.index());
            pred[vi * words + ui / WORD_BITS] |= 1u64 << (ui % WORD_BITS);
            succ[ui * words + vi / WORD_BITS] |= 1u64 << (vi % WORD_BITS);
        }
        AdjMasks { words, pred, succ }
    }
}

// The derived implementations would compare the lazily-built mask cache;
// equality is defined by the graph itself (CSR arrays and labels).
impl PartialEq for Dag {
    fn eq(&self, other: &Self) -> bool {
        self.pred_offsets == other.pred_offsets
            && self.pred_targets == other.pred_targets
            && self.succ_offsets == other.succ_offsets
            && self.succ_targets == other.succ_targets
            && self.labels == other.labels
    }
}

impl Eq for Dag {}

impl Dag {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.pred_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.pred_targets.len()
    }

    /// All node ids, in index order.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.n() as u32).map(NodeId)
    }

    /// The in-neighbours (inputs) of `v`, sorted by index.
    #[inline]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.pred_targets[self.pred_offsets[i] as usize..self.pred_offsets[i + 1] as usize]
    }

    /// The out-neighbours (users) of `v`, sorted by index.
    #[inline]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.succ_targets[self.succ_offsets[i] as usize..self.succ_offsets[i + 1] as usize]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn indegree(&self, v: NodeId) -> usize {
        self.preds(v).len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn outdegree(&self, v: NodeId) -> usize {
        self.succs(v).len()
    }

    /// Whether the edge `u -> v` exists (binary search over sorted preds).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.preds(v).binary_search(&u).is_ok()
    }

    /// Whether `v` has no inputs.
    #[inline]
    pub fn is_source(&self, v: NodeId) -> bool {
        self.indegree(v) == 0
    }

    /// Whether `v` has no users.
    #[inline]
    pub fn is_sink(&self, v: NodeId) -> bool {
        self.outdegree(v) == 0
    }

    /// All sources (computation inputs), in index order.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.is_source(v)).collect()
    }

    /// All sinks (computation outputs), in index order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.is_sink(v)).collect()
    }

    /// Largest in-degree Δ. The paper's feasibility threshold is R ≥ Δ+1.
    pub fn max_indegree(&self) -> usize {
        self.nodes().map(|v| self.indegree(v)).max().unwrap_or(0)
    }

    /// The label attached to `v` at build time (empty if none).
    pub fn label(&self, v: NodeId) -> &str {
        &self.labels[v.index()]
    }

    /// All edges as `(from, to)` pairs, grouped by target.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |v| self.preds(v).iter().map(move |&u| (u, v)))
    }

    /// Number of `u64` words per adjacency-mask row: `ceil(n/64)`, at
    /// least 1. Matches the solvers' per-node-set word count, so mask rows
    /// can be combined directly with solver state words.
    #[inline]
    pub fn mask_words(&self) -> usize {
        words_for(self.n())
    }

    #[inline]
    fn adj_masks(&self) -> &AdjMasks {
        self.masks.get_or_init(|| AdjMasks::build(self))
    }

    /// The in-neighbours of `v` as a packed word row (bit `i` set iff
    /// `i -> v` is an edge). Built lazily on first call; `O(n²/8)` bytes
    /// are held for the graph's lifetime afterwards.
    #[inline]
    pub fn pred_mask(&self, v: NodeId) -> &[u64] {
        let m = self.adj_masks();
        &m.pred[v.index() * m.words..(v.index() + 1) * m.words]
    }

    /// The out-neighbours of `v` as a packed word row (bit `i` set iff
    /// `v -> i` is an edge). Built lazily together with the pred masks.
    #[inline]
    pub fn succ_mask(&self, v: NodeId) -> &[u64] {
        let m = self.adj_masks();
        &m.succ[v.index() * m.words..(v.index() + 1) * m.words]
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dag(n={}, m={})", self.n(), self.num_edges())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DagBuilder;
    use crate::dag::NodeId;

    fn diamond() -> crate::Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn csr_adjacency_is_consistent() {
        let d = diamond();
        assert_eq!(d.n(), 4);
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.preds(NodeId::new(3)), &[NodeId::new(1), NodeId::new(2)]);
        assert_eq!(d.succs(NodeId::new(0)), &[NodeId::new(1), NodeId::new(2)]);
        assert_eq!(d.indegree(NodeId::new(3)), 2);
        assert_eq!(d.outdegree(NodeId::new(3)), 0);
    }

    #[test]
    fn sources_and_sinks() {
        let d = diamond();
        assert_eq!(d.sources(), vec![NodeId::new(0)]);
        assert_eq!(d.sinks(), vec![NodeId::new(3)]);
        assert!(d.is_source(NodeId::new(0)));
        assert!(d.is_sink(NodeId::new(3)));
        assert!(!d.is_sink(NodeId::new(1)));
    }

    #[test]
    fn has_edge_queries() {
        let d = diamond();
        assert!(d.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!d.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!d.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn max_indegree_is_delta() {
        let d = diamond();
        assert_eq!(d.max_indegree(), 2);
    }

    #[test]
    fn edges_iterator_lists_all() {
        let d = diamond();
        let mut e: Vec<(usize, usize)> = d.edges().map(|(u, v)| (u.index(), v.index())).collect();
        e.sort();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let d = DagBuilder::new(0).build().unwrap();
        assert_eq!(d.n(), 0);
        assert_eq!(d.max_indegree(), 0);
        assert!(d.sources().is_empty());
    }

    #[test]
    fn isolated_nodes_are_both_source_and_sink() {
        let d = DagBuilder::new(3).build().unwrap();
        assert_eq!(d.sources().len(), 3);
        assert_eq!(d.sinks().len(), 3);
    }

    #[test]
    fn adjacency_masks_match_csr_lists() {
        let d = diamond();
        assert_eq!(d.mask_words(), 1);
        for v in d.nodes() {
            let pm = d.pred_mask(v);
            let sm = d.succ_mask(v);
            for u in d.nodes() {
                let (w, b) = (u.index() / 64, u.index() % 64);
                assert_eq!(
                    pm[w] & (1 << b) != 0,
                    d.preds(v).contains(&u),
                    "pred_mask({v:?}) vs preds at {u:?}"
                );
                assert_eq!(
                    sm[w] & (1 << b) != 0,
                    d.succs(v).contains(&u),
                    "succ_mask({v:?}) vs succs at {u:?}"
                );
            }
        }
    }

    #[test]
    fn adjacency_masks_span_multiple_words() {
        // a star 0 -> {1..=129} spills the successor row into 3 words
        let mut b = DagBuilder::new(130);
        for t in 1..130 {
            b.add_edge(0, t);
        }
        let d = b.build().unwrap();
        assert_eq!(d.mask_words(), 3);
        let sm = d.succ_mask(NodeId::new(0));
        assert_eq!(sm.iter().map(|w| w.count_ones()).sum::<u32>(), 129);
        assert_ne!(sm[2] & (1 << 1), 0, "bit 129 lives in word 2");
        assert_eq!(d.pred_mask(NodeId::new(129))[0], 1, "pred of 129 is node 0");
    }

    #[test]
    fn equality_ignores_mask_cache() {
        let a = diamond();
        let b = diamond();
        let _ = a.pred_mask(NodeId::new(3)); // build a's cache only
        assert_eq!(a, b);
        let c = a.clone(); // clone carries the cache
        assert_eq!(c.succ_mask(NodeId::new(0)), a.succ_mask(NodeId::new(0)));
    }
}

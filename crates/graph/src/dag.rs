//! Compact directed acyclic graph storage.
//!
//! A [`Dag`] is immutable after construction and stores both predecessor and
//! successor adjacency in CSR (compressed sparse row) form: one offsets
//! array and one flat targets array per direction. This keeps neighbour
//! scans contiguous, which dominates the inner loops of every solver.
//!
//! Build one with [`DagBuilder`](crate::builder::DagBuilder), which
//! validates acyclicity.

use std::fmt;

/// Identifier of a node in a [`Dag`] (a dense index in `0..n`).
///
/// A `u32` index keeps solver state small; graphs beyond 4 billion nodes
/// are far outside pebbling-solver reach anyway.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// The dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors produced while constructing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node index `>= n`.
    NodeOutOfRange { node: usize, n: usize },
    /// An edge `(v, v)` was added.
    SelfLoop { node: usize },
    /// The edge set contains a directed cycle; a witness node on the cycle
    /// is reported.
    Cycle { witness: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range (graph has {n} nodes)")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            GraphError::Cycle { witness } => {
                write!(f, "edge set is cyclic (node {witness} lies on a cycle)")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable directed acyclic graph in CSR form.
///
/// In pebbling terms (paper, Section 1): sources are the computation
/// inputs, sinks the outputs, and the predecessors of `v` are the values
/// required in fast memory to compute `v`.
#[derive(Clone, PartialEq, Eq)]
pub struct Dag {
    pub(crate) pred_offsets: Vec<u32>,
    pub(crate) pred_targets: Vec<NodeId>,
    pub(crate) succ_offsets: Vec<u32>,
    pub(crate) succ_targets: Vec<NodeId>,
    pub(crate) labels: Vec<String>,
}

impl Dag {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.pred_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.pred_targets.len()
    }

    /// All node ids, in index order.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.n() as u32).map(NodeId)
    }

    /// The in-neighbours (inputs) of `v`, sorted by index.
    #[inline]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.pred_targets[self.pred_offsets[i] as usize..self.pred_offsets[i + 1] as usize]
    }

    /// The out-neighbours (users) of `v`, sorted by index.
    #[inline]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.succ_targets[self.succ_offsets[i] as usize..self.succ_offsets[i + 1] as usize]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn indegree(&self, v: NodeId) -> usize {
        self.preds(v).len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn outdegree(&self, v: NodeId) -> usize {
        self.succs(v).len()
    }

    /// Whether the edge `u -> v` exists (binary search over sorted preds).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.preds(v).binary_search(&u).is_ok()
    }

    /// Whether `v` has no inputs.
    #[inline]
    pub fn is_source(&self, v: NodeId) -> bool {
        self.indegree(v) == 0
    }

    /// Whether `v` has no users.
    #[inline]
    pub fn is_sink(&self, v: NodeId) -> bool {
        self.outdegree(v) == 0
    }

    /// All sources (computation inputs), in index order.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.is_source(v)).collect()
    }

    /// All sinks (computation outputs), in index order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.is_sink(v)).collect()
    }

    /// Largest in-degree Δ. The paper's feasibility threshold is R ≥ Δ+1.
    pub fn max_indegree(&self) -> usize {
        self.nodes().map(|v| self.indegree(v)).max().unwrap_or(0)
    }

    /// The label attached to `v` at build time (empty if none).
    pub fn label(&self, v: NodeId) -> &str {
        &self.labels[v.index()]
    }

    /// All edges as `(from, to)` pairs, grouped by target.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |v| self.preds(v).iter().map(move |&u| (u, v)))
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dag(n={}, m={})", self.n(), self.num_edges())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DagBuilder;
    use crate::dag::NodeId;

    fn diamond() -> crate::Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn csr_adjacency_is_consistent() {
        let d = diamond();
        assert_eq!(d.n(), 4);
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.preds(NodeId::new(3)), &[NodeId::new(1), NodeId::new(2)]);
        assert_eq!(d.succs(NodeId::new(0)), &[NodeId::new(1), NodeId::new(2)]);
        assert_eq!(d.indegree(NodeId::new(3)), 2);
        assert_eq!(d.outdegree(NodeId::new(3)), 0);
    }

    #[test]
    fn sources_and_sinks() {
        let d = diamond();
        assert_eq!(d.sources(), vec![NodeId::new(0)]);
        assert_eq!(d.sinks(), vec![NodeId::new(3)]);
        assert!(d.is_source(NodeId::new(0)));
        assert!(d.is_sink(NodeId::new(3)));
        assert!(!d.is_sink(NodeId::new(1)));
    }

    #[test]
    fn has_edge_queries() {
        let d = diamond();
        assert!(d.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!d.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!d.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn max_indegree_is_delta() {
        let d = diamond();
        assert_eq!(d.max_indegree(), 2);
    }

    #[test]
    fn edges_iterator_lists_all() {
        let d = diamond();
        let mut e: Vec<(usize, usize)> = d.edges().map(|(u, v)| (u.index(), v.index())).collect();
        e.sort();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let d = DagBuilder::new(0).build().unwrap();
        assert_eq!(d.n(), 0);
        assert_eq!(d.max_indegree(), 0);
        assert!(d.sources().is_empty());
    }

    #[test]
    fn isolated_nodes_are_both_source_and_sink() {
        let d = DagBuilder::new(3).build().unwrap();
        assert_eq!(d.sources().len(), 3);
        assert_eq!(d.sinks().len(), 3);
    }
}

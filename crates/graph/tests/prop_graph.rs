//! Property tests for the graph substrate: bitset algebra, CSR
//! consistency, topological-order laws, reachability relations, and
//! the acyclic-partition invariants the coarse solver builds on.

use proptest::prelude::*;
use rbp_graph::{algo, partition, topo, BitSet, DagBuilder, Graph, NodeId};

fn arb_edge_coins(max_n: usize) -> impl Strategy<Value = (usize, Vec<bool>)> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (Just(n), proptest::collection::vec(any::<bool>(), pairs))
    })
}

fn build_dag(n: usize, coins: &[bool]) -> rbp_graph::Dag {
    let mut b = DagBuilder::new(n);
    let mut idx = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            if coins[idx] {
                b.add_edge(i, j);
            }
            idx += 1;
        }
    }
    b.build().unwrap()
}

proptest! {
    #[test]
    fn bitset_union_is_commutative_and_idempotent(
        a in proptest::collection::vec(0usize..128, 0..20),
        b in proptest::collection::vec(0usize..128, 0..20),
    ) {
        let sa = BitSet::from_indices(128, a.iter().copied());
        let sb = BitSet::from_indices(128, b.iter().copied());
        let mut ab = sa.clone();
        ab.union_with(&sb);
        let mut ba = sb.clone();
        ba.union_with(&sa);
        prop_assert_eq!(&ab, &ba);
        let mut aa = ab.clone();
        aa.union_with(&sb);
        prop_assert_eq!(&aa, &ab);
        // subset laws
        prop_assert!(sa.is_subset(&ab));
        prop_assert!(sb.is_subset(&ab));
    }

    #[test]
    fn bitset_demorgan_via_difference(
        a in proptest::collection::vec(0usize..64, 0..15),
        b in proptest::collection::vec(0usize..64, 0..15),
    ) {
        let sa = BitSet::from_indices(64, a.iter().copied());
        let sb = BitSet::from_indices(64, b.iter().copied());
        // |a| = |a∩b| + |a\b|
        let mut diff = sa.clone();
        diff.difference_with(&sb);
        prop_assert_eq!(sa.len(), sa.intersection_len(&sb) + diff.len());
        prop_assert!(diff.is_disjoint(&sb));
    }

    #[test]
    fn csr_pred_succ_are_mirror_images((n, coins) in arb_edge_coins(12)) {
        let dag = build_dag(n, &coins);
        for v in dag.nodes() {
            for &u in dag.preds(v) {
                prop_assert!(dag.succs(u).contains(&v));
                prop_assert!(dag.has_edge(u, v));
            }
            for &w in dag.succs(v) {
                prop_assert!(dag.preds(w).contains(&v));
            }
        }
        let m: usize = dag.nodes().map(|v| dag.indegree(v)).sum();
        prop_assert_eq!(m, dag.num_edges());
        let m2: usize = dag.nodes().map(|v| dag.outdegree(v)).sum();
        prop_assert_eq!(m2, dag.num_edges());
    }

    #[test]
    fn topological_order_is_always_valid((n, coins) in arb_edge_coins(14)) {
        let dag = build_dag(n, &coins);
        let order = topo::topological_order(&dag);
        prop_assert!(topo::is_topological_order(&dag, &order));
        // levels are monotone along edges
        let levels = topo::levels(&dag);
        for (u, v) in dag.edges() {
            prop_assert!(levels[u.index()] < levels[v.index()]);
        }
    }

    #[test]
    fn reachability_is_transitive((n, coins) in arb_edge_coins(10)) {
        let dag = build_dag(n, &coins);
        let tc = algo::transitive_closure(&dag);
        for a in 0..n {
            for b in 0..n {
                if !tc[a].contains(b) {
                    continue;
                }
                for c in 0..n {
                    if tc[b].contains(c) {
                        prop_assert!(tc[a].contains(c), "transitivity broken");
                    }
                }
            }
        }
        // ancestors/descendants are converses
        for a in 0..n {
            for b in 0..n {
                let fwd = algo::reaches(&dag, NodeId::new(a), NodeId::new(b));
                let bwd = algo::ancestors(&dag, NodeId::new(b)).contains(a);
                prop_assert_eq!(fwd, bwd);
            }
        }
    }

    #[test]
    fn undirected_cover_duality(coins in proptest::collection::vec(any::<bool>(), 15)) {
        // 6-node graph from coin flips
        let mut g = Graph::new(6);
        let mut idx = 0;
        for i in 0..6 {
            for j in (i + 1)..6 {
                if coins[idx] {
                    g.add_edge(i, j);
                }
                idx += 1;
            }
        }
        // complement involution and degree sum
        prop_assert_eq!(&g.complement().complement(), &g);
        let degsum: usize = (0..6).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.m());
        // full set is always a cover; empty set only for empty graphs
        prop_assert!(g.is_vertex_cover(&BitSet::full(6)));
        prop_assert_eq!(g.is_vertex_cover(&BitSet::new(6)), g.m() == 0);
    }

    #[test]
    fn partition_covers_every_node_exactly_once(
        (n, coins) in arb_edge_coins(16),
        k in 1usize..8,
    ) {
        let dag = build_dag(n, &coins);
        let p = partition::partition(&dag, k);
        prop_assert_eq!(p.k(), k.min(n));
        let mut owner = vec![None; n];
        for (g, nodes) in p.groups().enumerate() {
            prop_assert!(!nodes.is_empty(), "group {} empty", g);
            for &v in nodes {
                prop_assert_eq!(owner[v.index()], None, "node in two groups");
                owner[v.index()] = Some(g);
                prop_assert_eq!(p.group_of(v), g);
            }
        }
        prop_assert!(owner.iter().all(|o| o.is_some()), "uncovered node");
    }

    #[test]
    fn partition_is_monotone_and_quotient_acyclic(
        (n, coins) in arb_edge_coins(16),
        k in 1usize..8,
    ) {
        let dag = build_dag(n, &coins);
        let p = partition::partition(&dag, k);
        prop_assert!(p.is_monotone(&dag));
        // quotient construction itself cycle-checks via DagBuilder;
        // additionally every quotient edge must rise strictly
        let q = p.quotient(&dag);
        prop_assert_eq!(q.n(), p.k());
        for (gu, gv) in q.edges() {
            prop_assert!(gu.index() < gv.index());
        }
        // external inputs of g live strictly before g
        for g in 0..p.k() {
            for u in p.external_inputs(&dag, g) {
                prop_assert!(p.group_of(u) < g);
            }
        }
    }

    #[test]
    fn partition_k1_is_identity((n, coins) in arb_edge_coins(14)) {
        let dag = build_dag(n, &coins);
        let p = partition::partition(&dag, 1);
        prop_assert_eq!(p.k(), 1);
        prop_assert_eq!(p.group(0).len(), n);
        prop_assert_eq!(p.cut_size(&dag), 0);
        prop_assert_eq!(p.quotient(&dag).num_edges(), 0);
    }

    #[test]
    fn path_counts_respect_structure((n, coins) in arb_edge_coins(10)) {
        let dag = build_dag(n, &coins);
        let counts = algo::path_counts(&dag);
        for v in dag.nodes() {
            if dag.is_source(v) {
                prop_assert_eq!(counts[v.index()], 1);
            } else {
                let sum: u64 = dag.preds(v).iter().map(|u| counts[u.index()]).sum();
                prop_assert_eq!(counts[v.index()], sum);
            }
        }
    }
}

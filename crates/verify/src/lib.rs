//! # rbp-verify
//!
//! The adversarial verification engine: the permanent safety net every
//! model/solver refactor must pass before landing.
//!
//! Papp–Wattenhofer's results are hardness claims, so this repository
//! carries five solver families (exact, exact-parallel, greedy, beam,
//! portfolio) that can silently disagree in ways no single unit test
//! catches. This crate turns their redundancy into an oracle:
//!
//! - [`harness`]: the differential invariant lattice — every registry
//!   spec is run over each instance and checked against the sequential
//!   exact optimum (`Optimal` agreement, heuristic domination,
//!   `exact-parallel:N == exact`, budget-degradation brackets,
//!   cache-hit byte identity, wire round-trip identity), with every
//!   returned trace re-executed by the **independent certifier**
//!   ([`mod@rbp_core::certify`]) that shares no code with the solvers
//!   or the engine;
//! - [`mod@shrink`]: greedy minimization of any violating DAG, persisted as
//!   a replayable `instance v1` counterexample under
//!   `results/counterexamples/`;
//! - [`ensemble_report`] / [`gadget_instances`]: the seeded random
//!   ensembles ([`rbp_workloads::ensemble`]) and the paper's gadget
//!   families, composed into one soak;
//! - `fuzz-soak` (the crate's binary): the CI entry point — fixed seed,
//!   bounded wall-clock, exits non-zero on any violation or certifier
//!   rejection, writes counterexample artifacts.
//!
//! ## Replaying a counterexample
//!
//! ```text
//! cargo run --release -p rbp-verify --bin fuzz-soak -- \
//!     --replay results/counterexamples/<name>.instance
//! ```
//!
//! Counterexample files are ordinary `instance v1` documents whose
//! leading `#` comments describe the violations observed when they
//! were minimized; the parser ignores comments, so the same file feeds
//! straight back into the harness (or into `rbp-service` for a
//! server-side reproduction).

pub mod harness;
pub mod shrink;

pub use harness::{
    check_instance, HarnessConfig, InstanceOutcome, Invariant, Report, Violation, SPECS,
};
pub use shrink::{shrink, write_counterexample};

use rbp_core::{CostModel, Instance};
use rbp_workloads::ensemble::{self, EnsembleConfig};

/// Small instances of every gadget and workload family, across models —
/// the deterministic half of the soak (the random ensembles are the
/// other half). Sizes are chosen so the full lattice (including the
/// unpruned reference solver) stays fast per instance.
pub fn gadget_instances() -> Vec<(String, Instance)> {
    let mut out: Vec<(String, Instance)> = Vec::new();
    let kind_name = |model: CostModel| match model.kind() {
        rbp_core::ModelKind::Base => "base",
        rbp_core::ModelKind::Oneshot => "oneshot",
        rbp_core::ModelKind::NoDel => "nodel",
        rbp_core::ModelKind::CompCost => "compcost",
    };
    let mut push = |name: &str, dag: rbp_graph::Dag, extra_r: usize, model: CostModel| {
        let base = Instance::new(dag, 1, model);
        let inst = base.with_red_limit(base.min_feasible_r() + extra_r);
        out.push((format!("{name}-{}", kind_name(model)), inst));
    };
    for model in [CostModel::base(), CostModel::oneshot(), CostModel::nodel()] {
        push("pyramid-h3", rbp_gadgets::pyramid::build(3).dag, 0, model);
        push(
            "tradeoff-d2",
            rbp_gadgets::tradeoff::build(2, 3).dag,
            1,
            model,
        );
        push(
            "stencil-3x2",
            rbp_workloads::stencil::build(3, 2, 1).dag,
            1,
            model,
        );
        push("tree-4x2", rbp_workloads::tree::build(4, 2).dag, 0, model);
        push("chain-6", rbp_graph::generate::chain(6), 1, model);
    }
    // the heavier families once each, under the model they were built
    // for — sizes stay within what the full exact lattice solves in
    // milliseconds (the 30-node greedy grid and 20-node matmul DAGs
    // belong to the gap atlas, not the per-instance differential soak)
    push(
        "fft-log2",
        rbp_workloads::fft::build(2).dag,
        1,
        CostModel::oneshot(),
    );
    push(
        "cd-ladder-2x2",
        rbp_gadgets::cd::build(2, 2).dag,
        0,
        CostModel::oneshot(),
    );
    push(
        "pyramid-h4",
        rbp_gadgets::pyramid::build(4).dag,
        1,
        CostModel::compcost(),
    );
    out
}

/// Runs the harness over the gadget set plus `count` seeded random
/// ensemble instances, folding everything into one [`Report`].
///
/// `on_violation` fires once per violating instance with its name, the
/// instance, and the violations — the fuzz-soak binary uses it to
/// shrink and persist counterexamples; tests pass a closure that
/// panics.
pub fn ensemble_report<F>(
    base_seed: u64,
    count: usize,
    harness_cfg: &HarnessConfig,
    ensemble_cfg: &EnsembleConfig,
    mut on_violation: F,
) -> Report
where
    F: FnMut(&str, &Instance, &[Violation]),
{
    let mut report = Report::default();
    for (name, inst) in gadget_instances() {
        let outcome = check_instance(&inst, harness_cfg);
        if !outcome.clean() {
            on_violation(&name, &inst, &outcome.violations);
        }
        report.absorb(outcome);
    }
    for g in ensemble::stream(base_seed, *ensemble_cfg).take(count) {
        if !g.instance.is_feasible() {
            report.skipped_infeasible += 1;
            continue;
        }
        let outcome = check_instance(&g.instance, harness_cfg);
        if !outcome.clean() {
            on_violation(&g.name, &g.instance, &outcome.violations);
        }
        report.absorb(outcome);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gadget_set_is_clean_and_diverse() {
        let cfg = HarnessConfig::default();
        let mut violations = Vec::new();
        for (name, inst) in gadget_instances() {
            assert!(inst.is_feasible(), "{name} must be feasible");
            let out = check_instance(&inst, &cfg);
            for v in out.violations {
                violations.push(format!("{name}: {v}"));
            }
        }
        assert!(violations.is_empty(), "gadget violations: {violations:#?}");
    }
}

//! The bounded fuzz-soak entry point the CI job runs.
//!
//! ```text
//! fuzz-soak [--instances N] [--seed S] [--time-budget-secs T]
//!           [--max-nodes M] [--out DIR] [--replay FILE]
//! ```
//!
//! Default mode: runs the gadget set plus `N` seeded random ensemble
//! instances through the differential harness. Any violating instance
//! is greedily shrunk and written as a replayable counterexample under
//! `--out` (default `results/counterexamples/`). Exit status:
//!
//! - `0` — target instance count certified, zero violations;
//! - `1` — at least one invariant violation or certifier rejection
//!   (counterexamples written);
//! - `2` — wall-clock budget exhausted before the target count (no
//!   violations found in what did run).
//!
//! Replay mode (`--replay FILE`): parses one `instance v1` document
//! (counterexample comments included) and runs the full lattice over
//! exactly that instance.

use rbp_verify::{check_instance, shrink, write_counterexample, HarnessConfig};
use rbp_workloads::ensemble::EnsembleConfig;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    instances: usize,
    seed: u64,
    time_budget: Duration,
    max_nodes: usize,
    out: PathBuf,
    replay: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        instances: 10_000,
        seed: 0xB1E55ED,
        time_budget: Duration::from_secs(600),
        max_nodes: 10,
        out: PathBuf::from("results/counterexamples"),
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--instances" => {
                args.instances = value("--instances")?
                    .parse()
                    .map_err(|e| format!("--instances: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--time-budget-secs" => {
                args.time_budget = Duration::from_secs(
                    value("--time-budget-secs")?
                        .parse()
                        .map_err(|e| format!("--time-budget-secs: {e}"))?,
                )
            }
            "--max-nodes" => {
                args.max_nodes = value("--max-nodes")?
                    .parse()
                    .map_err(|e| format!("--max-nodes: {e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: fuzz-soak [--instances N] [--seed S] [--time-budget-secs T] \
                     [--max-nodes M] [--out DIR] [--replay FILE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn replay(path: &PathBuf, cfg: &HarnessConfig) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fuzz-soak: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let inst = match rbp_core::parse_instance(&text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!(
                "fuzz-soak: {} is not an instance v1 document: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
    };
    println!("replaying {} ({:?})", path.display(), inst);
    let out = check_instance(&inst, cfg);
    println!(
        "  {} solves, {} certified, {} violations",
        out.solves,
        out.certified,
        out.violations.len()
    );
    for v in &out.violations {
        println!("  VIOLATION {v}");
    }
    if out.violations.is_empty() {
        println!("replay clean: the counterexample no longer reproduces");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let harness_cfg = HarnessConfig::default();
    if let Some(path) = &args.replay {
        return replay(path, &harness_cfg);
    }

    let ensemble_cfg = EnsembleConfig {
        max_nodes: args.max_nodes,
        ..EnsembleConfig::default()
    };
    let start = Instant::now();
    let deadline = start + args.time_budget;
    let mut counterexamples: Vec<PathBuf> = Vec::new();
    let mut budget_hit = false;

    // Run in chunks so the wall-clock budget is honored between chunks
    // without threading a deadline through the harness.
    let chunk = 500usize;
    let mut done = 0usize;
    let mut report = rbp_verify::Report::default();
    while done < args.instances {
        if Instant::now() >= deadline {
            budget_hit = true;
            break;
        }
        let take = chunk.min(args.instances - done);
        // each chunk continues the same ensemble: instance indices are
        // offset by re-deriving the stream and skipping, which the
        // seeded per-index generator makes free
        let chunk_report = run_chunk(
            args.seed,
            done,
            take,
            done == 0,
            &harness_cfg,
            &ensemble_cfg,
            &args.out,
            &mut counterexamples,
        );
        done += take;
        merge(&mut report, chunk_report);
    }

    let elapsed = start.elapsed();
    let gadget_count = rbp_verify::gadget_instances().len().min(report.instances);
    println!(
        "fuzz-soak: {} instances ({} gadget + {} random), {} solves, {} certified, \
         {} skipped infeasible, {} violations in {:.1?}",
        report.instances,
        gadget_count,
        report.instances - gadget_count,
        report.solves,
        report.certified,
        report.skipped_infeasible,
        report.violations.len(),
        elapsed
    );
    for path in &counterexamples {
        println!("  counterexample: {}", path.display());
    }
    if !report.violations.is_empty() {
        ExitCode::FAILURE
    } else if budget_hit {
        eprintln!(
            "fuzz-soak: wall-clock budget {:?} exhausted at {}/{} instances",
            args.time_budget, done, args.instances
        );
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chunk(
    seed: u64,
    offset: usize,
    count: usize,
    include_gadgets: bool,
    harness_cfg: &HarnessConfig,
    ensemble_cfg: &EnsembleConfig,
    out_dir: &std::path::Path,
    counterexamples: &mut Vec<PathBuf>,
) -> rbp_verify::Report {
    use rbp_workloads::ensemble;
    let mut report = rbp_verify::Report::default();
    let mut handle_violation =
        |name: &str, inst: &rbp_core::Instance, violations: &[rbp_verify::Violation]| {
            eprintln!("VIOLATION on {name}:");
            for v in violations {
                eprintln!("  {v}");
            }
            let (small, steps) = shrink(inst, |candidate| {
                !check_instance(candidate, harness_cfg).clean()
            });
            let final_violations = check_instance(&small, harness_cfg).violations;
            eprintln!(
                "  shrunk {} -> {} nodes in {} steps",
                inst.dag().n(),
                small.dag().n(),
                steps
            );
            match write_counterexample(out_dir, name, &small, &final_violations) {
                Ok(path) => counterexamples.push(path),
                Err(e) => eprintln!("  failed to write counterexample: {e}"),
            }
        };
    if include_gadgets {
        for (name, inst) in rbp_verify::gadget_instances() {
            let outcome = check_instance(&inst, harness_cfg);
            if !outcome.clean() {
                handle_violation(&name, &inst, &outcome.violations);
            }
            report.absorb(outcome);
        }
    }
    // every fourth draw is lifted to the multiprocessor game, rotating
    // p through {1, 2, 4} by index, so each soak also exercises the
    // cross-p lattice on instances that carry the mpp dimension
    for i in offset..offset + count {
        let g = if i % 4 == 3 {
            ensemble::mpp_instance_at(seed, i as u64, ensemble_cfg)
        } else {
            ensemble::instance_at(seed, i as u64, ensemble_cfg)
        };
        if !g.instance.is_feasible() {
            report.skipped_infeasible += 1;
            continue;
        }
        let mut outcome = check_instance(&g.instance, harness_cfg);
        // rotate deeper coarse partitionings through the soak: K cycles
        // 2..=5 by index, hitting stitch boundaries the fixed harness
        // specs (coarse:2, coarse:3/greedy) never reach; the stitched
        // trace must certify at exactly the claimed cost
        let spec = format!("coarse:{}", 2 + i % 4);
        outcome.solves += 1;
        match rbp_solvers::registry::solve(&spec, &g.instance) {
            Ok(sol) => match rbp_core::certify::certify(&g.instance, &sol.trace) {
                Ok(cert) if cert.matches(&sol.cost) => outcome.certified += 1,
                Ok(cert) => outcome.violations.push(rbp_verify::Violation {
                    invariant: rbp_verify::Invariant::Certification,
                    spec,
                    detail: format!(
                        "certifier recomputed (t={}, c={}) but solver claimed (t={}, c={})",
                        cert.transfers, cert.computes, sol.cost.transfers, sol.cost.computes
                    ),
                }),
                Err(e) => outcome.violations.push(rbp_verify::Violation {
                    invariant: rbp_verify::Invariant::Certification,
                    spec,
                    detail: format!("certifier rejected the stitched trace: {e}"),
                }),
            },
            Err(e) => outcome.violations.push(rbp_verify::Violation {
                invariant: rbp_verify::Invariant::SolverError,
                spec,
                detail: format!("errored on a feasible instance: {e}"),
            }),
        }
        if !outcome.clean() {
            handle_violation(&g.name, &g.instance, &outcome.violations);
        }
        report.absorb(outcome);
    }
    report
}

fn merge(into: &mut rbp_verify::Report, from: rbp_verify::Report) {
    into.instances += from.instances;
    into.skipped_infeasible += from.skipped_infeasible;
    into.solves += from.solves;
    into.certified += from.certified;
    into.violations.extend(from.violations);
}

//! Greedy counterexample minimization.
//!
//! When the harness finds a violating instance, [`shrink`] reduces it
//! to a local minimum while the caller's *still-failing* predicate
//! holds: repeatedly try deleting one node (with its incident edges)
//! or one edge, keep any reduction that still fails, and stop at a
//! fixpoint where no single deletion preserves the failure. Candidates
//! that become infeasible are naturally rejected — the harness returns
//! a clean outcome for them, so the predicate turns false.
//!
//! [`write_counterexample`] persists the minimized instance as a
//! replayable `instance v1` document under `results/counterexamples/`,
//! with the violations recorded as `#` comment lines (the parser
//! ignores them), so `fuzz-soak --replay <file>` reproduces the failure
//! directly.

use crate::harness::Violation;
use rbp_core::{io, Instance};
use rbp_graph::{Dag, DagBuilder};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Rebuilds the DAG without node `victim`, dropping its incident edges
/// and shifting higher ids down by one.
fn remove_node(dag: &Dag, victim: usize) -> Option<Dag> {
    let n = dag.n();
    if n <= 1 {
        return None;
    }
    let mut b = DagBuilder::new(n - 1);
    let remap = |v: usize| if v > victim { v - 1 } else { v };
    for (u, v) in dag.edges() {
        let (u, v) = (u.index(), v.index());
        if u != victim && v != victim {
            b.add_edge(remap(u), remap(v));
        }
    }
    b.build().ok()
}

/// Rebuilds the DAG without the `skip`-th edge (in [`Dag::edges`]
/// order).
fn remove_edge(dag: &Dag, skip: usize) -> Option<Dag> {
    let mut b = DagBuilder::new(dag.n());
    for (i, (u, v)) in dag.edges().enumerate() {
        if i != skip {
            b.add_edge(u.index(), v.index());
        }
    }
    b.build().ok()
}

/// Same parameters, different DAG.
fn with_dag(instance: &Instance, dag: Dag) -> Instance {
    Instance::new(dag, instance.red_limit(), instance.model())
        .with_source_convention(instance.source_convention())
        .with_sink_convention(instance.sink_convention())
}

/// Minimizes `instance` under `still_fails`, which must return `true`
/// for the input instance (and for any reduction that preserves the
/// violation being chased). Returns the fixpoint instance and the
/// number of successful reduction steps.
pub fn shrink<F>(instance: &Instance, still_fails: F) -> (Instance, usize)
where
    F: Fn(&Instance) -> bool,
{
    let mut current = instance.clone();
    let mut steps = 0usize;
    loop {
        let mut reduced = None;
        // prefer node deletions: they shrink fastest
        for victim in 0..current.dag().n() {
            if let Some(dag) = remove_node(current.dag(), victim) {
                let candidate = with_dag(&current, dag);
                if still_fails(&candidate) {
                    reduced = Some(candidate);
                    break;
                }
            }
        }
        if reduced.is_none() {
            let m = current.dag().num_edges();
            for skip in 0..m {
                if let Some(dag) = remove_edge(current.dag(), skip) {
                    let candidate = with_dag(&current, dag);
                    if still_fails(&candidate) {
                        reduced = Some(candidate);
                        break;
                    }
                }
            }
        }
        // finally try tightening R to the feasibility threshold
        if reduced.is_none() && current.red_limit() > current.min_feasible_r() {
            let candidate = current.with_red_limit(current.red_limit() - 1);
            if still_fails(&candidate) {
                reduced = Some(candidate);
            }
        }
        match reduced {
            Some(next) => {
                current = next;
                steps += 1;
            }
            None => return (current, steps),
        }
    }
}

/// Writes `instance` with its violations as a replayable counterexample
/// file `<dir>/<name>.instance` and returns the path. The violations
/// ride along as `#` comments, so the file still parses with
/// [`rbp_core::parse_instance`].
pub fn write_counterexample(
    dir: &Path,
    name: &str,
    instance: &Instance,
    violations: &[Violation],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.instance"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "# counterexample: {name}")?;
    for v in violations {
        writeln!(f, "# violation: {v}")?;
    }
    writeln!(
        f,
        "# replay: cargo run --release -p rbp-verify --bin fuzz-soak -- --replay <this file>"
    )?;
    f.write_all(io::write_instance(instance).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Invariant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rbp_core::CostModel;
    use rbp_graph::generate;

    #[test]
    fn shrinks_to_a_minimal_witness() {
        // chase an artificial "violation": the DAG contains a node with
        // indegree ≥ 2. The minimal witness is 3 nodes and 2 edges.
        let mut rng = StdRng::seed_from_u64(5);
        let dag = generate::layered(4, 4, 3, &mut rng);
        let inst = Instance::new(dag, 8, CostModel::base());
        let fails = |i: &Instance| i.dag().nodes().any(|v| i.dag().indegree(v) >= 2);
        assert!(fails(&inst));
        let (small, steps) = shrink(&inst, fails);
        assert!(fails(&small), "shrinking must preserve the failure");
        assert_eq!(small.dag().n(), 3, "minimal witness is a 2-into-1 join");
        assert_eq!(small.dag().num_edges(), 2);
        assert!(steps > 0);
        assert_eq!(
            small.red_limit(),
            small.min_feasible_r(),
            "R tightened to the feasibility threshold"
        );
    }

    #[test]
    fn counterexample_files_replay() {
        let mut b = rbp_graph::DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::nodel());
        let violations = vec![Violation {
            invariant: Invariant::HeuristicDominated,
            spec: "greedy".to_string(),
            detail: "synthetic".to_string(),
        }];
        let dir = std::env::temp_dir().join("rbp-verify-shrink-test");
        let path = write_counterexample(&dir, "synthetic", &inst, &violations).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("# violation: [heuristic-dominated]"));
        let parsed = rbp_core::parse_instance(&text).expect("comments must not break parsing");
        assert!(rbp_core::io::same_instance(&inst, &parsed));
        std::fs::remove_dir_all(&dir).ok();
    }
}

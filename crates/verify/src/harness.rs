//! The differential invariant harness.
//!
//! [`check_instance`] runs every spec in [`SPECS`] (plus the unpruned
//! `reference` solver on small DAGs) over one instance and checks the
//! cross-solver invariant lattice:
//!
//! | invariant | statement |
//! |---|---|
//! | [`Invariant::SolverError`] | no registry spec errors on a feasible instance |
//! | [`Invariant::OptimalAgreement`] | every `Quality::Optimal` claim equals the exact optimum |
//! | [`Invariant::HeuristicDominated`] | every heuristic cost ≥ the optimum |
//! | [`Invariant::ParallelAgreement`] | `exact-parallel:N == exact` for N ∈ {1, 2, 4} |
//! | [`Invariant::DegradedBracket`] | budget-degraded `UpperBound`: `lower_bound ≤ optimum ≤ cost` |
//! | [`Invariant::CacheIdentity`] | a cache hit is byte-identical to the solution inserted |
//! | [`Invariant::InstanceRoundTrip`] | `write ∘ parse ∘ write` is identity for `instance v1` |
//! | [`Invariant::SolutionRoundTrip`] | `write ∘ parse ∘ write` is identity for `solution v1` |
//! | [`Invariant::Certification`] | the independent certifier accepts every returned trace at the exact claimed cost |
//! | [`Invariant::MppMonotone`] | `exact@mpp:1 == exact`, and the multiprocessor optimum never rises with p |
//! | [`Invariant::CoarseBracket`] | every `coarse` `UpperBound` bracket contains the exact optimum: `lower_bound ≤ optimum ≤ cost` |
//!
//! The optimum itself is anchored by the sequential `exact` solver;
//! everything else is measured against it. A violation of *any* row is
//! reported as a [`Violation`] and minimized by [`mod@crate::shrink`].

use rbp_core::{bounds, certify, io, Instance};
use rbp_service::cache::{AcceptPolicy, SolutionCache};
use rbp_solvers::api::{Budget, Solution, SolveCtx};
use rbp_solvers::{registry, wire, SolveError};
use std::fmt;

/// The registry specs the harness differentials across — every solver
/// family, with the argument grammar exercised (greedy rules × eviction
/// policies, beam widths, parallel shard counts).
pub const SPECS: &[&str] = &[
    "exact",
    "exact:unseeded",
    "exact-parallel:1",
    "exact-parallel:2",
    "exact-parallel:4",
    "greedy",
    "greedy:fewest-blue-inputs/lru",
    "greedy:highest-red-ratio/fifo",
    "beam:1",
    "beam:8",
    "portfolio",
    "coarse:2",
    "coarse:3/greedy",
];

/// The exact-family specs whose costs must all equal the anchor
/// optimum.
const PARALLEL_SPECS: &[&str] = &["exact-parallel:1", "exact-parallel:2", "exact-parallel:4"];

/// Which lattice row a violation falls under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Invariant {
    /// A spec returned an error on a feasible instance.
    SolverError,
    /// A `Quality::Optimal` claim disagrees with the exact optimum.
    OptimalAgreement,
    /// A heuristic produced a cost below the proved optimum.
    HeuristicDominated,
    /// An exact-parallel cost differs from the sequential exact cost.
    ParallelAgreement,
    /// A budget-degraded upper bound fails `lb ≤ optimum ≤ cost`.
    DegradedBracket,
    /// A cache hit returned bytes different from the inserted solution.
    CacheIdentity,
    /// The `instance v1` wire round-trip is not the identity.
    InstanceRoundTrip,
    /// The `solution v1` wire round-trip is not the identity.
    SolutionRoundTrip,
    /// The independent certifier rejected a solution, or certified a
    /// different cost than the solver claimed.
    Certification,
    /// The multiprocessor lattice failed: `exact@mpp:1` disagrees with
    /// the classic optimum, or the optimum rose when processors were
    /// added (more private memory can never hurt).
    MppMonotone,
    /// A hierarchical `coarse` solve returned an `UpperBound` bracket
    /// that does not contain the exact optimum (`lower_bound ≤ optimum
    /// ≤ cost` failed), so either its stitched trace undercut the
    /// optimum or its fractional lower bound is unsound.
    CoarseBracket,
}

impl Invariant {
    /// Stable kebab-case token, used in counterexample files and logs.
    pub fn token(self) -> &'static str {
        match self {
            Invariant::SolverError => "solver-error",
            Invariant::OptimalAgreement => "optimal-agreement",
            Invariant::HeuristicDominated => "heuristic-dominated",
            Invariant::ParallelAgreement => "parallel-agreement",
            Invariant::DegradedBracket => "degraded-bracket",
            Invariant::CacheIdentity => "cache-identity",
            Invariant::InstanceRoundTrip => "instance-round-trip",
            Invariant::SolutionRoundTrip => "solution-round-trip",
            Invariant::Certification => "certification",
            Invariant::MppMonotone => "mpp-monotone",
            Invariant::CoarseBracket => "coarse-bracket",
        }
    }
}

/// One observed invariant violation on one instance.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The lattice row that failed.
    pub invariant: Invariant,
    /// The spec (or spec pair) implicated.
    pub spec: String,
    /// Human-readable specifics: claimed vs. observed numbers.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            self.invariant.token(),
            self.spec,
            self.detail
        )
    }
}

/// Harness tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Run the unpruned `reference` solver only on DAGs up to this many
    /// nodes (it enumerates the raw configuration graph).
    pub reference_max_nodes: usize,
    /// Expansion cap for the budget-degradation probe: small enough to
    /// trip mid-search on most instances, exercising the `UpperBound`
    /// path.
    pub degraded_max_expansions: u64,
    /// Run the exact multiprocessor lattice (`exact@mpp:p` for
    /// p ∈ {1, 2, 4}) only on DAGs up to this many nodes — the product
    /// state space is exponential in p. Larger instances still get the
    /// greedy multiprocessor probe plus certification.
    pub mpp_max_nodes: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            reference_max_nodes: 8,
            degraded_max_expansions: 4,
            mpp_max_nodes: 5,
        }
    }
}

/// Aggregate tallies over a harness run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Instances checked (feasible ones actually solved).
    pub instances: usize,
    /// Instances skipped as infeasible (R ≤ Δ) before solving.
    pub skipped_infeasible: usize,
    /// Individual solver invocations.
    pub solves: usize,
    /// Solutions certified by the independent certifier.
    pub certified: usize,
    /// All violations observed, in discovery order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Folds one instance's outcome into the tallies.
    pub fn absorb(&mut self, outcome: InstanceOutcome) {
        self.instances += 1;
        self.solves += outcome.solves;
        self.certified += outcome.certified;
        self.violations.extend(outcome.violations);
    }
}

/// Per-instance result of [`check_instance`].
#[derive(Clone, Debug, Default)]
pub struct InstanceOutcome {
    /// Solver invocations made.
    pub solves: usize,
    /// Solutions the certifier accepted.
    pub certified: usize,
    /// Violations found on this instance.
    pub violations: Vec<Violation>,
}

impl InstanceOutcome {
    /// Whether the instance passed every lattice row.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Certifies one solution with the independent interpreter, recording a
/// [`Invariant::Certification`] violation on rejection or cost
/// disagreement.
fn certify_solution(instance: &Instance, spec: &str, sol: &Solution, out: &mut InstanceOutcome) {
    match certify::certify(instance, &sol.trace) {
        Ok(cert) => {
            if !cert.matches(&sol.cost) {
                out.violations.push(Violation {
                    invariant: Invariant::Certification,
                    spec: spec.to_string(),
                    detail: format!(
                        "certifier recomputed (t={}, c={}) but solver claimed (t={}, c={})",
                        cert.transfers, cert.computes, sol.cost.transfers, sol.cost.computes
                    ),
                });
            } else {
                out.certified += 1;
            }
        }
        Err(e) => out.violations.push(Violation {
            invariant: Invariant::Certification,
            spec: spec.to_string(),
            detail: format!("certifier rejected the trace: {e}"),
        }),
    }
}

/// Runs the full invariant lattice over one instance.
///
/// Infeasible instances (R ≤ Δ) return an empty outcome: every solver
/// correctly refuses them, and the ensembles never generate them.
pub fn check_instance(instance: &Instance, cfg: &HarnessConfig) -> InstanceOutcome {
    let mut out = InstanceOutcome::default();
    if !instance.is_feasible() {
        return out;
    }
    let eps = instance.model().epsilon();

    // -- anchor: the sequential exact optimum ---------------------------
    out.solves += 1;
    let anchor = match registry::solve("exact", instance) {
        Ok(sol) => sol,
        Err(e) => {
            out.violations.push(Violation {
                invariant: Invariant::SolverError,
                spec: "exact".to_string(),
                detail: format!("anchor solve failed on a feasible instance: {e}"),
            });
            return out; // nothing to differential against
        }
    };
    certify_solution(instance, "exact", &anchor, &mut out);
    // An anchor that degraded (internal state cap on an oversized
    // instance) is legal but cannot anchor optimum comparisons: the
    // optimum is then only known to lie in its bracket.
    let anchored = anchor.is_optimal();
    let opt = anchor.cost.scaled(eps);

    // -- the structural lower bound must not exceed the optimum ---------
    let structural_lb = bounds::best_lower_bound(instance).scaled(eps);
    if anchored && structural_lb > opt {
        out.violations.push(Violation {
            invariant: Invariant::DegradedBracket,
            spec: "bounds::best_lower_bound".to_string(),
            detail: format!("structural lower bound {structural_lb} exceeds optimum {opt}"),
        });
    }

    // -- every other spec, differentialled against the anchor -----------
    let mut specs: Vec<&str> = SPECS.iter().skip(1).copied().collect();
    if instance.dag().n() <= cfg.reference_max_nodes {
        specs.push("reference");
    }
    for spec in specs {
        out.solves += 1;
        let sol = match registry::solve(spec, instance) {
            Ok(sol) => sol,
            // Resource exhaustion is a documented degradation surface,
            // not a semantic violation: unseeded exact variants hold no
            // incumbent, so a state cap or budget expiry legally errors.
            Err(SolveError::StateLimitExceeded { .. }) | Err(SolveError::Interrupted) => continue,
            Err(e) => {
                out.violations.push(Violation {
                    invariant: Invariant::SolverError,
                    spec: spec.to_string(),
                    detail: format!("errored on a feasible instance: {e}"),
                });
                continue;
            }
        };
        certify_solution(instance, spec, &sol, &mut out);
        let cost = sol.cost.scaled(eps);
        if sol.is_optimal() {
            if anchored && cost != opt {
                out.violations.push(Violation {
                    invariant: Invariant::OptimalAgreement,
                    spec: spec.to_string(),
                    detail: format!("claims Optimal at {cost}, exact found {opt}"),
                });
            }
        } else if anchored && cost < opt {
            out.violations.push(Violation {
                invariant: Invariant::HeuristicDominated,
                spec: spec.to_string(),
                detail: format!("heuristic cost {cost} beats the proved optimum {opt}"),
            });
        }
        if let rbp_solvers::Quality::UpperBound { lower_bound } = sol.quality {
            if anchored && spec.starts_with("coarse") && !(lower_bound <= opt && opt <= cost) {
                out.violations.push(Violation {
                    invariant: Invariant::CoarseBracket,
                    spec: spec.to_string(),
                    detail: format!(
                        "bracket [{lower_bound}, {cost}] does not contain optimum {opt}"
                    ),
                });
            }
        }
        if anchored
            && sol.is_optimal()
            && (PARALLEL_SPECS.contains(&spec) || spec == "reference" || spec == "exact:unseeded")
            && cost != opt
        {
            out.violations.push(Violation {
                invariant: Invariant::ParallelAgreement,
                spec: spec.to_string(),
                detail: format!("exact-family cost {cost} != sequential exact {opt}"),
            });
        }
    }

    // -- budget degradation: the bracket must stay sound ----------------
    out.solves += 1;
    let ctx = SolveCtx::new(Budget::none().with_max_expansions(cfg.degraded_max_expansions));
    match registry::solve_with("exact", instance, &ctx) {
        Ok(sol) if anchored => {
            certify_solution(instance, "exact(degraded)", &sol, &mut out);
            let cost = sol.cost.scaled(eps);
            match sol.quality {
                rbp_solvers::Quality::Optimal => {
                    if cost != opt {
                        out.violations.push(Violation {
                            invariant: Invariant::DegradedBracket,
                            spec: "exact(degraded)".to_string(),
                            detail: format!("degraded solve claims Optimal at {cost} != {opt}"),
                        });
                    }
                }
                rbp_solvers::Quality::UpperBound { lower_bound } => {
                    if !(lower_bound <= opt && opt <= cost) {
                        out.violations.push(Violation {
                            invariant: Invariant::DegradedBracket,
                            spec: "exact(degraded)".to_string(),
                            detail: format!(
                                "bracket [{lower_bound}, {cost}] does not contain optimum {opt}"
                            ),
                        });
                    }
                }
                rbp_solvers::Quality::Infeasible => {
                    out.violations.push(Violation {
                        invariant: Invariant::DegradedBracket,
                        spec: "exact(degraded)".to_string(),
                        detail: "degraded solve reported Infeasible on a feasible instance"
                            .to_string(),
                    });
                }
            }
        }
        Ok(sol) => {
            // no trusted optimum: certification is still checkable
            certify_solution(instance, "exact(degraded)", &sol, &mut out);
        }
        Err(SolveError::Interrupted) => {} // legal without an incumbent
        Err(e) => out.violations.push(Violation {
            invariant: Invariant::SolverError,
            spec: "exact(degraded)".to_string(),
            detail: format!("degraded solve errored: {e}"),
        }),
    }

    // -- the multiprocessor lattice: lift classic instances over p ------
    // Instances already carrying an mpp dimension arrive through the
    // mpp ensembles and are exercised by the generic rows above; the
    // lift here checks the cross-p laws, which need a classic baseline.
    if instance.mpp().is_none() {
        if anchored && instance.dag().n() <= cfg.mpp_max_nodes {
            let mut chain: Vec<(u32, u128)> = Vec::new();
            for p in [1u32, 2, 4] {
                let lifted = instance.with_procs(p);
                let spec = format!("exact@mpp:{p}");
                out.solves += 1;
                let sol = match registry::solve(&spec, instance) {
                    Ok(sol) => sol,
                    Err(SolveError::StateLimitExceeded { .. }) | Err(SolveError::Interrupted) => {
                        continue
                    }
                    Err(e) => {
                        out.violations.push(Violation {
                            invariant: Invariant::SolverError,
                            spec: spec.clone(),
                            detail: format!("errored on a feasible instance: {e}"),
                        });
                        continue;
                    }
                };
                certify_solution(&lifted, &spec, &sol, &mut out);
                let cost = sol.scaled_cost(&lifted);
                if !sol.is_optimal() {
                    continue; // degraded: no optimum to hang laws on
                }
                chain.push((p, cost));
                if p == 1 && cost != opt {
                    out.violations.push(Violation {
                        invariant: Invariant::MppMonotone,
                        spec: spec.clone(),
                        detail: format!(
                            "single-processor mpp optimum {cost} != classic optimum {opt}"
                        ),
                    });
                }
                let gspec = format!("greedy@mpp:{p}");
                out.solves += 1;
                match registry::solve(&gspec, instance) {
                    Ok(g) => {
                        certify_solution(&lifted, &gspec, &g, &mut out);
                        let gcost = g.scaled_cost(&lifted);
                        if gcost < cost {
                            out.violations.push(Violation {
                                invariant: Invariant::HeuristicDominated,
                                spec: gspec,
                                detail: format!(
                                    "greedy cost {gcost} beats the mpp optimum {cost} at p={p}"
                                ),
                            });
                        }
                    }
                    Err(e) => out.violations.push(Violation {
                        invariant: Invariant::SolverError,
                        spec: gspec,
                        detail: format!("errored on a feasible instance: {e}"),
                    }),
                }
            }
            for w in chain.windows(2) {
                let ((p_lo, c_lo), (p_hi, c_hi)) = (w[0], w[1]);
                if c_hi > c_lo {
                    out.violations.push(Violation {
                        invariant: Invariant::MppMonotone,
                        spec: format!("exact@mpp:{p_lo} vs exact@mpp:{p_hi}"),
                        detail: format!(
                            "optimum rose with processors: {c_lo} at p={p_lo}, {c_hi} at p={p_hi}"
                        ),
                    });
                }
            }
        } else {
            // too large for the exact product search: the greedy
            // scheduler must still produce a certifiable schedule
            let lifted = instance.with_procs(2);
            out.solves += 1;
            match registry::solve("greedy@mpp:2", instance) {
                Ok(sol) => certify_solution(&lifted, "greedy@mpp:2", &sol, &mut out),
                Err(e) => out.violations.push(Violation {
                    invariant: Invariant::SolverError,
                    spec: "greedy@mpp:2".to_string(),
                    detail: format!("errored on a feasible instance: {e}"),
                }),
            }
        }
    }

    // -- cache hit must be byte-identical to the inserted solution ------
    let cache = SolutionCache::new();
    let key = instance.canonical_key();
    let fresh_bytes = wire::write_solution("exact", &anchor);
    cache.insert_or_upgrade(key, "exact", anchor.clone(), opt);
    match cache.lookup(&key, AcceptPolicy::Bound) {
        Some(entry) => {
            let hit_bytes = wire::write_solution(&entry.spec, &entry.solution);
            if hit_bytes != fresh_bytes {
                out.violations.push(Violation {
                    invariant: Invariant::CacheIdentity,
                    spec: "cache".to_string(),
                    detail: "cache hit serialized differently from the inserted solution"
                        .to_string(),
                });
            }
        }
        None => out.violations.push(Violation {
            invariant: Invariant::CacheIdentity,
            spec: "cache".to_string(),
            detail: "freshly inserted key missed on lookup".to_string(),
        }),
    }

    // -- wire round-trips are identities --------------------------------
    let doc = io::write_instance(instance);
    match io::parse_instance(&doc) {
        Ok(parsed) => {
            if io::write_instance(&parsed) != doc || !io::same_instance(instance, &parsed) {
                out.violations.push(Violation {
                    invariant: Invariant::InstanceRoundTrip,
                    spec: "instance v1".to_string(),
                    detail: "write ∘ parse ∘ write is not the identity".to_string(),
                });
            }
        }
        Err(e) => out.violations.push(Violation {
            invariant: Invariant::InstanceRoundTrip,
            spec: "instance v1".to_string(),
            detail: format!("own serialization failed to parse: {e}"),
        }),
    }
    match wire::parse_solution(&fresh_bytes) {
        Ok(ws) => {
            if wire::write_solution(&ws.spec, &ws.solution) != fresh_bytes {
                out.violations.push(Violation {
                    invariant: Invariant::SolutionRoundTrip,
                    spec: "solution v1".to_string(),
                    detail: "write ∘ parse ∘ write is not the identity".to_string(),
                });
            }
        }
        Err(e) => out.violations.push(Violation {
            invariant: Invariant::SolutionRoundTrip,
            spec: "solution v1".to_string(),
            detail: format!("own serialization failed to parse: {e}"),
        }),
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::CostModel;
    use rbp_graph::DagBuilder;

    #[test]
    fn clean_on_a_known_instance() {
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        let out = check_instance(&inst, &HarnessConfig::default());
        assert!(out.clean(), "violations: {:?}", out.violations);
        assert!(out.solves >= SPECS.len());
        assert!(out.certified >= SPECS.len(), "every solution certified");
    }

    #[test]
    fn clean_on_a_lifted_multiprocessor_instance() {
        // an instance already carrying the mpp dimension runs the
        // generic rows (the classic anchor is only an upper bound
        // there) and must stay violation-free
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::base()).with_procs(2);
        let out = check_instance(&inst, &HarnessConfig::default());
        assert!(out.clean(), "violations: {:?}", out.violations);
    }

    #[test]
    fn mpp_lattice_runs_on_small_classic_instances() {
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
        let cfg = HarnessConfig::default();
        assert!(inst.dag().n() <= cfg.mpp_max_nodes);
        let out = check_instance(&inst, &cfg);
        assert!(out.clean(), "violations: {:?}", out.violations);
        // the exact lattice adds 6 solves (exact+greedy at 3 values of p)
        assert!(out.solves >= SPECS.len() + 6, "mpp lattice did not run");
        // larger instances fall back to the greedy probe only
        let big = HarnessConfig {
            mpp_max_nodes: 3,
            ..cfg
        };
        let out_big = check_instance(&inst, &big);
        assert!(out_big.clean(), "violations: {:?}", out_big.violations);
        assert!(out_big.solves < out.solves);
    }

    #[test]
    fn infeasible_instances_are_skipped() {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let inst = Instance::new(b.build().unwrap(), 2, CostModel::base());
        assert!(!inst.is_feasible());
        let out = check_instance(&inst, &HarnessConfig::default());
        assert_eq!(out.solves, 0);
        assert!(out.clean());
    }
}

//! Smoke-scale soak: the harness must certify a few hundred seeded
//! ensemble instances (plus the gadget set) with zero violations. The
//! CI fuzz-soak job runs the same pipeline at 10,000+ instances in
//! release; this keeps the debug test suite fast while still
//! exercising every invariant row and all four models end-to-end.

use rbp_verify::{ensemble_report, HarnessConfig};
use rbp_workloads::ensemble::EnsembleConfig;

#[test]
fn ensemble_soak_is_clean() {
    let report = ensemble_report(
        0xB1E55ED,
        150,
        &HarnessConfig::default(),
        &EnsembleConfig {
            max_nodes: 8,
            ..EnsembleConfig::default()
        },
        |name, inst, violations| {
            panic!("violations on {name} ({inst:?}): {violations:#?}");
        },
    );
    assert!(report.violations.is_empty());
    assert!(report.instances >= 150, "gadgets + ensemble all checked");
    assert!(
        report.certified > report.instances * rbp_verify::SPECS.len() / 2,
        "certifier ran across the spec set ({} certs, {} instances)",
        report.certified,
        report.instances
    );
    assert_eq!(
        report.skipped_infeasible, 0,
        "ensembles are always feasible"
    );
}

#[test]
fn distinct_seeds_change_the_ensemble_but_not_cleanliness() {
    let report = ensemble_report(
        7,
        40,
        &HarnessConfig::default(),
        &EnsembleConfig {
            max_nodes: 7,
            ..EnsembleConfig::default()
        },
        |name, _, violations| panic!("violations on {name}: {violations:#?}"),
    );
    assert!(report.violations.is_empty());
}

//! The constant-degree (CD) gadget of Figure 1 / Appendix B.
//!
//! An input group of `g = R−1` nodes feeding a target is replaced by the
//! same `g` left-side nodes plus `h` *layers*, each an indegree-2 ladder
//! sweeping across all left nodes: chain node `c_{l,j}` depends on the
//! previous chain node and on left node `j`. Computing the whole ladder
//! with `g` red pebbles parked on the left side plus 2 roaming pebbles is
//! free; with even one left pebble missing, every layer forces transfers,
//! so the total cost grows linearly in `h`. This is the property that
//! makes the gadget stronger than the classical pyramid, whose penalty
//! for one missing pebble is only 2 (see [`crate::pyramid`] and the
//! `fig1` experiment).

use rbp_graph::{Dag, DagBuilder, NodeId};
use rbp_solvers::{GroupSpec, GroupedDag};

/// A built CD ladder.
#[derive(Clone, Debug)]
pub struct CdLadder {
    /// The gadget DAG.
    pub dag: Dag,
    /// The left-side group (size `g`), all sources.
    pub left: Vec<NodeId>,
    /// Chain nodes, layer-major: `chain[l*g + j]` is layer `l`, step `j`.
    pub chain: Vec<NodeId>,
    /// The final chain node (the gadget's output; attach targets here).
    pub out: NodeId,
    /// Number of layers `h`.
    pub layers: usize,
}

/// Builds a standalone CD ladder with `group_size` left nodes and
/// `layers` layers (each of `group_size` chain steps).
///
/// Intended use: `group_size = R−1` and pebbling with `R+1` red pebbles,
/// which makes the whole gadget free once the left side is fully red.
pub fn build(group_size: usize, layers: usize) -> CdLadder {
    assert!(group_size >= 1 && layers >= 1, "degenerate CD ladder");
    let mut b = DagBuilder::new(0);
    let left: Vec<NodeId> = (0..group_size)
        .map(|j| b.add_labeled_node(format!("L{j}")))
        .collect();
    let mut chain = Vec::with_capacity(group_size * layers);
    let mut prev: Option<NodeId> = None;
    for l in 0..layers {
        for (j, &lj) in left.iter().enumerate() {
            let c = b.add_labeled_node(format!("c{l}_{j}"));
            b.add_edge_ids(lj, c);
            if let Some(p) = prev {
                b.add_edge_ids(p, c);
            }
            prev = Some(c);
            chain.push(c);
        }
    }
    let out = *chain.last().expect("at least one layer");
    CdLadder {
        dag: b.build().expect("ladder is acyclic"),
        left,
        chain,
        out,
        layers,
    }
}

/// The Appendix-B transformation applied to a whole input-group
/// construction: every group is expanded into a CD ladder, dropping the
/// maximal indegree to 2 while preserving the visit-order cost structure
/// (with R raised by one).
#[derive(Clone, Debug)]
pub struct ConstantDegree {
    /// The expanded DAG. Original node ids are preserved; chain nodes are
    /// appended.
    pub dag: Dag,
    /// The expanded group view: each group's targets now start with its
    /// ladder chain (in computation order) followed by the original
    /// targets.
    pub grouped: GroupedDag,
    /// Ladder height used (`h` layers of `group size` steps each).
    pub layers: usize,
}

/// Expands every input group of `grouped` (over `dag`) into a CD ladder
/// of `layers` layers (Appendix B). The target nodes of each group hang
/// off the last chain node, so their indegree drops to 1; chain nodes
/// have indegree ≤ 2; group members keep their original indegree (0 for
/// the constructions' source groups).
///
/// Pebble the result with the original construction's R **plus one**:
/// the ladder walk parks the group and rolls 2 pebbles along the chain,
/// so in the oneshot model the visit-order costs are *identical* to the
/// unexpanded construction (verified per-permutation in tests); in nodel
/// each chain node additionally costs its forced store, a π-independent
/// constant, so decisions are preserved there too (Appendix B.1).
pub fn expand_to_constant_degree(dag: &Dag, grouped: &GroupedDag, layers: usize) -> ConstantDegree {
    assert!(layers >= 1);
    let mut b = DagBuilder::new(dag.n());
    // keep any original non-group edges except group->target edges,
    // which the ladder replaces. Group->target edges are exactly the
    // edges from a group input to that group's target.
    let mut replaced = std::collections::HashSet::new();
    for g in grouped.groups() {
        for &t in &g.targets {
            for &u in &g.inputs {
                replaced.insert((u, t));
            }
        }
    }
    for (u, v) in dag.edges() {
        if !replaced.contains(&(u, v)) {
            b.add_edge_ids(u, v);
        }
    }
    let mut new_groups = Vec::with_capacity(grouped.len());
    for (gi, g) in grouped.groups().iter().enumerate() {
        let mut chain: Vec<NodeId> = Vec::with_capacity(layers * g.inputs.len());
        let mut prev: Option<NodeId> = None;
        for l in 0..layers {
            for (j, &left) in g.inputs.iter().enumerate() {
                let c = b.add_labeled_node(format!("g{gi}c{l}_{j}"));
                b.add_edge_ids(left, c);
                if let Some(p) = prev {
                    b.add_edge_ids(p, c);
                }
                prev = Some(c);
                chain.push(c);
            }
        }
        let last = *chain.last().expect("nonempty ladder");
        for &t in &g.targets {
            b.add_edge_ids(last, t);
        }
        // the scheduler computes the chain, then the original targets
        let mut targets = chain;
        targets.extend_from_slice(&g.targets);
        new_groups.push(GroupSpec {
            inputs: g.inputs.clone(),
            targets,
        });
    }
    let dag = b.build().expect("ladder expansion preserves acyclicity");
    let grouped = GroupedDag::new(dag.n(), new_groups);
    ConstantDegree {
        dag,
        grouped,
        layers,
    }
}

impl CdLadder {
    /// The red-pebble budget at which the gadget pebbles for free
    /// (oneshot/base): all left nodes parked plus 2 roaming pebbles.
    pub fn free_budget(&self) -> usize {
        self.left.len() + 2
    }

    /// The paper's lower-bound intuition for one missing pebble: with
    /// fewer than [`CdLadder::free_budget`] red pebbles, pebbles must
    /// shuttle among the left nodes once per layer, costing at least ~2
    /// transfers per layer (oneshot). Returned as the asserted minimum
    /// `2·(h−1)` used by tests and the `fig1` experiment.
    pub fn starved_lower_bound(&self) -> u64 {
        2 * (self.layers as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_solvers::registry;

    #[test]
    fn structure_counts() {
        let g = build(3, 4);
        assert_eq!(g.dag.n(), 3 + 12);
        assert_eq!(g.left.len(), 3);
        assert_eq!(g.chain.len(), 12);
        assert_eq!(g.dag.max_indegree(), 2, "constant indegree is the point");
        // sources are exactly the left group
        assert_eq!(g.dag.sources(), g.left);
        assert_eq!(g.dag.sinks(), vec![g.out]);
    }

    #[test]
    fn free_at_full_budget_oneshot() {
        let g = build(3, 3);
        let inst = Instance::new(g.dag.clone(), g.free_budget(), CostModel::oneshot());
        let rep = registry::solve("exact", &inst).unwrap();
        assert_eq!(rep.cost.transfers, 0, "ladder free with g+2 pebbles");
    }

    #[test]
    fn cost_cliff_when_one_pebble_removed() {
        // the defining property: removing a single red pebble makes the
        // cost grow with h (vs. the pyramid's +2)
        for h in [2usize, 3, 4] {
            let g = build(2, h);
            let starved = Instance::new(g.dag.clone(), g.free_budget() - 1, CostModel::oneshot());
            let rep = registry::solve("exact", &starved).unwrap();
            assert!(
                rep.cost.transfers >= g.starved_lower_bound(),
                "h={h}: starved cost {} below 2(h-1)={}",
                rep.cost.transfers,
                g.starved_lower_bound()
            );
        }
    }

    #[test]
    fn starved_cost_grows_linearly_in_h() {
        let g2 = build(2, 2);
        let g5 = build(2, 5);
        let c2 = registry::solve(
            "exact",
            &Instance::new(g2.dag.clone(), g2.free_budget() - 1, CostModel::oneshot()),
        )
        .unwrap()
        .cost
        .transfers;
        let c5 = registry::solve(
            "exact",
            &Instance::new(g5.dag.clone(), g5.free_budget() - 1, CostModel::oneshot()),
        )
        .unwrap()
        .cost
        .transfers;
        assert!(c5 >= c2 + 4, "cost must scale with layer count");
    }

    #[test]
    fn minimum_budget_is_three() {
        // indegree 2 ⇒ feasible from R = 3 on
        let g = build(4, 2);
        let inst = Instance::new(g.dag.clone(), 3, CostModel::oneshot());
        assert!(registry::solve("exact", &inst).is_ok());
        let too_small = Instance::new(g.dag.clone(), 2, CostModel::oneshot());
        assert!(registry::solve("exact", &too_small).is_err());
    }
}

//! # rbp-gadgets
//!
//! The paper's DAG constructions with verified trace emitters: the H2C
//! gadget (Fig. 2), the constant-degree ladder (Fig. 1), the classical
//! pyramid (prior-work baseline), the time-memory tradeoff chain
//! (Fig. 3), and the greedy-adversarial grid (Fig. 8).

pub mod cd;
pub mod grid;
pub mod h2c;
pub mod pyramid;
pub mod tradeoff;

//! The classical pyramid gadget (prior work: [6, 10, 16]).
//!
//! A pyramid of height `h` has `h` source nodes at the bottom; row `r`
//! (0-based from the bottom) has `h − r` nodes, each depending on the two
//! adjacent nodes below; the apex is the single sink. Pebbling the apex
//! requires ~`h+1` red pebbles to be free of transfers, but — unlike the
//! CD ladder — losing one red pebble increases the optimal cost by only
//! about 2 (the paper's motivation for the new gadget, Section 3).

use rbp_graph::{Dag, DagBuilder, NodeId};

/// A built pyramid.
#[derive(Clone, Debug)]
pub struct Pyramid {
    /// The DAG.
    pub dag: Dag,
    /// `rows[r]` lists row `r` (bottom row first).
    pub rows: Vec<Vec<NodeId>>,
    /// The apex (single sink).
    pub apex: NodeId,
    /// Height (number of rows).
    pub height: usize,
}

/// Builds a pyramid of the given height (`height >= 1`).
pub fn build(height: usize) -> Pyramid {
    assert!(height >= 1);
    let mut b = DagBuilder::new(0);
    let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(height);
    for r in 0..height {
        let width = height - r;
        let row: Vec<NodeId> = (0..width)
            .map(|i| b.add_labeled_node(format!("p{r}_{i}")))
            .collect();
        if r > 0 {
            for (i, &node) in row.iter().enumerate() {
                b.add_edge_ids(rows[r - 1][i], node);
                b.add_edge_ids(rows[r - 1][i + 1], node);
            }
        }
        rows.push(row);
    }
    let apex = rows[height - 1][0];
    Pyramid {
        dag: b.build().expect("pyramid is acyclic"),
        rows,
        apex,
        height,
    }
}

impl Pyramid {
    /// Number of nodes: h(h+1)/2.
    pub fn node_count(&self) -> usize {
        self.height * (self.height + 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_solvers::registry;

    #[test]
    fn structure() {
        let p = build(4);
        assert_eq!(p.dag.n(), 10);
        assert_eq!(p.node_count(), 10);
        assert_eq!(p.dag.sources().len(), 4);
        assert_eq!(p.dag.sinks(), vec![p.apex]);
        assert_eq!(p.dag.max_indegree(), 2);
    }

    #[test]
    fn height_one_is_single_node() {
        let p = build(1);
        assert_eq!(p.dag.n(), 1);
        assert_eq!(p.apex.index(), 0);
    }

    #[test]
    fn free_with_enough_pebbles() {
        let p = build(4);
        // h+1 red pebbles pebble a pyramid without transfers
        let inst = Instance::new(p.dag.clone(), p.height + 1, CostModel::oneshot());
        let rep = registry::solve("exact", &inst).unwrap();
        assert_eq!(rep.cost.transfers, 0);
    }

    #[test]
    fn astar_never_expands_more_states_than_dijkstra() {
        // regression guard for the incremental A* heuristic: on starved
        // pyramids (where transfers are forced) the heuristic must keep
        // its pruning power, and both searches must agree on the optimum
        use rbp_solvers::api::{ExactSolver, Solver};
        use rbp_solvers::ExactConfig;
        for h in [3usize, 4, 5] {
            let p = build(h);
            let inst = Instance::new(
                p.dag.clone(),
                3.max(h.saturating_sub(1)),
                CostModel::oneshot(),
            );
            // unseeded: the comparison is about the heuristic's own
            // pruning power, not the greedy incumbent's
            let astar = ExactSolver::with_config(ExactConfig {
                astar: true,
                ..ExactConfig::default()
            })
            .unseeded()
            .solve_default(&inst)
            .unwrap();
            let dij = ExactSolver::with_config(ExactConfig {
                astar: false,
                ..ExactConfig::default()
            })
            .unseeded()
            .solve_default(&inst)
            .unwrap();
            assert_eq!(astar.cost, dij.cost, "A* changed the optimum (h={h})");
            assert!(
                astar.states_expanded() <= dij.states_expanded(),
                "A* must not expand more states than Dijkstra (h={h}: {:?} vs {:?})",
                astar.states_expanded(),
                dij.states_expanded()
            );
        }
    }

    #[test]
    fn losing_one_pebble_costs_only_about_two() {
        // the contrast with the CD ladder (paper Section 3): pyramid's
        // penalty for one missing pebble is tiny
        for h in [3usize, 4] {
            let p = build(h);
            let full = registry::solve(
                "exact",
                &Instance::new(p.dag.clone(), h + 1, CostModel::oneshot()),
            )
            .unwrap()
            .cost
            .transfers;
            let starved = registry::solve(
                "exact",
                &Instance::new(p.dag.clone(), h, CostModel::oneshot()),
            )
            .unwrap()
            .cost
            .transfers;
            assert!(starved <= full + 2, "pyramid penalty stays at 2 (h={h})");
        }
    }
}

//! The greedy-adversarial grid of Theorem 4 (Figure 8).
//!
//! Input groups sit on a triangular grid: positions (i, j) with
//! 1 ≤ i, j and i+j ≤ ℓ+1. All groups on a diagonal (i+j = d) share k′
//! *common* source nodes. Each group has one target t(i,j), which is also
//! an input of the group directly above, (i, j+1) — forcing bottom-up
//! visits within a column. Small *misguidance* intersections link the top
//! group of column j with the bottom group of column j−1, and an entry
//! group S0 (with one target inside every bottom group, plus an
//! intersection with the bottom of column ℓ) funnels any pebbling through
//! S0 first and nudges greedy toward column ℓ.
//!
//! The greedy rules of Section 8 then sweep columns right-to-left,
//! bottom-to-top, paying ~2k′ transfers per group for the commons —
//! Θ(k′·ℓ²) total — while the optimal diagonal order computes each
//! diagonal's commons once, keeps them red through the diagonal pass, and
//! pays only for the O(1) extra nodes per group: Θ((k−k′)·ℓ²). With
//! k−k′ = O(1) the greedy/optimum ratio is Θ(k′), i.e. Θ̃(n) for the
//! paper's parameter choice.

use rbp_core::Instance;
use rbp_graph::{Dag, DagBuilder, NodeId};
use rbp_solvers::{GroupSpec, GroupedDag};

/// Parameters of the grid construction.
#[derive(Clone, Copy, Debug)]
pub struct GridConfig {
    /// Grid extent ℓ (columns 1..=ℓ; column i has ℓ+1−i groups).
    pub ell: usize,
    /// Common nodes per diagonal (k′). The greedy/optimum gap scales
    /// with this.
    pub k_prime: usize,
    /// Misguidance-intersection size (a small constant; ≥ 1).
    pub mis: usize,
}

impl GridConfig {
    /// The oneshot recipe from Section 8: large k′, constant extras.
    pub fn oneshot_style(ell: usize, k_prime: usize) -> Self {
        GridConfig {
            ell,
            k_prime,
            mis: 2,
        }
    }

    /// The nodel/compcost recipe from Appendix A.4: constant k, large ℓ.
    pub fn constant_k(ell: usize) -> Self {
        GridConfig {
            ell,
            k_prime: 4,
            mis: 2,
        }
    }
}

/// The built grid. Group 0 is S0; grid groups follow in column-major
/// order (column ℓ first matches nothing — they are stored by position,
/// use [`GreedyGrid::group_at`]).
#[derive(Clone, Debug)]
pub struct GreedyGrid {
    /// The DAG.
    pub dag: Dag,
    /// The visit-order view (shares group indices with this struct).
    pub grouped: GroupedDag,
    /// Uniform group size k = k′ + 2·mis + 1.
    pub k: usize,
    /// Red budget for the construction: k + 1.
    pub r: usize,
    /// Grid extent.
    pub ell: usize,
    /// Common nodes per diagonal.
    pub k_prime: usize,
    /// `group_id[(i-1, j-1)]`, dense by position.
    ids: Vec<Vec<usize>>,
    /// target node → owning group id.
    target_group: Vec<(NodeId, usize)>,
}

/// Builds the grid. R must be `grid.r` when instantiating.
pub fn build(cfg: GridConfig) -> GreedyGrid {
    assert!(cfg.ell >= 2 && cfg.k_prime >= 1 && cfg.mis >= 1);
    let ell = cfg.ell;
    let k = cfg.k_prime + 2 * cfg.mis + 1;
    let mut b = DagBuilder::new(0);

    // common nodes per diagonal d = i+j ∈ [2, ℓ+1]
    let commons: Vec<Vec<NodeId>> = (2..=ell + 1)
        .map(|d| {
            (0..cfg.k_prime)
                .map(|x| b.add_labeled_node(format!("c{d}_{x}")))
                .collect()
        })
        .collect();
    let common = |d: usize| -> &Vec<NodeId> { &commons[d - 2] };

    // misguidance sets M_j (top of column j ∩ bottom of column j−1)
    let mis_sets: Vec<Vec<NodeId>> = (2..=ell)
        .map(|j| {
            (0..cfg.mis)
                .map(|x| b.add_labeled_node(format!("m{j}_{x}")))
                .collect()
        })
        .collect();
    let mis_of = |j: usize| -> &Vec<NodeId> { &mis_sets[j - 2] };

    // S0: own inputs + intersection shared with group (ℓ, 1)
    let s0_shared: Vec<NodeId> = (0..cfg.mis)
        .map(|x| b.add_labeled_node(format!("s0x{x}")))
        .collect();
    let s0_own: Vec<NodeId> = (0..k - cfg.mis)
        .map(|x| b.add_labeled_node(format!("s0_{x}")))
        .collect();
    let s0_targets: Vec<NodeId> = (1..=ell)
        .map(|i| b.add_labeled_node(format!("st{i}")))
        .collect();

    // grid targets
    let mut target: Vec<Vec<NodeId>> = Vec::new();
    for i in 1..=ell {
        let mut col = Vec::new();
        for j in 1..=(ell + 1 - i) {
            col.push(b.add_labeled_node(format!("t{i}_{j}")));
        }
        target.push(col);
    }
    let t_of = |i: usize, j: usize| target[i - 1][j - 1];

    // assemble groups
    let mut groups: Vec<GroupSpec> = Vec::new();
    let mut ids: Vec<Vec<usize>> = vec![Vec::new(); ell];
    let mut target_group: Vec<(NodeId, usize)> = Vec::new();

    // group 0: S0
    let mut s0_inputs = s0_shared.clone();
    s0_inputs.extend_from_slice(&s0_own);
    debug_assert_eq!(s0_inputs.len(), k);
    groups.push(GroupSpec {
        inputs: s0_inputs,
        targets: s0_targets.clone(),
    });
    for &t in &s0_targets {
        target_group.push((t, 0));
    }

    for i in 1..=ell {
        for j in 1..=(ell + 1 - i) {
            let gid = groups.len();
            ids[i - 1].push(gid);
            let mut inputs: Vec<NodeId> = common(i + j).clone();
            if j == 1 {
                inputs.push(s0_targets[i - 1]);
            } else {
                inputs.push(t_of(i, j - 1));
            }
            // bottom of column i shares with top of column i+1
            if j == 1 && i < ell {
                inputs.extend_from_slice(mis_of(i + 1));
            }
            // top of column i shares with bottom of column i−1
            if j == ell + 1 - i && i >= 2 {
                inputs.extend_from_slice(mis_of(i));
            }
            // bottom of column ℓ intersects S0
            if i == ell && j == 1 {
                inputs.extend_from_slice(&s0_shared);
            }
            // pad with distinct fillers to exactly k
            while inputs.len() < k {
                inputs.push(b.add_labeled_node(format!("f{i}_{j}_{}", inputs.len())));
            }
            assert_eq!(inputs.len(), k, "group ({i},{j}) overfull");
            let tgt = t_of(i, j);
            for &u in &inputs {
                b.add_edge_ids(u, tgt);
            }
            groups.push(GroupSpec {
                inputs,
                targets: vec![tgt],
            });
            target_group.push((tgt, gid));
        }
    }
    // S0's targets need edges from S0's inputs
    for &t in &s0_targets {
        for &u in &groups[0].inputs {
            b.add_edge_ids(u, t);
        }
    }

    let dag = b.build().expect("grid is acyclic");
    let grouped = GroupedDag::new(dag.n(), groups);
    GreedyGrid {
        dag,
        grouped,
        k,
        r: k + 1,
        ell,
        k_prime: cfg.k_prime,
        ids,
        target_group,
    }
}

impl GreedyGrid {
    /// The group id at position (i, j), both 1-based.
    pub fn group_at(&self, i: usize, j: usize) -> usize {
        self.ids[i - 1][j - 1]
    }

    /// The S0 entry group id (always 0).
    pub fn s0(&self) -> usize {
        0
    }

    /// The optimal visit order: S0, then each diagonal d = 2..ℓ+1 from
    /// its bottom group (d−1, 1) up to (1, d−1).
    pub fn optimal_order(&self) -> Vec<usize> {
        let mut order = vec![self.s0()];
        for d in 2..=self.ell + 1 {
            for j in 1..d {
                let i = d - j;
                order.push(self.group_at(i, j));
            }
        }
        order
    }

    /// The order the misguided greedy follows: S0, then columns right to
    /// left, each bottom to top.
    pub fn greedy_order(&self) -> Vec<usize> {
        let mut order = vec![self.s0()];
        for i in (1..=self.ell).rev() {
            for j in 1..=(self.ell + 1 - i) {
                order.push(self.group_at(i, j));
            }
        }
        order
    }

    /// Decodes a node-computation order into the sequence of group visits
    /// (first computation of each group's first target).
    pub fn decode_visits(&self, computation_order: &[NodeId]) -> Vec<usize> {
        let mut seen = vec![false; self.grouped.len()];
        let mut visits = Vec::new();
        for &v in computation_order {
            if let Some(&(_, g)) = self.target_group.iter().find(|&&(t, _)| t == v) {
                if !seen[g] {
                    seen[g] = true;
                    visits.push(g);
                }
            }
        }
        visits
    }

    /// Instantiates the construction under a model with its intended
    /// budget R = k+1.
    pub fn instance(&self, model: rbp_core::CostModel) -> Instance {
        Instance::new(self.dag.clone(), self.r, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{engine, CostModel};
    use rbp_solvers::api::{GreedySolver, Solver};
    use rbp_solvers::{best_order, EvictionPolicy, GreedyConfig, SelectionRule};

    fn small() -> GreedyGrid {
        build(GridConfig {
            ell: 3,
            k_prime: 10,
            mis: 2,
        })
    }

    #[test]
    fn structure() {
        let g = small();
        assert_eq!(g.k, 10 + 4 + 1);
        assert_eq!(g.r, g.k + 1);
        // groups: S0 + 3+2+1
        assert_eq!(g.grouped.len(), 7);
        // every target has indegree exactly k
        assert_eq!(g.dag.max_indegree(), g.k);
        // dependency: (1,2) depends on (1,1)
        let above = g.group_at(1, 2);
        let below = g.group_at(1, 1);
        assert!(g.grouped.deps()[above].contains(&below));
        // bottoms depend on S0
        assert!(g.grouped.deps()[g.group_at(2, 1)].contains(&g.s0()));
    }

    #[test]
    fn orders_are_valid() {
        let g = small();
        assert!(g.grouped.is_valid_order(&g.optimal_order()));
        assert!(g.grouped.is_valid_order(&g.greedy_order()));
    }

    #[test]
    fn optimal_order_trace_is_valid_and_cheap() {
        let g = small();
        let inst = g.instance(CostModel::oneshot());
        let opt_trace = g.grouped.emit(&inst, &g.optimal_order()).unwrap();
        let greedy_trace = g.grouped.emit(&inst, &g.greedy_order()).unwrap();
        let opt = engine::simulate(&inst, &opt_trace).unwrap();
        let gre = engine::simulate(&inst, &greedy_trace).unwrap();
        assert!(
            opt.cost.transfers * 2 < gre.cost.transfers,
            "diagonal order ({}) must beat column order ({}) by 2x",
            opt.cost.transfers,
            gre.cost.transfers
        );
    }

    #[test]
    fn node_level_greedy_follows_the_misguided_column_order() {
        let g = small();
        let inst = g.instance(CostModel::oneshot());
        let rep = GreedySolver::with_config(GreedyConfig {
            rule: SelectionRule::MostRedInputs,
            eviction: EvictionPolicy::MinUses,
        })
        .solve_default(&inst)
        .unwrap();
        let visits = g.decode_visits(&rep.computation_order());
        assert_eq!(
            visits,
            g.greedy_order(),
            "greedy did not fall for the misguidance"
        );
    }

    #[test]
    fn greedy_pays_the_commons_toll() {
        // the Theorem-4 gap against the *true* visit-order optimum
        let g = small();
        let inst = g.instance(CostModel::oneshot());
        let rep = GreedySolver::with_config(GreedyConfig {
            rule: SelectionRule::MostRedInputs,
            eviction: EvictionPolicy::MinUses,
        })
        .solve_default(&inst)
        .unwrap();
        let best = best_order(&g.grouped, &inst).unwrap();
        assert!(
            rep.cost.transfers > 2 * best.cost.transfers,
            "greedy {} vs optimum {}",
            rep.cost.transfers,
            best.cost.transfers
        );
    }

    #[test]
    fn diagonal_order_is_near_optimal_among_visit_orders() {
        // The paper's diagonal order is asymptotically optimal: its cost
        // is k'-independent (commons never round-trip) and within an O(1)-
        // per-group term of the exhaustive optimum. On small grids the
        // exhaustive search can shave a few transfers by chaining targets
        // between diagonal passes, so we assert a bounded gap rather than
        // equality.
        let g = small();
        let inst = g.instance(CostModel::oneshot());
        let best = best_order(&g.grouped, &inst).unwrap();
        let opt_trace = g.grouped.emit(&inst, &g.optimal_order()).unwrap();
        let opt = engine::simulate(&inst, &opt_trace).unwrap();
        assert!(best.cost.transfers <= opt.cost.transfers);
        let grid_groups = g.grouped.len() as u64 - 1;
        assert!(
            opt.cost.transfers <= best.cost.transfers + 2 * grid_groups,
            "diagonal ({}) strays more than O(1)/group from optimum ({})",
            opt.cost.transfers,
            best.cost.transfers
        );
        // crucially, the optimum does NOT pay the 2k' commons toll: it is
        // below a single diagonal revisit's worth of common-node traffic
        assert!(best.cost.transfers < 2 * g.k_prime as u64 * grid_groups);
    }

    #[test]
    fn gap_grows_with_k_prime() {
        let ratios: Vec<f64> = [4usize, 12]
            .iter()
            .map(|&kp| {
                let g = build(GridConfig {
                    ell: 3,
                    k_prime: kp,
                    mis: 2,
                });
                let inst = g.instance(CostModel::oneshot());
                let rep = GreedySolver::with_config(GreedyConfig {
                    rule: SelectionRule::MostRedInputs,
                    eviction: EvictionPolicy::MinUses,
                })
                .solve_default(&inst)
                .unwrap();
                let opt_trace = g.grouped.emit(&inst, &g.optimal_order()).unwrap();
                let opt = engine::simulate(&inst, &opt_trace).unwrap();
                rep.cost.transfers as f64 / opt.cost.transfers.max(1) as f64
            })
            .collect();
        assert!(ratios[1] > ratios[0], "ratio must grow with k': {ratios:?}");
    }

    #[test]
    fn all_three_greedy_rules_are_fooled() {
        // Section 8: all the natural greedy rules return solutions far
        // from the optimum. The two red-driven rules follow the exact
        // misguided column order; fewest-blue-inputs wanders differently
        // (under on-demand sources a fresh diagonal has fewer blue inputs
        // than the group above) but still pays the commons toll.
        let g = small();
        let inst = g.instance(CostModel::oneshot());
        let best = best_order(&g.grouped, &inst).unwrap();
        for rule in SelectionRule::ALL {
            let rep = GreedySolver::with_config(GreedyConfig {
                rule,
                eviction: EvictionPolicy::MinUses,
            })
            .solve_default(&inst)
            .unwrap();
            if matches!(
                rule,
                SelectionRule::MostRedInputs | SelectionRule::HighestRedRatio
            ) {
                let visits = g.decode_visits(&rep.computation_order());
                assert_eq!(visits, g.greedy_order(), "rule {rule} escaped the trap");
            }
            assert!(
                rep.cost.transfers > 2 * best.cost.transfers,
                "rule {rule}: {} not >> optimum {}",
                rep.cost.transfers,
                best.cost.transfers
            );
        }
    }

    #[test]
    fn nodel_variant_constant_factor_gap() {
        // Appendix A.4: constant k, the gap is a constant factor > 1
        let g = build(GridConfig::constant_k(4));
        let inst = g.instance(CostModel::nodel());
        let rep = GreedySolver::with_config(GreedyConfig {
            rule: SelectionRule::MostRedInputs,
            eviction: EvictionPolicy::MinUses,
        })
        .solve_default(&inst)
        .unwrap();
        let opt_trace = g.grouped.emit(&inst, &g.optimal_order()).unwrap();
        let opt = engine::simulate(&inst, &opt_trace).unwrap();
        assert!(rep.cost.transfers > opt.cost.transfers);
    }
}

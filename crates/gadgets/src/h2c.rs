//! The hard-to-compute (H2C) gadget of Figure 2.
//!
//! Placed in front of a source node `v`, the gadget makes computing `v`
//! cost at least 4 transfers: `v`'s new inputs are `starters` nodes
//! (default 3), each of which needs *all* R red pebbles to compute (its
//! inputs are a group `B` of R−1 nodes). Computing the last starter forces
//! the previous ones through slow memory. The gadget serves two purposes
//! (Section 3): modelling inherently costly inputs, and making nodes
//! costly to *recompute* — once `v` is computed, saving it (cost 2 per
//! round trip) strictly beats recomputation (cost ≥ 4), so reasonable
//! pebblings never recompute `v` even in the base model.
//!
//! `s` feeds the `B` group so that the gadget adds only one new source
//! per `B` group.

use rbp_core::{Instance, Move, Pebbling, SourceConvention, State};
use rbp_graph::{Dag, DagBuilder, NodeId};
use rbp_solvers::SolveError;

/// Configuration for [`attach`].
#[derive(Clone, Copy, Debug)]
pub struct H2cConfig {
    /// Share one `s` + `B` group across all protected sources (the
    /// Section-3 economy) or instantiate them per source (the Appendix-A.2
    /// variant that makes each source an independent constant-cost
    /// process).
    pub shared_group: bool,
    /// Starter nodes per protected source (paper: 3; the tradeoff-diagram
    /// adaptation in Appendix A.1 uses d+3).
    pub starters: usize,
    /// Size of each `B` group (paper: R−1).
    pub group_size: usize,
}

impl H2cConfig {
    /// The paper's default for red budget `r`: shared group of size R−1,
    /// 3 starters.
    pub fn standard(r: usize) -> Self {
        assert!(r >= 4, "H2C needs R >= 4 (3 starters + the source)");
        H2cConfig {
            shared_group: true,
            starters: 3,
            group_size: r - 1,
        }
    }

    /// The Appendix-A.2 variant: a separate `s` + `B` per source.
    pub fn per_source(r: usize) -> Self {
        H2cConfig {
            shared_group: false,
            ..Self::standard(r)
        }
    }
}

/// An H2C-augmented DAG. Original node ids are preserved.
#[derive(Clone, Debug)]
pub struct H2c {
    /// The augmented DAG.
    pub dag: Dag,
    /// The `s` node(s): one if shared, else one per protected source.
    pub s_nodes: Vec<NodeId>,
    /// The `B` group(s), parallel to `s_nodes`.
    pub groups: Vec<Vec<NodeId>>,
    /// Per protected source: its starter nodes.
    pub starters: Vec<Vec<NodeId>>,
    /// The protected original sources, in ascending id order.
    pub protected: Vec<NodeId>,
    config: H2cConfig,
}

/// Attaches H2C gadgets in front of every source of `dag`.
pub fn attach(dag: &Dag, cfg: H2cConfig) -> H2c {
    attach_to(dag, dag.sources(), cfg)
}

/// Attaches H2C gadgets in front of the given sources only — the paper's
/// "disable recomputation of specific nodes" use (Section 3). Each
/// protected node must currently be a source.
pub fn attach_to(dag: &Dag, protected: Vec<NodeId>, cfg: H2cConfig) -> H2c {
    assert!(
        protected.iter().all(|&v| dag.is_source(v)),
        "H2C can only protect source nodes"
    );
    assert!(
        cfg.starters >= 3,
        "fewer than 3 starters does not force transfers"
    );
    let mut b = DagBuilder::new(dag.n());
    for (u, v) in dag.edges() {
        b.add_edge_ids(u, v);
    }
    let mut s_nodes = Vec::new();
    let mut groups = Vec::new();
    let make_group = |b: &mut DagBuilder, tag: &str| -> (NodeId, Vec<NodeId>) {
        let s = b.add_labeled_node(format!("s{tag}"));
        let group: Vec<NodeId> = (0..cfg.group_size)
            .map(|i| {
                let n = b.add_labeled_node(format!("B{tag}_{i}"));
                b.add_edge_ids(s, n);
                n
            })
            .collect();
        (s, group)
    };
    if cfg.shared_group {
        let (s, g) = make_group(&mut b, "");
        s_nodes.push(s);
        groups.push(g);
    }
    let mut starters = Vec::new();
    for (vi, &v) in protected.iter().enumerate() {
        if !cfg.shared_group {
            let (s, g) = make_group(&mut b, &format!("_{vi}"));
            s_nodes.push(s);
            groups.push(g);
        }
        let group = groups.last().unwrap().clone();
        let us: Vec<NodeId> = (0..cfg.starters)
            .map(|i| {
                let u = b.add_labeled_node(format!("u{vi}_{i}"));
                for &bn in &group {
                    b.add_edge_ids(bn, u);
                }
                u
            })
            .collect();
        for &u in &us {
            b.add_edge_ids(u, v);
        }
        starters.push(us);
    }
    H2c {
        dag: b.build().expect("H2C attachment preserves acyclicity"),
        s_nodes,
        groups,
        starters,
        protected,
        config: cfg,
    }
}

impl H2c {
    /// The group index serving protected source `vi`.
    fn group_of(&self, vi: usize) -> usize {
        if self.config.shared_group {
            0
        } else {
            vi
        }
    }

    /// Emits the *prologue*: computes every protected source through its
    /// gadget and parks it under a blue pebble, leaving the board ready
    /// for the main-construction schedule (all former sources blue).
    ///
    /// Legal in base, oneshot and compcost; legal but not cost-tuned in
    /// nodel (the paper uses H2C only where deletions exist).
    pub fn prologue(
        &self,
        instance: &Instance,
        state: &mut State,
        trace: &mut Pebbling,
    ) -> Result<(), SolveError> {
        assert_eq!(
            instance.source_convention(),
            SourceConvention::FreeCompute,
            "H2C presupposes freely computable sources"
        );
        let r = instance.red_limit();
        assert!(
            r > self.config.starters && r > self.config.group_size,
            "red budget too small for the gadget"
        );
        let n_src = self.protected.len();
        // needed(v): whether the value must survive (be stored, not
        // deleted) when evicted at the point source `vi` is in flight
        for (vi, &v) in self.protected.iter().enumerate() {
            let gi = self.group_of(vi);
            let group = &self.groups[gi];
            let s = self.s_nodes[gi];
            let us = &self.starters[vi];
            let last_user_of_group = if self.config.shared_group {
                n_src - 1
            } else {
                vi
            };

            // 1. make the whole B group red (computing via s on first use)
            let group_computed = state.is_computed(group[0]);
            if !group_computed {
                self.acquire(instance, state, trace, s, &[], vi, last_user_of_group)?;
                for &bn in group {
                    self.acquire(instance, state, trace, bn, &[s], vi, last_user_of_group)?;
                }
                // s is dead from here on
                self.evict_one(instance, state, trace, s, false)?;
            } else {
                for &bn in group {
                    let pinned: Vec<NodeId> = group.clone();
                    self.acquire(instance, state, trace, bn, &pinned, vi, last_user_of_group)?;
                }
            }

            // 2. compute starters; each newcomer evicts its predecessor
            //    into slow memory (B stays pinned)
            for (i, &u) in us.iter().enumerate() {
                self.ensure_slot(instance, state, trace, group, vi, last_user_of_group)?;
                state
                    .apply(Move::Compute(u), instance)
                    .map_err(SolveError::Pebbling)?;
                trace.push(Move::Compute(u));
                if i + 1 < us.len() {
                    // will be needed for v: store, don't delete
                    self.evict_one(instance, state, trace, u, true)?;
                }
            }

            // 3. reload the stored starters (B members give way now)
            for &u in &us[..us.len() - 1] {
                self.ensure_slot_pinned(instance, state, trace, us, vi, last_user_of_group)?;
                state
                    .apply(Move::Load(u), instance)
                    .map_err(SolveError::Pebbling)?;
                trace.push(Move::Load(u));
            }

            // 4. compute v and park it
            self.ensure_slot_pinned(instance, state, trace, us, vi, last_user_of_group)?;
            state
                .apply(Move::Compute(v), instance)
                .map_err(SolveError::Pebbling)?;
            trace.push(Move::Compute(v));
            self.evict_one(instance, state, trace, v, true)?;

            // 5. starters are dead
            for &u in us {
                if state.is_red(u) {
                    self.evict_one(instance, state, trace, u, false)?;
                } else if state.is_blue(u) && instance.model().allows_delete() {
                    state
                        .apply(Move::Delete(u), instance)
                        .map_err(SolveError::Pebbling)?;
                    trace.push(Move::Delete(u));
                }
            }
        }
        // clear any leftover B pebbles (dead now)
        for group in &self.groups {
            for &bn in group {
                if state.is_red(bn) {
                    self.evict_one(instance, state, trace, bn, false)?;
                }
            }
        }
        Ok(())
    }

    /// Convenience: run the prologue from the initial state.
    pub fn prologue_trace(&self, instance: &Instance) -> Result<(Pebbling, State), SolveError> {
        let mut state = State::initial(instance);
        let mut trace = Pebbling::new();
        self.prologue(instance, &mut state, &mut trace)?;
        Ok((trace, state))
    }

    /// Makes `node` red: load if blue, compute if never computed (its
    /// inputs must already be red). `pinned` are protected from eviction.
    #[allow(clippy::too_many_arguments)]
    fn acquire(
        &self,
        instance: &Instance,
        state: &mut State,
        trace: &mut Pebbling,
        node: NodeId,
        pinned: &[NodeId],
        vi: usize,
        last_user: usize,
    ) -> Result<(), SolveError> {
        if state.is_red(node) {
            return Ok(());
        }
        self.ensure_slot_pinned(instance, state, trace, pinned, vi, last_user)?;
        let mv = if state.is_blue(node) {
            Move::Load(node)
        } else {
            Move::Compute(node)
        };
        state.apply(mv, instance).map_err(SolveError::Pebbling)?;
        trace.push(mv);
        Ok(())
    }

    fn ensure_slot(
        &self,
        instance: &Instance,
        state: &mut State,
        trace: &mut Pebbling,
        pinned: &[NodeId],
        vi: usize,
        last_user: usize,
    ) -> Result<(), SolveError> {
        self.ensure_slot_pinned(instance, state, trace, pinned, vi, last_user)
    }

    /// Frees one slot if full. B members are stored while later sources
    /// still need them, deleted afterwards; anything else red at this
    /// point is dead (starters of previous sources) and deleted/stored.
    fn ensure_slot_pinned(
        &self,
        instance: &Instance,
        state: &mut State,
        trace: &mut Pebbling,
        pinned: &[NodeId],
        vi: usize,
        last_user: usize,
    ) -> Result<(), SolveError> {
        while state.red_count() >= instance.red_limit() {
            let in_group = |x: usize| self.groups.iter().any(|g| g.iter().any(|b| b.index() == x));
            let mut victim: Option<(bool, usize)> = None; // (needed, node)
            for x in state.red_set().iter() {
                if pinned.iter().any(|p| p.index() == x) {
                    continue;
                }
                let needed = in_group(x) && vi < last_user;
                // prefer un-needed victims
                if victim.is_none() || (!needed && victim.unwrap().0) {
                    victim = Some((needed, x));
                }
                if !needed {
                    break;
                }
            }
            let (needed, x) = victim.expect("slot requested with everything pinned");
            self.evict_one(instance, state, trace, NodeId::new(x), needed)?;
        }
        Ok(())
    }

    fn evict_one(
        &self,
        instance: &Instance,
        state: &mut State,
        trace: &mut Pebbling,
        node: NodeId,
        keep: bool,
    ) -> Result<(), SolveError> {
        let mv = if keep || !instance.model().allows_delete() {
            Move::Store(node)
        } else {
            Move::Delete(node)
        };
        state.apply(mv, instance).map_err(SolveError::Pebbling)?;
        trace.push(mv);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{engine, CostModel, ModelKind};
    use rbp_graph::generate;
    use rbp_solvers::registry;

    /// A single original source, standalone.
    fn single_source_gadget(r: usize) -> H2c {
        let dag = DagBuilder::new(1).build().unwrap();
        attach(&dag, H2cConfig::standard(r))
    }

    #[test]
    fn structure_shared() {
        let dag = generate::chain(3); // one source
        let h = attach(&dag, H2cConfig::standard(5));
        // original 3 + s + B(4) + 3 starters
        assert_eq!(h.dag.n(), 3 + 1 + 4 + 3);
        assert_eq!(h.protected, vec![NodeId::new(0)]);
        // the former source now has indegree 3
        assert_eq!(h.dag.indegree(NodeId::new(0)), 3);
        // starters have indegree R-1
        assert_eq!(h.dag.indegree(h.starters[0][0]), 4);
    }

    #[test]
    fn structure_per_source() {
        // two sources
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let dag = b.build().unwrap();
        let h = attach(&dag, H2cConfig::per_source(4));
        assert_eq!(h.s_nodes.len(), 2);
        assert_eq!(h.groups.len(), 2);
        // 3 original + 2·(1 + 3 + 3)
        assert_eq!(h.dag.n(), 3 + 2 * 7);
    }

    #[test]
    fn computing_v_costs_exactly_four_transfers() {
        // the paper's headline number: pebbling the protected source to a
        // *red* pebble costs exactly 4 transfers (2 stores + 2 loads among
        // the starters)
        let h = single_source_gadget(4);
        let inst = Instance::new(h.dag.clone(), 4, CostModel::oneshot());
        let rep = registry::solve("exact", &inst).unwrap();
        assert_eq!(rep.cost.transfers, 4);
    }

    #[test]
    fn four_transfers_also_in_base_model() {
        // deletions + recomputation do not help: the starters still have
        // to round-trip
        let h = single_source_gadget(4);
        let inst = Instance::new(h.dag.clone(), 4, CostModel::base());
        let rep = registry::solve("exact", &inst).unwrap();
        assert_eq!(rep.cost.transfers, 4);
    }

    #[test]
    fn prologue_is_valid_and_parks_sources_blue() {
        for kind in [ModelKind::Oneshot, ModelKind::Base, ModelKind::CompCost] {
            let mut b = DagBuilder::new(4);
            b.add_edge(0, 3);
            b.add_edge(1, 3);
            b.add_edge(2, 3);
            let dag = b.build().unwrap();
            let h = attach(&dag, H2cConfig::standard(5));
            let inst = Instance::new(h.dag.clone(), 5, CostModel::of_kind(kind));
            let (trace, state) = h.prologue_trace(&inst).unwrap();
            // prefix validity
            let rep = engine::simulate_prefix(&inst, &trace).unwrap();
            assert!(rep.peak_red <= 5);
            for &v in &h.protected {
                assert!(state.is_blue(v), "source {v:?} parked blue ({kind})");
            }
        }
    }

    #[test]
    fn prologue_cost_is_linear_in_source_count() {
        // constant marginal cost per protected source (shared group)
        let cost_for = |n_sources: usize| -> u64 {
            let mut b = DagBuilder::new(n_sources + 1);
            for i in 0..n_sources {
                b.add_edge(i, n_sources);
            }
            let dag = b.build().unwrap();
            let h = attach(&dag, H2cConfig::standard(n_sources + 2));
            let inst = Instance::new(h.dag.clone(), n_sources + 2, CostModel::oneshot());
            let (trace, _) = h.prologue_trace(&inst).unwrap();
            engine::simulate_prefix(&inst, &trace)
                .unwrap()
                .cost
                .transfers
        };
        // marginal cost of one more source is a small constant (< 12)
        let c3 = cost_for(3);
        let c4 = cost_for(4);
        assert!(c4 > c3);
        assert!(c4 - c3 <= 12, "marginal source cost {} too large", c4 - c3);
    }

    #[test]
    fn save_beats_recompute_margin() {
        // Section 3: once v is computed, saving it (blue round-trip, cost
        // 2) beats recomputation (>= 3 via blue starters, >= 4 from
        // scratch). Verified on a DAG where v is needed twice with an
        // eviction forced in between: v feeds c1 and c2; the join
        // (w1, w2, c1 -> mid) fills all R = 4 slots between the two uses.
        let mut b = DagBuilder::new(0);
        let v = b.add_node(); // protected source
        let c1 = b.add_node();
        b.add_edge_ids(v, c1);
        let w: Vec<NodeId> = (0..2).map(|_| b.add_node()).collect();
        let mid = b.add_node();
        for &x in &w {
            b.add_edge_ids(x, mid);
        }
        b.add_edge_ids(c1, mid);
        let c2 = b.add_node();
        b.add_edge_ids(v, c2);
        b.add_edge_ids(mid, c2);
        let dag = b.build().unwrap();
        // protect only v; the distractor sources w1, w2 stay free
        let h = attach_to(&dag, vec![v], H2cConfig::standard(4));
        let us = h.starters[0].clone();
        let (s, bg) = (h.s_nodes[0], h.groups[0].clone());

        // the canonical gadget traversal: 4 transfers up to a red v
        let mut head = Pebbling::new();
        head.compute(s);
        for &bn in &bg {
            head.compute(bn);
        }
        head.delete(s);
        head.compute(us[0]);
        head.store(us[0]);
        head.compute(us[1]);
        head.store(us[1]);
        head.compute(us[2]);
        head.delete(bg[0]);
        head.load(us[0]);
        head.delete(bg[1]);
        head.load(us[1]);
        head.delete(bg[2]);
        head.compute(v);

        // strategy A: park v blue across the distractor, reload (cost +2)
        let mut save = head.clone();
        for &u in &us {
            save.delete(u);
        }
        save.compute(c1);
        save.store(v);
        save.compute(w[0]);
        save.compute(w[1]);
        save.compute(mid);
        save.delete(w[0]);
        save.delete(w[1]);
        save.delete(c1);
        save.load(v);
        save.compute(c2);

        // strategy B: keep the starters blue instead and recompute v
        // later (cost +3 for the starter reloads, after +3 stores)
        let mut recompute = head.clone();
        for &u in &us {
            recompute.store(u); // +3
        }
        recompute.compute(c1);
        recompute.delete(v);
        recompute.compute(w[0]);
        recompute.compute(w[1]);
        recompute.compute(mid);
        recompute.delete(w[0]);
        recompute.delete(w[1]);
        recompute.delete(c1);
        recompute.load(us[0]); // +3
        recompute.load(us[1]);
        recompute.load(us[2]);
        recompute.store(mid); // +1: all four slots needed for v
        recompute.compute(v);
        for &u in &us {
            recompute.delete(u);
        }
        recompute.load(mid); // +1
        recompute.compute(c2);

        let base = Instance::new(h.dag.clone(), 4, CostModel::base());
        let save_cost = engine::simulate(&base, &save).unwrap().cost.transfers;
        let rec_cost = engine::simulate(&base, &recompute).unwrap().cost.transfers;
        assert_eq!(save_cost, 6, "4 for the gadget + 2 for the round trip");
        assert!(
            rec_cost > save_cost,
            "recompute ({rec_cost}) must lose to save ({save_cost})"
        );

        // oneshot exact (recompute impossible there): optimum equals the
        // save strategy's cost, confirming it is the best of its class
        let oneshot = Instance::new(h.dag.clone(), 4, CostModel::oneshot());
        let opt = registry::solve("exact", &oneshot).unwrap();
        assert_eq!(opt.cost.transfers, 6);
    }
}

//! The time-memory tradeoff construction of Section 5 (Figures 3–4).
//!
//! Two *control groups* A and B of `d` source nodes each, plus a chain of
//! `n` nodes; chain node `t` depends on chain node `t−1` and on all of A
//! (t even) or all of B (t odd). Δ = d+1, so budgets range over
//! R ∈ [d+2, 2d+2].
//!
//! In the oneshot model, with R = d+2+i red pebbles the optimal strategy
//! parks `i` pebbles on the inactive control group and swaps the other
//! `d−i` back and forth, paying 2(d−i) transfers per chain step:
//! opt(d+2+i) = 2(d−i)·n — the *maximal-slope* staircase (each extra
//! pebble saves the 2n bound of Section 5). [`TradeoffChain::strategy`] emits exactly
//! that pebbling; [`TradeoffChain::expected_oneshot_cost`] is its closed form, and both
//! are cross-checked against the exact solver in tests.
//!
//! In models with recomputation the picture legitimately changes: blue
//! control nodes can be *recomputed* in place of loads (free in base and
//! nodel, ε in compcost), so the staircase slope halves (nodel) or the
//! curve collapses to ~0 (base) — the very degeneracy that motivates the
//! paper's Section-4 discussion. The emitter exploits recomputation
//! whenever the model allows it, so the measured curves show each model's
//! true shape.

use rbp_core::{Instance, Move, Pebbling, State};
use rbp_graph::{Dag, DagBuilder, NodeId};
use rbp_solvers::SolveError;

/// A built tradeoff chain.
#[derive(Clone, Debug)]
pub struct TradeoffChain {
    /// The DAG.
    pub dag: Dag,
    /// Control group A (drives even chain steps).
    pub group_a: Vec<NodeId>,
    /// Control group B (drives odd chain steps).
    pub group_b: Vec<NodeId>,
    /// The chain, in order.
    pub chain: Vec<NodeId>,
    /// Control group size d.
    pub d: usize,
}

/// Builds the construction with control groups of size `d` and a chain of
/// length `chain_len`.
///
/// # Example
/// ```
/// use rbp_gadgets::tradeoff;
/// let t = tradeoff::build(3, 10);
/// // the full Figure-4 staircase: one step of 2(n−2) per extra pebble
/// assert_eq!(t.expected_oneshot_cost(t.min_r()), 2 * 8 * 3);
/// assert_eq!(t.expected_oneshot_cost(t.free_r()), 0);
/// ```
pub fn build(d: usize, chain_len: usize) -> TradeoffChain {
    assert!(d >= 1 && chain_len >= 2, "degenerate tradeoff chain");
    let mut b = DagBuilder::new(0);
    let group_a: Vec<NodeId> = (0..d)
        .map(|i| b.add_labeled_node(format!("A{i}")))
        .collect();
    let group_b: Vec<NodeId> = (0..d)
        .map(|i| b.add_labeled_node(format!("B{i}")))
        .collect();
    let mut chain = Vec::with_capacity(chain_len);
    let mut prev: Option<NodeId> = None;
    for t in 0..chain_len {
        let c = b.add_labeled_node(format!("c{t}"));
        let group = if t % 2 == 0 { &group_a } else { &group_b };
        for &g in group {
            b.add_edge_ids(g, c);
        }
        if let Some(p) = prev {
            b.add_edge_ids(p, c);
        }
        prev = Some(c);
        chain.push(c);
    }
    TradeoffChain {
        dag: b.build().expect("chain is acyclic"),
        group_a,
        group_b,
        chain,
        d,
    }
}

impl TradeoffChain {
    /// Smallest feasible budget: Δ+1 = d+2.
    pub fn min_r(&self) -> usize {
        self.d + 2
    }

    /// Budget at which the pebbling is free (oneshot): both groups parked.
    pub fn free_r(&self) -> usize {
        2 * self.d + 2
    }

    /// The closed-form optimal cost in the **oneshot** model with
    /// R = d+2+i: the `d−i` transient pebbles of the off-duty group are
    /// stored and reloaded once per interior chain step — 2(n−2)(d−i),
    /// i.e. the paper's 2(d−i)·n asymptotically. (The boundary steps are
    /// cheaper: the first computation of each control node is free, and on
    /// a group's last use its transients are deleted, not stored.)
    pub fn expected_oneshot_cost(&self, r: usize) -> u64 {
        let i = r - self.min_r();
        let swap = (self.d - i) as u64;
        2 * (self.chain.len() as u64 - 2) * swap
    }

    /// Emits the Section-5 strategy for the instance's budget R = d+2+i:
    /// park `i` pebbles per control group, swap the remaining `d−i`.
    /// Control values are re-acquired by load (oneshot) or recomputation
    /// (models that allow it); chain nodes are deleted right after their
    /// single use (stored in nodel).
    pub fn strategy(&self, instance: &Instance) -> Result<Pebbling, SolveError> {
        let r = instance.red_limit();
        assert!(
            (self.min_r()..=self.free_r()).contains(&r),
            "R = {r} outside the tradeoff range [{}, {}]",
            self.min_r(),
            self.free_r()
        );
        let i = r - self.min_r();
        let model = instance.model();
        let mut state = State::initial(instance);
        let mut trace = Pebbling::new();
        let apply = |state: &mut State, mv: Move, trace: &mut Pebbling| -> Result<(), SolveError> {
            state.apply(mv, instance).map_err(SolveError::Pebbling)?;
            trace.push(mv);
            Ok(())
        };

        // kept[g]: the first i members of each group stay red forever
        let kept_a = &self.group_a[..i];
        let kept_b = &self.group_b[..i];

        for (t, &c) in self.chain.iter().enumerate() {
            let (active, inactive) = if t % 2 == 0 {
                (&self.group_a, &self.group_b)
            } else {
                (&self.group_b, &self.group_a)
            };
            // the off-duty group is needed again only if the chain
            // continues past the next step
            let inactive_reused = t + 1 < self.chain.len();
            // acquire all active members
            for &u in active {
                if state.is_red(u) {
                    continue;
                }
                // make room: evict a transient member of the inactive group
                while state.red_count() >= r {
                    let victim = inactive
                        .iter()
                        .copied()
                        .find(|&x| state.is_red(x) && !kept_a.contains(&x) && !kept_b.contains(&x))
                        .expect("a transient inactive member must be red");
                    // a control value must survive its eviction only if it
                    // is needed again and the model cannot recompute it
                    let mv = if model.allows_delete()
                        && (model.allows_recompute() || !inactive_reused)
                    {
                        Move::Delete(victim)
                    } else {
                        Move::Store(victim)
                    };
                    apply(&mut state, mv, &mut trace)?;
                }
                let mv = if state.is_blue(u) && !model.allows_recompute() {
                    Move::Load(u)
                } else {
                    // first computation, or free/ε recomputation
                    Move::Compute(u)
                };
                apply(&mut state, mv, &mut trace)?;
            }
            // compute the chain node
            while state.red_count() >= r {
                // drop the chain node two steps back (its use is done)
                let victim = self.chain[..t]
                    .iter()
                    .copied()
                    .rev()
                    .find(|&x| state.is_red(x) && (t == 0 || x != self.chain[t - 1]))
                    .or_else(|| {
                        inactive.iter().copied().find(|&x| {
                            state.is_red(x) && !kept_a.contains(&x) && !kept_b.contains(&x)
                        })
                    })
                    .expect("an evictable pebble must exist");
                let is_chain = self.chain.contains(&victim);
                let mv = if model.allows_delete()
                    && (is_chain || model.allows_recompute() || !inactive_reused)
                {
                    Move::Delete(victim)
                } else {
                    Move::Store(victim)
                };
                apply(&mut state, mv, &mut trace)?;
            }
            apply(&mut state, Move::Compute(c), &mut trace)?;
            // retire the previous chain node (dead now)
            if t >= 1 {
                let p = self.chain[t - 1];
                if state.is_red(p) {
                    let mv = if model.allows_delete() {
                        Move::Delete(p)
                    } else {
                        Move::Store(p)
                    };
                    apply(&mut state, mv, &mut trace)?;
                }
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{engine, CostModel};
    use rbp_solvers::api::ExactSolver;
    use rbp_solvers::{registry, sweep_r};

    #[test]
    fn structure() {
        let t = build(3, 5);
        assert_eq!(t.dag.n(), 3 + 3 + 5);
        assert_eq!(t.dag.max_indegree(), 4, "chain nodes have d+1 inputs");
        assert_eq!(t.min_r(), 5);
        assert_eq!(t.free_r(), 8);
        // chain[0] depends on A only
        assert_eq!(t.dag.indegree(t.chain[0]), 3);
        assert_eq!(t.dag.sinks(), vec![*t.chain.last().unwrap()]);
    }

    #[test]
    fn strategy_matches_closed_form_oneshot() {
        let t = build(3, 6);
        for r in t.min_r()..=t.free_r() {
            let inst = Instance::new(t.dag.clone(), r, CostModel::oneshot());
            let trace = t.strategy(&inst).unwrap();
            let rep = engine::simulate(&inst, &trace).unwrap();
            assert_eq!(
                rep.cost.transfers,
                t.expected_oneshot_cost(r),
                "strategy cost formula broken at R={r}"
            );
            assert!(rep.peak_red <= r);
        }
    }

    #[test]
    fn free_at_both_groups_parked() {
        let t = build(2, 8);
        let inst = Instance::new(t.dag.clone(), t.free_r(), CostModel::oneshot());
        let trace = t.strategy(&inst).unwrap();
        let rep = engine::simulate(&inst, &trace).unwrap();
        assert_eq!(rep.cost.transfers, 0);
    }

    #[test]
    fn strategy_is_optimal_small_instance() {
        // the real Figure-4 check: exact solver agrees with the strategy
        // at every R in the range
        let t = build(2, 3);
        for r in t.min_r()..=t.free_r() {
            let inst = Instance::new(t.dag.clone(), r, CostModel::oneshot());
            let opt = registry::solve("exact", &inst).unwrap();
            assert_eq!(
                opt.cost.transfers,
                t.expected_oneshot_cost(r),
                "exact optimum deviates from 2(d-i)n staircase at R={r}"
            );
        }
    }

    #[test]
    fn staircase_slope_is_exactly_two_n_per_pebble() {
        let t = build(3, 6);
        let n = t.chain.len() as u64;
        let costs: Vec<u64> = (t.min_r()..=t.free_r())
            .map(|r| t.expected_oneshot_cost(r))
            .collect();
        for w in costs.windows(2) {
            assert_eq!(w[0] - w[1], 2 * (n - 2), "uniform maximal slope");
        }
    }

    #[test]
    fn strategy_valid_in_all_models() {
        let t = build(2, 4);
        for kind in rbp_core::ModelKind::ALL {
            for r in t.min_r()..=t.free_r() {
                let inst = Instance::new(t.dag.clone(), r, CostModel::of_kind(kind));
                let trace = t.strategy(&inst).unwrap();
                let rep = engine::simulate(&inst, &trace)
                    .unwrap_or_else(|e| panic!("invalid trace in {kind} at R={r}: {e}"));
                assert!(rep.peak_red <= r);
            }
        }
    }

    #[test]
    fn base_model_curve_collapses_to_zero() {
        // recomputation makes the whole construction free in base —
        // the degeneracy motivating the model variants (Section 4)
        let t = build(2, 5);
        let inst = Instance::new(t.dag.clone(), t.min_r(), CostModel::base());
        let trace = t.strategy(&inst).unwrap();
        let rep = engine::simulate(&inst, &trace).unwrap();
        assert_eq!(rep.cost.transfers, 0);
    }

    #[test]
    fn sweep_confirms_monotone_staircase() {
        let t = build(2, 4);
        let inst = Instance::new(t.dag.clone(), t.min_r(), CostModel::oneshot());
        let points = sweep_r(
            &inst,
            t.min_r()..=t.free_r(),
            &ExactSolver::new().unseeded(),
        );
        assert_eq!(
            rbp_solvers::check_tradeoff_laws(&inst, &points),
            None,
            "tradeoff laws violated"
        );
        // effort decreases as pebbles free the instance; at minimum it is
        // recorded for every feasible point
        assert!(points
            .iter()
            .all(|p| p.states_expanded().is_some() && p.wall > std::time::Duration::ZERO));
    }
}

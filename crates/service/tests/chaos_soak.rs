//! The chaos soak harness (`--features chaos`): thousands of jobs
//! through a server under seeded fault injection — solver panics,
//! worker deaths, routing delays, shed/retry storms, mid-stream client
//! disconnects, and snapshot corruption — asserting the service's two
//! load-bearing invariants the whole way:
//!
//! 1. **Exactly one terminal event per accepted job.** No job is lost
//!    to a panicking solver or a dying worker, and none reports twice.
//! 2. **The server object survives everything.** Faults cost at most
//!    the faulted job/session; subsequent work completes normally.
//!
//! Every decision derives from fixed seeds, so a failure here replays
//! identically under the same build.

#![cfg(feature = "chaos")]

use rbp_core::{CostModel, Instance};
use rbp_graph::generate;
use rbp_service::chaos::{ChaosWriter, FaultPlan};
use rbp_service::{
    serve_session, Event, JobOptions, JobRequest, RetryPolicy, Server, ServerConfig, SessionError,
};
use rbp_solvers::Registry;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SOAK_SEED: u64 = 0xC0FFEE;
const CLIENTS: usize = 4;
const JOBS_PER_CLIENT: usize = 300; // 1200 jobs ≥ the 1k soak floor

fn req(id: &str, j: usize) -> JobRequest {
    let spec = match j % 3 {
        0 => "exact",
        1 => "greedy",
        _ => "beam:4",
    };
    JobRequest {
        id: id.to_string(),
        spec: spec.to_string(),
        // a small rotating pool of instances: repeats exercise the
        // cache, sizes keep the soak fast even in debug builds
        instance: Instance::new(generate::chain(3 + (j % 8)), 2, CostModel::oneshot()),
        options: JobOptions::default(),
    }
}

#[test]
fn storm_soak_preserves_exactly_one_terminal_per_job() {
    let server = Server::with_faults(
        ServerConfig {
            workers: 3,
            queue_capacity: 16,
            admission_wait: Duration::from_millis(50),
        },
        Registry::with_builtins(),
        FaultPlan::storm(SOAK_SEED),
    );

    let accepted = std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                scope.spawn(move || {
                    let policy = RetryPolicy {
                        max_attempts: 100,
                        base_delay: Duration::from_millis(2),
                        max_delay: Duration::from_millis(40),
                        seed: SOAK_SEED ^ t as u64,
                    };
                    let mut accepted = 0u64;
                    for j in 0..JOBS_PER_CLIENT {
                        let id = format!("c{t}-j{j}");
                        let (tx, rx) = std::sync::mpsc::channel();
                        match server.submit_with_retry(req(&id, j), tx, &policy) {
                            Ok(()) => accepted += 1,
                            // a final shed delivers no events at all
                            Err(e) => {
                                assert!(e.is_retryable(), "unexpected {e}");
                                assert!(rx.try_iter().next().is_none());
                                continue;
                            }
                        }
                        // drain this job's whole event stream (the
                        // sender drops at job completion) and hold the
                        // exactly-one-terminal invariant
                        let events: Vec<Event> = rx.iter().collect();
                        let terminals: Vec<&Event> =
                            events.iter().filter(|e| e.is_terminal()).collect();
                        assert_eq!(
                            terminals.len(),
                            1,
                            "job {id}: expected exactly one terminal, got {events:?}"
                        );
                        assert_eq!(terminals[0].id(), id);
                        // injected faults surface as structured Failed
                        // events, never as hangs or losses
                        if let Event::Failed { error, .. } = terminals[0] {
                            assert!(
                                error.contains("panicked") || error.contains("worker thread died"),
                                "job {id}: unexpected failure: {error}"
                            );
                        }
                    }
                    accepted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
    });

    let stats = server.stats();
    assert_eq!(stats.submitted, accepted, "accepted = counted");
    assert_eq!(stats.completed, accepted, "every accepted job terminated");
    assert!(
        accepted >= (CLIENTS * JOBS_PER_CLIENT) as u64 * 9 / 10,
        "retries should land the vast majority of jobs (accepted={accepted})"
    );
    // the storm actually stormed: injected fault classes all fired
    assert!(stats.panics > 0, "no injected solver panics observed");
    assert!(stats.worker_restarts > 0, "no worker deaths observed");
    assert!(stats.cache.hits > 0, "repeat instances must hit the cache");

    // after the storm the server still serves clean work
    let rx = server
        .submit_collect(JobRequest {
            id: "after-the-storm".into(),
            spec: "greedy".into(),
            instance: Instance::new(generate::chain(40), 2, CostModel::oneshot()),
            options: JobOptions {
                use_cache: false,
                ..JobOptions::default()
            },
        })
        .unwrap();
    let term = rx.iter().find(|e| e.is_terminal()).unwrap();
    assert!(matches!(term, Event::Done { .. }), "{term:?}");
    server.shutdown();
}

/// A `Write + Send` sink tests can read back after the session.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn sessions_with_injected_disconnects_never_hurt_the_server() {
    let plan = FaultPlan::storm(SOAK_SEED ^ 0xD15C);
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        admission_wait: Duration::from_secs(600),
    });
    let inst = Instance::new(generate::chain(6), 2, CostModel::oneshot());
    let doc = rbp_core::write_instance(&inst);

    let mut sessions = 0u64;
    let mut disconnects = 0u64;
    for s in 0..60 {
        let token = format!("sess-{s}");
        let script =
            format!("submit {token}-a exact\n{doc}submit {token}-b greedy\n{doc}stats\nshutdown\n");
        let out = SharedBuf::default();
        let writer = ChaosWriter::new(out.clone(), &plan, &token);
        sessions += 1;
        match serve_session(std::io::Cursor::new(script), writer, &server) {
            Ok(()) => {}
            Err(SessionError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe, "{e}");
                disconnects += 1;
            }
            Err(other) => panic!("{other}"),
        }
    }
    assert!(disconnects > 0, "the disconnect fault class never fired");
    assert!(disconnects < sessions, "some sessions must survive");

    // disconnected sessions abandoned their streams, not their jobs:
    // every accepted submission still reaches its terminal event
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = server.stats();
        if stats.completed == stats.submitted && stats.queued == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "jobs stranded: {stats:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown();
}

#[test]
fn kill_and_restart_recovers_optimals_even_from_a_rotted_snapshot() {
    // first life: a server learns a handful of Optimals
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServerConfig::default()
    });
    for n in 3..11 {
        let rx = server
            .submit_collect(JobRequest {
                id: format!("warm-{n}"),
                spec: "exact".into(),
                instance: Instance::new(generate::chain(n), 2, CostModel::oneshot()),
                options: JobOptions::default(),
            })
            .unwrap();
        let term = rx.iter().find(|e| e.is_terminal()).unwrap();
        assert!(matches!(term, Event::Done { .. }), "{term:?}");
    }
    let entries = server.cache().stats().entries;
    assert_eq!(entries, 8);
    let snapshot = server.cache().write_snapshot();
    server.shutdown(); // the "kill"

    // clean restart: everything comes back
    let clean = Server::start(ServerConfig::default());
    let report = clean.cache().load_snapshot(&snapshot);
    assert_eq!(report.recovered, entries);
    assert_eq!(report.skipped, 0);
    assert_eq!(clean.cache().stats().entries, entries);
    clean.shutdown();

    // rotted restart: the corrupt entries are skipped and counted, the
    // intact ones recover, and the load never aborts
    let mut plan = FaultPlan::quiet(SOAK_SEED);
    plan.corrupt_entry_per_mille = 400;
    let rotted = plan.corrupt_snapshot(&snapshot);
    assert_ne!(rotted, snapshot, "the rot must actually bite");
    let server = Server::start(ServerConfig::default());
    let report = server.cache().load_snapshot(&rotted);
    assert_eq!(
        report.recovered + report.skipped,
        entries,
        "every entry is accounted for, one way or the other"
    );
    assert!(report.skipped > 0, "rot was injected");
    assert!(report.recovered > 0, "rot must not take out intact entries");

    // a recovered instance is a cache hit carrying Optimal, no re-solve
    let solves_before = server.stats().solves;
    let mut hits = 0;
    for n in 3..11 {
        let rx = server
            .submit_collect(JobRequest {
                id: format!("reheat-{n}"),
                spec: "exact".into(),
                instance: Instance::new(generate::chain(n), 2, CostModel::oneshot()),
                options: JobOptions::default(),
            })
            .unwrap();
        match rx.iter().find(|e| e.is_terminal()).unwrap() {
            Event::Done {
                cached, solution, ..
            } => {
                assert!(solution.is_optimal());
                if cached {
                    hits += 1;
                }
            }
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(
        hits as u64, report.recovered,
        "exactly the recovered entries answer from cache"
    );
    assert_eq!(
        server.stats().solves - solves_before,
        8 - report.recovered,
        "only the rotted entries re-solve"
    );
    server.shutdown();
}

//! Property tests for every wire parser a hostile client can reach:
//! the protocol request reader, the `instance v1` / `dag` documents,
//! the `solution v1` document, and the `cache v1` snapshot loader.
//!
//! The properties are the robustness contract of the service edge:
//! arbitrary bytes and mutilated valid documents must come back as
//! structured, line-numbered errors — never a panic, never an abort,
//! never an attacker-controlled allocation.

use proptest::prelude::*;
use rbp_core::{write_instance, CostModel, Instance};
use rbp_graph::generate;
use rbp_service::{Request, RequestReader, SolutionCache};
use rbp_solvers::wire;

fn instance_doc() -> String {
    write_instance(&Instance::new(generate::chain(6), 2, CostModel::base()))
}

fn solution_doc() -> String {
    let inst = Instance::new(generate::chain(5), 2, CostModel::oneshot());
    let sol = rbp_solvers::registry::solve("greedy", &inst).unwrap();
    wire::write_solution("greedy:most-red-inputs/min-uses", &sol)
}

fn mpp_instance_doc() -> String {
    // a v2 document exercising the multiprocessor header fields
    use rbp_core::{MppDim, Ratio};
    write_instance(
        &Instance::new(generate::chain(6), 2, CostModel::base()).with_mpp(MppDim {
            p: 2,
            comm: Ratio::new(3, 2),
            comp: Ratio::new(1, 4),
        }),
    )
}

fn mpp_solution_doc() -> String {
    // proc-annotated move lines (`compute 3 p1`)
    let inst = Instance::new(generate::chain(5), 2, CostModel::base()).with_procs(2);
    let sol = rbp_solvers::registry::solve("greedy@mpp", &inst).unwrap();
    wire::write_solution("greedy@mpp:2", &sol)
}

fn dag_doc() -> String {
    rbp_graph::io::write_dag(&generate::chain(6))
}

fn snapshot_doc() -> String {
    let cache = SolutionCache::new();
    let inst = Instance::new(generate::chain(5), 2, CostModel::oneshot());
    let sol = rbp_solvers::registry::solve("greedy", &inst).unwrap();
    let scaled = sol.scaled_cost(&inst);
    cache.insert_or_upgrade(inst.canonical_key(), "greedy", sol, scaled);
    cache.write_snapshot()
}

fn session_script() -> String {
    format!(
        "submit j exact deadline-ms=5 priority=2\n{}cancel j\nstats\nshutdown\n",
        instance_doc()
    )
}

/// Applies one deterministic mutilation to an ASCII document.
fn mutate(doc: &str, op: usize, pos: usize, byte: u8) -> String {
    if doc.is_empty() {
        return String::new();
    }
    let pos = pos % doc.len();
    match op % 5 {
        // truncate mid-document (ASCII, so any byte index is a boundary)
        0 => doc[..pos].to_string(),
        // stomp one byte with printable junk
        1 => {
            let mut b = doc.as_bytes().to_vec();
            b[pos] = 32 + (byte % 95);
            String::from_utf8(b).expect("printable ascii stays utf-8")
        }
        // delete a whole line
        2 => {
            let lines: Vec<&str> = doc.lines().collect();
            let drop = pos % lines.len();
            lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, l)| format!("{l}\n"))
                .collect()
        }
        // duplicate a whole line
        3 => {
            let lines: Vec<&str> = doc.lines().collect();
            let dup = pos % lines.len();
            let mut out = String::new();
            for (i, l) in lines.iter().enumerate() {
                out.push_str(l);
                out.push('\n');
                if i == dup {
                    out.push_str(l);
                    out.push('\n');
                }
            }
            out
        }
        // splice in a junk line
        _ => {
            let lines: Vec<&str> = doc.lines().collect();
            let at = pos % (lines.len() + 1);
            let mut out = String::new();
            for (i, l) in lines.iter().enumerate() {
                if i == at {
                    out.push_str("zzz 18446744073709551616 !\n");
                }
                out.push_str(l);
                out.push('\n');
            }
            out
        }
    }
}

/// The first "line N" number in an error rendering, if any.
fn line_of(msg: &str) -> Option<usize> {
    msg.split("line ")
        .nth(1)?
        .split(':')
        .next()?
        .trim()
        .parse()
        .ok()
}

proptest! {
    #[test]
    fn request_reader_survives_arbitrary_text(
        chars in proptest::collection::vec(any::<char>(), 0..300),
    ) {
        let text: String = chars.into_iter().collect();
        let mut rr = RequestReader::new(std::io::Cursor::new(text));
        loop {
            match rr.next_request() {
                Ok(None) => break,
                Ok(Some(Ok(_))) | Ok(Some(Err(_))) => {}
                Err(_) => break,
            }
        }
    }

    #[test]
    fn mutated_session_scripts_error_structurally(
        op in 0usize..5, pos in any::<usize>(), byte in any::<u8>(),
    ) {
        let text = mutate(&session_script(), op, pos, byte);
        let lines = text.lines().count();
        let mut rr = RequestReader::new(std::io::Cursor::new(text));
        while let Ok(Some(r)) = rr.next_request() {
            match r {
                Ok(Request::Submit(req)) => prop_assert!(!req.id.is_empty()),
                Ok(_) => {}
                Err(e) => {
                    // errors render, and any line they cite is a real
                    // position in the session stream
                    let msg = format!("{e}");
                    prop_assert!(!msg.is_empty());
                    if let Some(n) = line_of(&msg) {
                        prop_assert!(n >= 1 && n <= lines + 1, "{msg} vs {lines} lines");
                    }
                }
            }
        }
    }

    #[test]
    fn mutated_instance_docs_never_panic_and_keep_document_coordinates(
        op in 0usize..5, pos in any::<usize>(), byte in any::<u8>(),
    ) {
        let text = mutate(&instance_doc(), op, pos, byte);
        let base = rbp_core::io::parse_instance(&text);
        let shifted = rbp_core::io::parse_instance_at(&text, 101);
        match (base, shifted) {
            (Ok(a), Ok(b)) => prop_assert!(rbp_core::io::same_instance(&a, &b)),
            (Err(e), Err(e_at)) => {
                // the same failure, reported in the embedding
                // document's coordinates when parsed with an offset
                if let (Some(n), Some(n_at)) =
                    (line_of(&format!("{e}")), line_of(&format!("{e_at}")))
                {
                    prop_assert_eq!(n_at, n + 100);
                }
            }
            (a, b) => prop_assert!(false, "offset changed the outcome: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn mutated_mpp_instance_docs_never_panic_and_keep_document_coordinates(
        op in 0usize..5, pos in any::<usize>(), byte in any::<u8>(),
    ) {
        let text = mutate(&mpp_instance_doc(), op, pos, byte);
        let base = rbp_core::io::parse_instance(&text);
        let shifted = rbp_core::io::parse_instance_at(&text, 101);
        match (base, shifted) {
            (Ok(a), Ok(b)) => prop_assert!(rbp_core::io::same_instance(&a, &b)),
            (Err(e), Err(e_at)) => {
                if let (Some(n), Some(n_at)) =
                    (line_of(&format!("{e}")), line_of(&format!("{e_at}")))
                {
                    prop_assert_eq!(n_at, n + 100);
                }
            }
            (a, b) => prop_assert!(false, "offset changed the outcome: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn mutated_mpp_solution_docs_never_panic(
        op in 0usize..5, pos in any::<usize>(), byte in any::<u8>(),
    ) {
        let text = mutate(&mpp_solution_doc(), op, pos, byte);
        match wire::parse_solution(&text) {
            Ok(ws) => {
                // a surviving parse must still round-trip stably,
                // processor tags included
                let rewritten = wire::write_solution(&ws.spec, &ws.solution);
                let back = wire::parse_solution(&rewritten).unwrap();
                prop_assert_eq!(back.solution.trace, ws.solution.trace);
            }
            Err(e) => {
                let msg = format!("{e}");
                prop_assert!(!msg.is_empty());
            }
        }
    }

    #[test]
    fn mutated_dag_docs_never_panic(
        op in 0usize..5, pos in any::<usize>(), byte in any::<u8>(),
    ) {
        let text = mutate(&dag_doc(), op, pos, byte);
        if let Err(e) = rbp_graph::io::parse_dag(&text) {
            let msg = format!("{e}");
            prop_assert!(!msg.is_empty());
        }
    }

    #[test]
    fn mutated_solution_docs_never_panic(
        op in 0usize..5, pos in any::<usize>(), byte in any::<u8>(),
    ) {
        let text = mutate(&solution_doc(), op, pos, byte);
        if let Err(e) = wire::parse_solution(&text) {
            let msg = format!("{e}");
            prop_assert!(!msg.is_empty());
        }
    }

    #[test]
    fn mutated_snapshots_load_without_aborting(
        op in 0usize..5, pos in any::<usize>(), byte in any::<u8>(),
    ) {
        let text = mutate(&snapshot_doc(), op, pos, byte);
        let cache = SolutionCache::new();
        let report = cache.load_snapshot(&text);
        // whatever happened, the accounting is total: every surviving
        // entry is live, every damaged one is counted, nothing aborted
        prop_assert_eq!(cache.stats().entries, report.recovered);
        prop_assert!(report.recovered + report.skipped <= 2);
    }
}
